"""Stochastic-Kronecker graph generator (Leskovec et al., JMLR 2010).

The paper synthesises its graph inputs as Kronecker graphs whose
initiator matrices are fitted to SNAP seed graphs so that each synthetic
input keeps the connectivity style of its seed (web graph vs social
network vs road network, …).  We implement the standard *ball dropping*
sampler: each edge independently descends ``scale`` levels of the 2×2
initiator, choosing a quadrant per level with probability proportional
to the initiator entries; the chosen bits assemble the source/target
node ids.

The sampler is fully vectorised: all edges descend all levels in one
``(n_edges, scale)`` categorical draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KroneckerSpec", "generate_kronecker_edges", "degree_statistics"]


@dataclass(frozen=True, slots=True)
class KroneckerSpec:
    """Parameters of one Kronecker graph.

    ``initiator`` is the 2×2 probability seed (need not be normalised;
    it is normalised internally).  ``scale`` gives ``2**scale`` nodes;
    ``edge_factor`` gives ``edge_factor * 2**scale`` sampled edges
    (before deduplication, if requested).
    """

    initiator: tuple[tuple[float, float], tuple[float, float]]
    scale: int
    edge_factor: int = 16
    deduplicate: bool = True
    drop_self_loops: bool = True

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.scale > 30:
            raise ValueError("scale must be in [1, 30]")
        if self.edge_factor <= 0:
            raise ValueError("edge_factor must be positive")
        flat = [v for row in self.initiator for v in row]
        if len(flat) != 4 or any(v < 0 for v in flat) or sum(flat) <= 0:
            raise ValueError("initiator must be a non-negative 2x2 matrix")

    @property
    def n_nodes(self) -> int:
        """Number of nodes, ``2**scale``."""
        return 1 << self.scale

    @property
    def n_edges_sampled(self) -> int:
        """Edges drawn before dedup/self-loop removal."""
        return self.edge_factor * self.n_nodes


def generate_kronecker_edges(spec: KroneckerSpec, seed: int) -> np.ndarray:
    """Sample the edge list of a Kronecker graph.

    Returns
    -------
    numpy.ndarray
        ``(n_edges, 2)`` int64 array of directed ``(src, dst)`` pairs.
    """
    rng = np.random.default_rng(seed)
    probs = np.asarray(spec.initiator, dtype=np.float64).ravel()
    probs = probs / probs.sum()

    n = spec.n_edges_sampled
    # One categorical draw per (edge, level): quadrant in {0,1,2,3}.
    quadrants = rng.choice(4, size=(n, spec.scale), p=probs)
    row_bits = quadrants >> 1  # quadrant index: bit1 = row, bit0 = column
    col_bits = quadrants & 1

    # Assemble node ids: level 0 is the most significant bit.
    weights = (1 << np.arange(spec.scale - 1, -1, -1)).astype(np.int64)
    src = row_bits.astype(np.int64) @ weights
    dst = col_bits.astype(np.int64) @ weights

    edges = np.stack([src, dst], axis=1)
    if spec.drop_self_loops:
        edges = edges[edges[:, 0] != edges[:, 1]]
    if spec.deduplicate:
        edges = np.unique(edges, axis=0)
        # unique() sorts; restore a shuffled on-disk order so input
        # partitions are not trivially degree-sorted.
        edges = edges[rng.permutation(len(edges))]
    return edges


def degree_statistics(edges: np.ndarray, n_nodes: int) -> dict[str, float]:
    """Summary statistics of the out-degree distribution.

    Used by tests and by the input catalog to check that different
    initiators yield genuinely different topologies.
    """
    deg = np.bincount(edges[:, 0], minlength=n_nodes)
    nonzero = deg[deg > 0]
    mean = float(deg.mean())
    return {
        "n_edges": float(len(edges)),
        "mean_degree": mean,
        "max_degree": float(deg.max(initial=0)),
        "degree_cov": float(deg.std() / mean) if mean > 0 else 0.0,
        "isolated_fraction": float(np.mean(deg == 0)),
        "gini": _gini(nonzero) if len(nonzero) else 0.0,
    }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (degree inequality)."""
    v = np.sort(values.astype(np.float64))
    n = len(v)
    if n == 0 or v.sum() == 0:
        return 0.0
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)
