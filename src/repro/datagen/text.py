"""Zipf text synthesizer (BigDataBench-style).

BigDataBench ships a data synthesizer that scales a real-world seed
corpus to arbitrary volume while preserving its statistics.  We model
the part that matters for the text workloads (WordCount, Grep, Sort,
NaiveBayes): word frequencies follow a Zipf law over a synthetic
vocabulary, line lengths follow a Poisson around a target mean, and the
skew/vocabulary knobs make different *inputs* genuinely different
(word-frequency profile for WordCount, key ordering for Sort — exactly
the input axes Section IV-E discusses).
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np

__all__ = ["TextSpec", "synthesize_text", "synthesize_labeled_text", "make_vocabulary"]

_ALPHABET = np.array(list(string.ascii_lowercase))


@dataclass(frozen=True, slots=True)
class TextSpec:
    """Parameters of a synthetic corpus.

    ``zipf_s`` is the Zipf exponent (≈1.0 for natural language; larger
    means fewer distinct hot words); ``shuffle_ranks`` decorrelates
    alphabetical order from frequency rank, which changes the comparison
    behaviour of Sort without changing WordCount's histogram.
    """

    n_lines: int
    words_per_line: float = 10.0
    vocab_size: int = 5000
    zipf_s: float = 1.05
    word_len_mean: float = 7.0
    shuffle_ranks: bool = True

    def __post_init__(self) -> None:
        if self.n_lines <= 0:
            raise ValueError("n_lines must be positive")
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.words_per_line <= 0:
            raise ValueError("words_per_line must be positive")


def make_vocabulary(
    size: int, rng: np.random.Generator, word_len_mean: float = 7.0
) -> list[str]:
    """Synthetic vocabulary of ``size`` pseudo-words.

    Lengths are Poisson-distributed (min 2); letters uniform.  Words are
    unique by construction (a numeric suffix disambiguates collisions).
    """
    lengths = np.maximum(2, rng.poisson(word_len_mean, size=size))
    words: list[str] = []
    seen: set[str] = set()
    for i, ln in enumerate(lengths):
        letters = _ALPHABET[rng.integers(0, 26, size=int(ln))]
        w = "".join(letters)
        if w in seen:
            w = f"{w}{i}"
        seen.add(w)
        words.append(w)
    return words


def _zipf_probs(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks**-s
    return p / p.sum()


def synthesize_text(spec: TextSpec, seed: int) -> list[str]:
    """Generate a corpus of ``spec.n_lines`` lines.

    Word draws are fully vectorised: one multinomial-style draw for all
    words of the corpus, then lines are assembled by slicing.
    """
    rng = np.random.default_rng(seed)
    vocab = np.array(make_vocabulary(spec.vocab_size, rng, spec.word_len_mean))
    probs = _zipf_probs(spec.vocab_size, spec.zipf_s)
    if spec.shuffle_ranks:
        # Decouple frequency rank from alphabetical order.
        vocab = vocab[rng.permutation(spec.vocab_size)]

    line_lens = np.maximum(1, rng.poisson(spec.words_per_line, size=spec.n_lines))
    total_words = int(line_lens.sum())
    word_ids = rng.choice(spec.vocab_size, size=total_words, p=probs)
    flat = vocab[word_ids]

    lines: list[str] = []
    pos = 0
    for ln in line_lens:
        lines.append(" ".join(flat[pos : pos + int(ln)]))
        pos += int(ln)
    return lines


def synthesize_labeled_text(
    spec: TextSpec,
    n_classes: int,
    seed: int,
    class_skew: float = 1.0,
) -> list[str]:
    """Labelled corpus for NaiveBayes: ``"<label>\\t<words...>"`` lines.

    Each class gets its own permutation of the shared vocabulary so the
    per-class word distributions differ (which is what gives the trained
    model non-trivial likelihoods).  ``class_skew`` is the Zipf exponent
    over class frequencies (1.0 ≈ mildly imbalanced classes).
    """
    if n_classes <= 0:
        raise ValueError("n_classes must be positive")
    rng = np.random.default_rng(seed)
    vocab = np.array(make_vocabulary(spec.vocab_size, rng, spec.word_len_mean))
    probs = _zipf_probs(spec.vocab_size, spec.zipf_s)
    class_probs = _zipf_probs(n_classes, class_skew)
    # Per-class view of the vocabulary: a fixed permutation per class.
    class_perm = [rng.permutation(spec.vocab_size) for _ in range(n_classes)]

    labels = rng.choice(n_classes, size=spec.n_lines, p=class_probs)
    line_lens = np.maximum(1, rng.poisson(spec.words_per_line, size=spec.n_lines))
    total_words = int(line_lens.sum())
    word_ranks = rng.choice(spec.vocab_size, size=total_words, p=probs)

    lines: list[str] = []
    pos = 0
    for label, ln in zip(labels, line_lens):
        ids = class_perm[int(label)][word_ranks[pos : pos + int(ln)]]
        lines.append(f"class{int(label)}\t" + " ".join(vocab[ids]))
        pos += int(ln)
    return lines
