"""Shared infrastructure for the experiment drivers.

Workload runs cost seconds each, and several figures need the same
profiles, so profiles and phase models flow through the
:mod:`repro.runtime` execution engine: a content-addressed artifact
store (keys derived from the *full* configuration — no hand-listed
knobs to go stale) plus a batch runner that fans cache misses out over a
process pool when ``SIMPROF_JOBS`` asks for it.

``get_profile``/``get_model`` keep their historical signatures as thin
wrappers over the engine so examples and benchmarks keep working;
drivers that need many (workload, framework) pairs call
``prefetch_models``/``prefetch_profiles`` first so the batch executes as
one runner pass instead of a serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.phases import PhaseModel
from repro.core.pipeline import SimProf, SimProfConfig
from repro.core.units import JobProfile
from repro.runtime.runner import ExperimentRunner, RunSpec
from repro.runtime.store import STORE_VERSION

__all__ = [
    "CACHE_VERSION",
    "ExperimentConfig",
    "all_label_pairs",
    "format_table",
    "get_model",
    "get_profile",
    "make_spec",
    "prefetch_models",
    "prefetch_profiles",
]

# Kept as an alias for the store version: bump STORE_VERSION (in
# repro.runtime.store) when simulator calibration changes.
CACHE_VERSION = STORE_VERSION


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs every experiment shares.

    ``scale`` shrinks workload inputs for quick runs (tests use 0.25);
    ``n_sampling_draws`` averages the stochastic samplers (SRS, SimProf)
    over several draws for stable error numbers.
    """

    scale: float = 1.0
    seed: int = 0
    n_sampling_draws: int = 20
    simprof: SimProfConfig = SimProfConfig()

    def simprof_tool(self) -> SimProf:
        """A SimProf instance configured for this experiment."""
        return SimProf(self.simprof)


def all_label_pairs() -> list[tuple[str, str]]:
    """(workload, framework) pairs in the paper's Figure 7 order."""
    from repro.workloads import WORKLOADS

    return [
        (abbrev, fw) for fw in ("hadoop", "spark") for abbrev in WORKLOADS
    ]


def make_spec(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    input_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> RunSpec:
    """The :class:`RunSpec` for one experiment request."""
    return RunSpec(
        workload=workload,
        framework=framework,
        scale=cfg.scale,
        seed=cfg.seed,
        graph_name=graph_name,
        input_name=input_name,
        params=params,
        simprof=cfg.simprof,
    )


def prefetch_models(
    pairs: Iterable[tuple[str, str]],
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
) -> None:
    """Materialise profile + model artifacts for many pairs in one batch.

    With ``SIMPROF_JOBS`` > 1 the cache misses run in parallel; the
    subsequent ``get_model`` calls then hit the store.
    """
    specs = [
        make_spec(w, f, cfg, graph_name=graph_name) for w, f in pairs
    ]
    ExperimentRunner().run(specs, want="model")


def prefetch_profiles(specs: Iterable[RunSpec]) -> None:
    """Materialise profile artifacts for pre-built specs in one batch."""
    ExperimentRunner().run(list(specs), want="profile")


def get_profile(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    input_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> JobProfile:
    """Run (or load) a workload and profile its busiest thread."""
    spec = make_spec(
        workload,
        framework,
        cfg,
        graph_name=graph_name,
        input_name=input_name,
        params=params,
    )
    [result] = ExperimentRunner().run([spec], want="profile")
    return result.job


def get_model(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> tuple[JobProfile, PhaseModel]:
    """Profile + fitted phase model (both cached)."""
    spec = make_spec(
        workload, framework, cfg, graph_name=graph_name, params=params
    )
    [result] = ExperimentRunner().run([spec], want="model")
    assert result.model is not None
    return result.job, result.model


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Plain-text table rendering shared by every driver."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
