"""Shared infrastructure for the experiment drivers.

Workload runs cost seconds each, and several figures need the same
profiles, so profiles and phase models flow through the
:mod:`repro.runtime` execution engine: a content-addressed artifact
store (keys derived from the *full* configuration — no hand-listed
knobs to go stale) plus a batch runner that fans cache misses out over a
process pool when ``SIMPROF_JOBS`` asks for it.

``get_profile``/``get_model`` keep their historical signatures as thin
wrappers over the engine so examples and benchmarks keep working;
drivers that need many (workload, framework) pairs call
``prefetch_models``/``prefetch_profiles`` first so the batch executes as
one runner pass instead of a serial loop.

The figure drivers themselves run through the **provenance graph**
(:mod:`repro.runtime.provenance`): each driver declares a ``report``
stage over the per-spec chains wired by :func:`model_inputs`, and
:func:`run_report` executes the graph incrementally — a warm re-run
after a code edit recomputes only the stages whose code closure
changed.  This module is orchestration (excluded from stage closures):
nothing here is an input to any figure's value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.phases import PhaseModel
from repro.core.pipeline import SimProf, SimProfConfig
from repro.core.units import JobProfile
from repro.runtime.provenance import StageGraph
from repro.runtime.runner import ExperimentRunner, RunSpec
from repro.runtime.stages import spec_nodes
from repro.runtime.store import STORE_VERSION

__all__ = [
    "CACHE_VERSION",
    "ExperimentConfig",
    "all_label_pairs",
    "format_table",
    "get_model",
    "get_profile",
    "make_spec",
    "model_inputs",
    "prefetch_models",
    "prefetch_profiles",
    "report_params",
    "run_report",
]

# Kept as an alias for the store version: bump STORE_VERSION (in
# repro.runtime.store) when simulator calibration changes.
CACHE_VERSION = STORE_VERSION


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs every experiment shares.

    ``scale`` shrinks workload inputs for quick runs (tests use 0.25);
    ``n_sampling_draws`` averages the stochastic samplers (SRS, SimProf)
    over several draws for stable error numbers.
    """

    scale: float = 1.0
    seed: int = 0
    n_sampling_draws: int = 20
    simprof: SimProfConfig = SimProfConfig()

    def simprof_tool(self) -> SimProf:
        """A SimProf instance configured for this experiment."""
        return SimProf(self.simprof)


def all_label_pairs() -> list[tuple[str, str]]:
    """(workload, framework) pairs in the paper's Figure 7 order."""
    from repro.workloads import WORKLOADS

    return [
        (abbrev, fw) for fw in ("hadoop", "spark") for abbrev in WORKLOADS
    ]


def make_spec(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    input_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> RunSpec:
    """The :class:`RunSpec` for one experiment request."""
    return RunSpec(
        workload=workload,
        framework=framework,
        scale=cfg.scale,
        seed=cfg.seed,
        graph_name=graph_name,
        input_name=input_name,
        params=params,
        simprof=cfg.simprof,
    )


def prefetch_models(
    pairs: Iterable[tuple[str, str]],
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
) -> None:
    """Materialise profile + model artifacts for many pairs in one batch.

    With ``SIMPROF_JOBS`` > 1 the cache misses run in parallel; the
    subsequent ``get_model`` calls then hit the store.
    """
    specs = [
        make_spec(w, f, cfg, graph_name=graph_name) for w, f in pairs
    ]
    ExperimentRunner().run(specs, want="model")


def prefetch_profiles(specs: Iterable[RunSpec]) -> None:
    """Materialise profile artifacts for pre-built specs in one batch."""
    ExperimentRunner().run(list(specs), want="profile")


def model_inputs(
    graph: StageGraph,
    pairs: Iterable[tuple[str, str]],
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    want: str = "model",
    n_points: int | None = None,
) -> tuple[dict[str, str], list[str]]:
    """Wire per-spec stage chains for many pairs; return report inputs.

    Returns ``(deps, labels)``: ``deps`` maps ``job:<label>`` (and,
    with ``want="model"``, ``model:<label>``; with ``n_points``,
    ``estimate:<label>``) to the wired node names — exactly the shape
    a figure's report stage consumes — and ``labels`` lists the pair
    labels in input order.  Chains already present in ``graph``
    (another figure shares the spec) are reused, so a whole-suite
    graph holds each workload's pipeline once.
    """
    from repro.workloads import label_of

    deps: dict[str, str] = {}
    labels: list[str] = []
    for workload, framework in pairs:
        spec = make_spec(workload, framework, cfg, graph_name=graph_name)
        nodes = spec_nodes(graph, spec, want=want, n_points=n_points)
        label = label_of(workload, framework)
        labels.append(label)
        deps[f"job:{label}"] = nodes["profile"]
        if want == "model":
            deps[f"model:{label}"] = nodes["model"]
        if n_points is not None:
            deps[f"estimate:{label}"] = nodes["estimate"]
    return deps, labels


def run_report(
    graph: StageGraph,
    node: str,
    *,
    runner: ExperimentRunner | None = None,
) -> Any:
    """Execute a figure graph incrementally and return one node's value."""
    return (runner or ExperimentRunner()).run_graph(graph)[node]


def report_params(
    cfg: ExperimentConfig, labels: Sequence[str], **extra: Any
) -> dict[str, Any]:
    """Standard report-stage parameters: labels + experiment knobs.

    ``seed`` and ``n_sampling_draws`` ride along because most report
    stages draw their stochastic samplers from them; figure-specific
    knobs arrive as ``extra``.  Everything lands in the node's key
    material, so retuning any knob re-runs exactly the report stage.
    """
    return {
        "labels": list(labels),
        "seed": cfg.seed,
        "n_sampling_draws": cfg.n_sampling_draws,
        **extra,
    }


def get_profile(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    input_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> JobProfile:
    """Run (or load) a workload and profile its busiest thread."""
    spec = make_spec(
        workload,
        framework,
        cfg,
        graph_name=graph_name,
        input_name=input_name,
        params=params,
    )
    [result] = ExperimentRunner().run([spec], want="profile")
    return result.job


def get_model(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> tuple[JobProfile, PhaseModel]:
    """Profile + fitted phase model (both cached)."""
    spec = make_spec(
        workload, framework, cfg, graph_name=graph_name, params=params
    )
    [result] = ExperimentRunner().run([spec], want="model")
    assert result.model is not None
    return result.job, result.model


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Plain-text table rendering shared by every driver."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
