"""Shared infrastructure for the experiment drivers.

Workload runs cost seconds each, and several figures need the same
profiles, so profiles and phase models are cached — in memory for the
process and on disk (pickle) across processes.  Cache entries are keyed
by every parameter that affects the result plus a calibration version
string, so stale entries die when the simulator is re-tuned.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.phases import PhaseModel
from repro.core.pipeline import SimProf, SimProfConfig
from repro.core.units import JobProfile
from repro.datagen.seeds import GRAPH_INPUTS
from repro.workloads import WORKLOADS, run_workload

__all__ = [
    "CACHE_VERSION",
    "ExperimentConfig",
    "all_label_pairs",
    "format_table",
    "get_model",
    "get_profile",
]

# Bump when simulator calibration changes so cached profiles refresh.
CACHE_VERSION = "v6"

_MEMORY_CACHE: dict[str, Any] = {}


def _cache_dir() -> Path:
    root = os.environ.get("SIMPROF_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "simprof-repro"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_key(kind: str, **params: Any) -> str:
    blob = repr(sorted(params.items())).encode()
    return f"{kind}-{CACHE_VERSION}-{hashlib.sha256(blob).hexdigest()[:20]}"


def _cached(key: str, compute: Any) -> Any:
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    path = _cache_dir() / f"{key}.pkl"
    if path.exists():
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
            _MEMORY_CACHE[key] = value
            return value
        except Exception:
            path.unlink(missing_ok=True)  # corrupt entry: recompute
    value = compute()
    _MEMORY_CACHE[key] = value
    tmp = path.with_suffix(".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs every experiment shares.

    ``scale`` shrinks workload inputs for quick runs (tests use 0.25);
    ``n_sampling_draws`` averages the stochastic samplers (SRS, SimProf)
    over several draws for stable error numbers.
    """

    scale: float = 1.0
    seed: int = 0
    n_sampling_draws: int = 20
    simprof: SimProfConfig = SimProfConfig()

    def simprof_tool(self) -> SimProf:
        """A SimProf instance configured for this experiment."""
        return SimProf(self.simprof)


def all_label_pairs() -> list[tuple[str, str]]:
    """(workload, framework) pairs in the paper's Figure 7 order."""
    return [
        (abbrev, fw) for fw in ("hadoop", "spark") for abbrev in WORKLOADS
    ]


def get_profile(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    input_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> JobProfile:
    """Run (or load) a workload and profile its busiest thread."""
    graph = GRAPH_INPUTS[graph_name] if graph_name else None
    key = _cache_key(
        "profile",
        workload=workload,
        framework=framework,
        scale=cfg.scale,
        seed=cfg.seed,
        graph=graph_name or "",
        params=params or {},
        unit=cfg.simprof.unit_size,
        period=cfg.simprof.snapshot_period,
        jitter=cfg.simprof.snapshot_jitter,
    )

    def compute() -> JobProfile:
        trace = run_workload(
            workload,
            framework,
            scale=cfg.scale,
            seed=cfg.seed,
            graph=graph,
            input_name=input_name or graph_name or "default",
            params=params,
        )
        return cfg.simprof_tool().profile(trace)

    return _cached(key, compute)


def get_model(
    workload: str,
    framework: str,
    cfg: ExperimentConfig,
    *,
    graph_name: str | None = None,
    params: dict[str, Any] | None = None,
) -> tuple[JobProfile, PhaseModel]:
    """Profile + fitted phase model (both cached)."""
    job = get_profile(
        workload, framework, cfg, graph_name=graph_name, params=params
    )
    key = _cache_key(
        "model",
        workload=workload,
        framework=framework,
        scale=cfg.scale,
        seed=cfg.seed,
        graph=graph_name or "",
        params=params or {},
        unit=cfg.simprof.unit_size,
        period=cfg.simprof.snapshot_period,
        jitter=cfg.simprof.snapshot_jitter,
        top_k=cfg.simprof.top_k_methods,
        max_phases=cfg.simprof.max_phases,
        threshold=cfg.simprof.silhouette_threshold,
    )
    model = _cached(key, lambda: cfg.simprof_tool().form_phases(job))
    return job, model


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Plain-text table rendering shared by every driver."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
