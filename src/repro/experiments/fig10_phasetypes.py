"""Figure 10: phase-type distribution.

Each benchmark's unit weight is broken down over the four phase types
(map / reduce / sort / IO) by the dominant operation of each phase.
Paper observations to reproduce: sort appears in the Hadoop text
benchmarks (spill sorting) but not in their Spark counterparts (no
map-side sort by default), and Hadoop spends more of its time on IO
than Spark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import phase_type_distribution
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    prefetch_models,
)
from repro.workloads import label_of

__all__ = ["Fig10Result", "run_fig10", "PHASE_TYPES"]

PHASE_TYPES = ("map", "reduce", "sort", "io")


@dataclass
class Fig10Result:
    """Per-benchmark type shares (each row sums to ~1)."""

    shares: dict[str, dict[str, float]]

    def framework_share(self, framework_suffix: str, phase_type: str) -> float:
        """Mean share of a type over one framework's benchmarks."""
        rows = [
            v
            for k, v in self.shares.items()
            if k.endswith(f"_{framework_suffix}")
        ]
        return sum(r.get(phase_type, 0.0) for r in rows) / len(rows)

    def to_text(self) -> str:
        """Render the figure as a table."""
        body = [
            (label,)
            + tuple(f"{row.get(t, 0.0):.2f}" for t in PHASE_TYPES)
            for label, row in self.shares.items()
        ]
        return format_table(
            ("benchmark",) + PHASE_TYPES,
            body,
            title="Figure 10: phase type distribution (unit-weight share)",
        )


def run_fig10(cfg: ExperimentConfig | None = None) -> Fig10Result:
    """Compute Figure 10 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    prefetch_models(all_label_pairs(), cfg)
    shares: dict[str, dict[str, float]] = {}
    for workload, framework in all_label_pairs():
        job, model = get_model(workload, framework, cfg)
        shares[label_of(workload, framework)] = phase_type_distribution(
            job, model.assignments
        )
    return Fig10Result(shares=shares)
