"""Figure 10: phase-type distribution.

Each benchmark's unit weight is broken down over the four phase types
(map / reduce / sort / IO) by the dominant operation of each phase.
Paper observations to reproduce: sort appears in the Hadoop text
benchmarks (spill sorting) but not in their Spark counterparts (no
map-side sort by default), and Hadoop spends more of its time on IO
than Spark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.analysis import phase_type_distribution
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    model_inputs,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn

__all__ = ["Fig10Result", "graph_fig10", "run_fig10", "PHASE_TYPES"]

PHASE_TYPES = ("map", "reduce", "sort", "io")


@dataclass
class Fig10Result:
    """Per-benchmark type shares (each row sums to ~1)."""

    shares: dict[str, dict[str, float]]

    def framework_share(self, framework_suffix: str, phase_type: str) -> float:
        """Mean share of a type over one framework's benchmarks."""
        rows = [
            v
            for k, v in self.shares.items()
            if k.endswith(f"_{framework_suffix}")
        ]
        return sum(r.get(phase_type, 0.0) for r in rows) / len(rows)

    def to_text(self) -> str:
        """Render the figure as a table."""
        body = [
            (label,)
            + tuple(f"{row.get(t, 0.0):.2f}" for t in PHASE_TYPES)
            for label, row in self.shares.items()
        ]
        return format_table(
            ("benchmark",) + PHASE_TYPES,
            body,
            title="Figure 10: phase type distribution (unit-weight share)",
        )


@stage_fn("report")
def _fig10_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig10Result:
    """Unit-weight share per phase type for every benchmark."""
    shares: dict[str, dict[str, float]] = {}
    for label in params["labels"]:
        job = inputs[f"job:{label}"]
        model = inputs[f"model:{label}"]
        shares[label] = phase_type_distribution(job, model.assignments)
    return Fig10Result(shares=shares)


def graph_fig10(graph: StageGraph, cfg: ExperimentConfig) -> str:
    """Wire Figure 10 into ``graph``; return the report node's name."""
    deps, labels = model_inputs(graph, all_label_pairs(), cfg)
    return graph.node(
        "report:fig10",
        _fig10_report,
        params=report_params(cfg, labels),
        deps=deps,
    )


def run_fig10(cfg: ExperimentConfig | None = None) -> Fig10Result:
    """Compute Figure 10 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig10")
    return run_report(graph, graph_fig10(graph, cfg))
