"""Figures 12 and 13: input sensitivity analysis.

The graph workloads (cc, rank on both frameworks) train on the Google
input and test the seven Table II reference inputs.  Figure 12 plots
the percentage of simulation points that fall in input-*sensitive*
phases (the sample needed per reference input; paper: the sample size
shrinks by 20–45 %, 33.7 % on average).  Figure 13 counts sensitive vs
insensitive phases (paper: insensitive phases are at least ~40 % of the
total for most workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.sampling import stratified_sample
from repro.core.sensitivity import InputSensitivityResult, input_sensitivity_test
from repro.datagen.seeds import REFERENCE_INPUTS, TRAINING_INPUT
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_spec,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn
from repro.runtime.stages import spec_nodes

__all__ = [
    "SensitivityRow",
    "Fig12_13Result",
    "graph_fig12_13",
    "run_fig12_13",
    "GRAPH_LABEL_PAIRS",
]

GRAPH_LABEL_PAIRS: tuple[tuple[str, str], ...] = (
    ("cc", "hadoop"),
    ("cc", "spark"),
    ("rank", "hadoop"),
    ("rank", "spark"),
)


@dataclass(frozen=True)
class SensitivityRow:
    """One workload's sensitivity summary."""

    label: str
    n_phases: int
    n_sensitive: int
    sensitive_point_fraction: float  # Figure 12's bar
    triggered_by: dict[int, tuple[str, ...]]

    @property
    def n_insensitive(self) -> int:
        """Phases whose performance does not change by input."""
        return self.n_phases - self.n_sensitive

    @property
    def sample_reduction(self) -> float:
        """Fraction of simulation points skippable on reference inputs."""
        return 1.0 - self.sensitive_point_fraction


@dataclass
class Fig12_13Result:
    """Rows for the four graph workloads + full per-input detail."""

    rows: list[SensitivityRow]
    details: dict[str, InputSensitivityResult]
    n_points: int

    def average_reduction(self) -> float:
        """Mean sample-size reduction (paper: 33.7 %)."""
        return float(np.mean([r.sample_reduction for r in self.rows]))

    def to_text(self) -> str:
        """Render both figures as one table."""
        body = [
            (
                r.label,
                r.n_phases,
                r.n_sensitive,
                r.n_insensitive,
                f"{100 * r.sensitive_point_fraction:.1f}",
                f"{100 * r.sample_reduction:.1f}",
            )
            for r in self.rows
        ]
        body.append(
            ("AVERAGE", "", "", "", "", f"{100 * self.average_reduction():.1f}")
        )
        return format_table(
            [
                "benchmark",
                "phases",
                "sensitive",
                "insensitive",
                "sensitive points %",
                "reduction %",
            ],
            body,
            title=(
                "Figures 12-13: input sensitivity "
                f"(training={TRAINING_INPUT.name}, n={self.n_points})"
            ),
        )


@stage_fn("report")
def _fig12_13_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig12_13Result:
    """Sensitivity test per graph workload over the reference profiles."""
    n_points = params["n_points"]
    ref_names = params["ref_names"]
    rows: list[SensitivityRow] = []
    details: dict[str, InputSensitivityResult] = {}
    for label in params["labels"]:
        train_job = inputs[f"job:{label}"]
        model = inputs[f"model:{label}"]
        ref_jobs = {name: inputs[f"ref:{label}:{name}"] for name in ref_names}
        result = input_sensitivity_test(model, train_job, ref_jobs)

        est = stratified_sample(
            model.assignments,
            train_job.profile.cpi(),
            max(n_points, model.k),
            rng=np.random.default_rng(params["seed"]),
            k=model.k,
        )
        rows.append(
            SensitivityRow(
                label=label,
                n_phases=model.k,
                n_sensitive=len(result.sensitive_phases),
                sensitive_point_fraction=result.sensitive_point_fraction(
                    est.allocation
                ),
                triggered_by={
                    p.phase_id: p.triggered_by for p in result.phases if p.sensitive
                },
            )
        )
        details[label] = result
    return Fig12_13Result(rows=rows, details=details, n_points=n_points)


def graph_fig12_13(
    graph: StageGraph,
    cfg: ExperimentConfig,
    *,
    n_points: int = 20,
    reference_names: tuple[str, ...] | None = None,
) -> str:
    """Wire Figures 12-13 into ``graph``; return the report node's name.

    Each workload contributes one training chain (profile + model on
    the Google input) and one profile chain per reference input; the
    report stage consumes them as ``job:``/``model:``/``ref:`` inputs.
    """
    ref_names = reference_names or tuple(g.name for g in REFERENCE_INPUTS)
    deps: dict[str, str] = {}
    labels: list[str] = []
    for workload, framework in GRAPH_LABEL_PAIRS:
        spec = make_spec(workload, framework, cfg, graph_name=TRAINING_INPUT.name)
        nodes = spec_nodes(graph, spec)
        label = f"{workload}_{'sp' if framework == 'spark' else 'hp'}"
        labels.append(label)
        deps[f"job:{label}"] = nodes["profile"]
        deps[f"model:{label}"] = nodes["model"]
        for name in ref_names:
            ref_spec = make_spec(workload, framework, cfg, graph_name=name)
            ref_nodes = spec_nodes(graph, ref_spec, want="profile")
            deps[f"ref:{label}:{name}"] = ref_nodes["profile"]
    return graph.node(
        "report:fig12_13",
        _fig12_13_report,
        params=report_params(
            cfg, labels, n_points=n_points, ref_names=list(ref_names)
        ),
        deps=deps,
    )


def run_fig12_13(
    cfg: ExperimentConfig | None = None,
    *,
    n_points: int = 20,
    reference_names: tuple[str, ...] | None = None,
) -> Fig12_13Result:
    """Compute Figures 12 and 13 over the Table II inputs.

    The graph wires the 4 training chains and the 4 × 7 reference
    profile chains; under ``SIMPROF_JOBS`` the ready stages of each
    wave run in parallel.
    """
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig12_13")
    node = graph_fig12_13(
        graph, cfg, n_points=n_points, reference_names=reference_names
    )
    return run_report(graph, node)
