"""Extension experiment: the streaming pipeline vs the batch pipeline.

The streaming refactor claims three things: (1) ``analyze_stream`` is
*bit-identical* to ``analyze`` under the same seed while the trace is
consumed live, (2) it does so with a smaller peak footprint because the
job trace is never materialised, and (3) the online mode can classify
units against an existing phase model while the job is still running.
This driver measures all three on one benchmark and renders the
evidence as a table for the report.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SimProf
from repro.experiments.common import ExperimentConfig, format_table
from repro.runtime.instrument import get_instrumentation
from repro.workloads import run_workload, run_workload_stream

__all__ = ["StreamingComparisonResult", "run_streaming_comparison"]


@dataclass
class StreamingComparisonResult:
    """Batch-vs-streaming evidence for one benchmark."""

    label: str
    n_units: int
    n_phases: int
    batch_peak_kb: float
    stream_peak_kb: float
    identical_points: bool
    identical_assignments: bool
    live_agreement: float
    units_per_second: float

    @property
    def memory_ratio(self) -> float:
        """Batch peak over streaming peak (>1 means streaming wins)."""
        return (
            self.batch_peak_kb / self.stream_peak_kb
            if self.stream_peak_kb > 0 else float("inf")
        )

    def to_text(self) -> str:
        """Render the comparison table."""
        rows = [
            ("units profiled", self.n_units),
            ("phases formed", self.n_phases),
            ("batch peak memory", f"{self.batch_peak_kb:,.0f} KiB"),
            ("streaming peak memory", f"{self.stream_peak_kb:,.0f} KiB"),
            ("peak ratio (batch/stream)", f"{self.memory_ratio:.2f}x"),
            ("simulation points identical",
             "yes" if self.identical_points else "NO"),
            ("phase assignments identical",
             "yes" if self.identical_assignments else "NO"),
            ("live classification agreement", f"{self.live_agreement:.1%}"),
            ("streaming throughput", f"{self.units_per_second:,.0f} units/s"),
        ]
        return format_table(
            ["measure", "value"],
            rows,
            title=f"Extension: streaming pipeline ({self.label})",
        )


def run_streaming_comparison(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    n_points: int = 20,
) -> StreamingComparisonResult:
    """Run one benchmark through both pipelines and compare.

    The batch side materialises the trace and analyzes it; the streaming
    side re-runs the identical workload as a live :class:`TraceStream`.
    Peak memory is ``tracemalloc``'s high-water mark over run+analysis,
    so the batch number includes the materialised :class:`JobTrace` the
    streaming path never allocates.
    """
    cfg = cfg or ExperimentConfig()
    tool: SimProf = cfg.simprof_tool()
    run_kwargs = dict(scale=cfg.scale, seed=cfg.seed)

    tracemalloc.start()
    trace = run_workload(workload, framework, **run_kwargs)
    batch = tool.analyze(trace, n_points=n_points)
    _, batch_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del trace

    tracemalloc.start()
    with get_instrumentation().capture() as delta:
        stream = run_workload_stream(workload, framework, **run_kwargs)
        streamed = tool.analyze_stream(stream, n_points=n_points)
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    stage = delta.get("stream-profiling")
    units_per_second = 0.0
    if stage is not None:
        secs = stage.counters.get("unit_seconds", 0.0)
        if secs > 0:
            units_per_second = stage.counters.get("units", 0.0) / secs

    # Live mode: classify the training thread's units against the batch
    # model while a fresh run streams, and score agreement with the
    # batch assignments (exact classification of identical units).
    thread_id = batch.job.profile.thread_id
    live_stream = run_workload_stream(workload, framework, **run_kwargs)
    live_phases = [
        phase
        for _tid, _unit, phase in tool.classify_stream(
            batch.model, live_stream, thread_id=thread_id
        )
    ]
    batch_assignments = np.asarray(batch.model.assignments)
    agreement = (
        float(np.mean(np.asarray(live_phases) == batch_assignments))
        if len(live_phases) == len(batch_assignments) else 0.0
    )

    suffix = "sp" if framework == "spark" else "hp"
    return StreamingComparisonResult(
        label=f"{workload}_{suffix}",
        n_units=batch.job.n_units,
        n_phases=batch.model.k,
        batch_peak_kb=batch_peak / 1024.0,
        stream_peak_kb=stream_peak / 1024.0,
        identical_points=bool(
            np.array_equal(batch.points.selected, streamed.points.selected)
        ),
        identical_assignments=bool(
            np.array_equal(batch.model.assignments, streamed.model.assignments)
        ),
        live_agreement=agreement,
        units_per_second=units_per_second,
    )
