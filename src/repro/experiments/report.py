"""One-shot reproduction report.

Runs every table/figure driver (plus the extensions) and assembles a
single markdown document — the artifact a reviewer would skim.  Used by
``simprof report``.
"""

from __future__ import annotations

import io
from typing import Callable

from repro.experiments.common import ExperimentConfig

__all__ = ["generate_report"]


def _section(buf: io.StringIO, title: str, body: str) -> None:
    buf.write(f"## {title}\n\n```\n{body}\n```\n\n")


def generate_report(
    cfg: ExperimentConfig | None = None,
    *,
    include_extensions: bool = True,
    progress: Callable[[str], None] | None = None,
) -> str:
    """Run all experiments and return the markdown report."""
    from repro.experiments.fig06_cov import run_fig6
    from repro.experiments.fig07_errors import run_fig7
    from repro.experiments.fig08_samplesize import run_fig8
    from repro.experiments.fig09_phasecount import run_fig9
    from repro.experiments.fig10_phasetypes import run_fig10
    from repro.experiments.fig11_allocation import run_fig11
    from repro.experiments.fig12_13_sensitivity import run_fig12_13
    from repro.experiments.fig14_15_wordcount import run_wordcount_series
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    cfg = cfg or ExperimentConfig()
    note = progress or (lambda _msg: None)
    buf = io.StringIO()
    buf.write("# SimProf reproduction report\n\n")
    buf.write(
        f"Configuration: scale={cfg.scale}, seed={cfg.seed}, "
        f"unit={cfg.simprof.unit_size // 1_000_000}M, "
        f"snapshot={cfg.simprof.snapshot_period // 1_000_000}M, "
        f"draws={cfg.n_sampling_draws}\n\n"
    )

    note("tables")
    _section(buf, "Table I — benchmarks", run_table1().to_text())
    _section(buf, "Table II — graph inputs", run_table2(cfg.seed).to_text())

    note("figure 6")
    fig6 = run_fig6(cfg)
    _section(buf, "Figure 6 — CoV of CPIs", fig6.to_text())
    note("figure 7")
    fig7 = run_fig7(cfg)
    _section(buf, "Figure 7 — sampling errors", fig7.to_text())
    note("figure 8")
    _section(buf, "Figure 8 — required sample size", run_fig8(cfg).to_text())
    note("figure 9")
    _section(buf, "Figure 9 — phase counts", run_fig9(cfg).to_text())
    note("figure 10")
    _section(buf, "Figure 10 — phase types", run_fig10(cfg).to_text())
    note("figure 11")
    _section(buf, "Figure 11 — optimal allocation", run_fig11(cfg).to_text())
    note("figures 12-13")
    _section(
        buf, "Figures 12-13 — input sensitivity", run_fig12_13(cfg).to_text()
    )
    note("figures 14-15")
    _section(
        buf, "Figure 14 — WordCount on Spark",
        run_wordcount_series("spark", cfg).to_text(),
    )
    _section(
        buf, "Figure 15 — WordCount on Hadoop",
        run_wordcount_series("hadoop", cfg).to_text(),
    )

    if include_extensions:
        from repro.experiments.ext_faults import run_fault_sweep
        from repro.experiments.ext_streaming import run_streaming_comparison
        from repro.experiments.ext_systematic import run_systematic_sweep
        from repro.experiments.ext_text_sensitivity import run_text_sensitivity

        note("extensions")
        _section(
            buf,
            "Extension — SimProf x systematic sampling",
            run_systematic_sweep(cfg).to_text(),
        )
        _section(
            buf,
            "Extension — text-workload input sensitivity",
            run_text_sensitivity(cfg).to_text(),
        )
        _section(
            buf,
            "Extension — streaming pipeline",
            run_streaming_comparison(cfg).to_text(),
        )
        _section(
            buf,
            "Extension — fault injection",
            run_fault_sweep(cfg).to_text(),
        )

    headline = fig7.averages()
    buf.write("## Headline\n\n")
    buf.write(
        f"SimProf mean CPI error: **{100 * headline['SimProf']:.2f}%** "
        f"(paper: 1.6%) at n=20 points, vs SECOND "
        f"{100 * headline['SECOND']:.2f}%, SRS {100 * headline['SRS']:.2f}%, "
        f"CODE {100 * headline['CODE']:.2f}%.\n"
    )
    return buf.getvalue()
