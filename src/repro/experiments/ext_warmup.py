"""Extension experiment: JVM warm-up and sampling robustness.

Data-analytic jobs run on a managed runtime; early execution is
interpreted/C1 until the JIT compiles the hot paths.  The paper
side-steps warm-up by profiling long runs, but a sampling approach that
anchors to wall-clock time (SECOND's early interval) inherits the
start-up bias, while SimProf's phase-stratified sample spreads across
the run.  This experiment turns the machine model's warm-up knob on and
compares.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.baselines import SecondSampler, SimProfSampler
from repro.core.pipeline import SimProf
from repro.experiments.common import ExperimentConfig, format_table
from repro.jvm.machine import MachineConfig
from repro.spark.context import SparkConfig
from repro.workloads import get_workload, WorkloadInput

__all__ = ["WarmupResult", "run_warmup_experiment"]


@dataclass
class WarmupResult:
    """Estimates and errors with and without warm-up, per approach."""

    rows: list[tuple]

    def estimate_shift(self, column: int) -> float:
        """|estimate(on) − estimate(off)| for one approach's column."""
        by_state = {r[0]: r for r in self.rows}
        return abs(float(by_state["on"][column]) - float(by_state["off"][column]))

    def second_shift(self) -> float:
        """How much warm-up moved SECOND's estimate (CPI)."""
        return self.estimate_shift(2)

    def simprof_shift(self) -> float:
        """How much warm-up moved SimProf's estimate (CPI)."""
        return self.estimate_shift(4)

    def oracle_shift(self) -> float:
        """How much warm-up moved the oracle itself (CPI)."""
        return self.estimate_shift(1)

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            [
                "warm-up",
                "oracle CPI",
                "SECOND est",
                "SECOND err %",
                "SimProf est",
                "SimProf err %",
            ],
            self.rows,
            title="Extension: JIT warm-up vs sampling approach (wc_sp)",
        )


def run_warmup_experiment(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    n_points: int = 20,
    warmup_penalty: float = 0.8,
    warmup_scale: float = 3e9,
) -> WarmupResult:
    """Compare SECOND vs SimProf with the JIT warm-up on and off."""
    cfg = cfg or ExperimentConfig()
    wl = get_workload(workload)
    rows = []
    for enabled in (False, True):
        machine = replace(
            MachineConfig(),
            instruction_scale=wl.spark_inst_scale,
            jit_warmup_penalty=warmup_penalty if enabled else 0.0,
            jit_warmup_scale=warmup_scale,
        )
        trace = wl.execute(
            "spark",
            WorkloadInput(scale=cfg.scale, seed=cfg.seed),
            spark_config=SparkConfig(seed=cfg.seed, machine=machine),
        )
        tool: SimProf = cfg.simprof_tool()
        job = tool.profile(trace)
        model = tool.form_phases(job)
        oracle = job.oracle_cpi()
        second = SecondSampler(seconds=10.0, warmup_fraction=0.0).sample(job)
        simprof_results = [
            SimProfSampler(n_points).sample(
                job,
                model,
                np.random.default_rng(np.random.SeedSequence([cfg.seed, i])),
            )
            for i in range(cfg.n_sampling_draws)
        ]
        simprof_est = float(np.mean([r.estimate for r in simprof_results]))
        simprof_err = float(
            np.mean([r.error_vs(oracle) for r in simprof_results])
        )
        rows.append(
            (
                "on" if enabled else "off",
                f"{oracle:.4f}",
                f"{second.estimate:.4f}",
                f"{100 * second.error_vs(oracle):.2f}",
                f"{simprof_est:.4f}",
                f"{100 * simprof_err:.2f}",
            )
        )
    return WarmupResult(rows=rows)
