"""Extension experiment: can more clusters rescue CODE?

The paper's Related Work: "simply increasing the number of clusters
does not result in having more homogeneous performance in each phase,
which becomes the over-fitting problem."  This experiment forces the
SimPoint-like CODE baseline to use more and more clusters and compares
its error against SimProf at the same *sample size* (CODE's sample size
equals its cluster count, so SimProf gets n = k points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import CodeSampler, SimProfSampler
from repro.core.clustering import kmeans
from repro.core.features import FeatureSpace
from repro.core.phases import PhaseModel
from repro.experiments.common import ExperimentConfig, format_table, get_model, get_profile

__all__ = ["CodeOverfitResult", "run_code_overfit"]


@dataclass
class CodeOverfitResult:
    """Rows: (k, CODE err %, SimProf err % at n=k)."""

    label: str
    rows: list[tuple]

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            ["clusters k", "CODE err %", "SimProf err % (n=k)"],
            self.rows,
            title=f"Extension: CODE over-fitting ({self.label})",
        )


def run_code_overfit(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "hadoop",
    ks: tuple[int, ...] = (5, 10, 20),
) -> CodeOverfitResult:
    """Force CODE to k clusters; compare against SimProf at n = k."""
    cfg = cfg or ExperimentConfig()
    job = get_profile(workload, framework, cfg)
    _job, base_model = get_model(workload, framework, cfg)
    oracle = job.oracle_cpi()
    space, X = FeatureSpace.fit(job, top_k=cfg.simprof.top_k_methods)

    rows = []
    for k in ks:
        if space.n_features == 0 or k > len(X):
            continue
        result = kmeans(X, k, seed=cfg.seed)
        forced = PhaseModel(
            space=space,
            centers=result.centers,
            assignments=result.assignments,
            silhouette_by_k={},
            global_mean=X.mean(axis=0),
        )
        code_err = CodeSampler().sample(job, forced).error_vs(oracle)
        simprof_errs = [
            SimProfSampler(k)
            .sample(
                job,
                base_model,
                np.random.default_rng(np.random.SeedSequence([cfg.seed, i])),
            )
            .error_vs(oracle)
            for i in range(cfg.n_sampling_draws)
        ]
        rows.append(
            (
                k,
                f"{100 * code_err:.2f}",
                f"{100 * float(np.mean(simprof_errs)):.2f}",
            )
        )
    suffix = "sp" if framework == "spark" else "hp"
    return CodeOverfitResult(label=f"{workload}_{suffix}", rows=rows)
