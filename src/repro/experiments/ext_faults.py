"""Extension experiment: stratified sampling accuracy under fault injection.

The fault framework (:mod:`repro.faults`) claims that recovery is
*semantically transparent*: task failures re-execute, stragglers and GC
pauses only stretch the trace, and stream drop/duplicate/reorder are
repaired by :class:`~repro.faults.stream.EventGuard` — so the job's
*results* never change, while the profiled trace gains the extra work
the recoveries cost.  This driver sweeps a uniform fault rate and
checks, per rate:

* the injected run still produces the same workload output (HDFS and
  shuffle byte counters match the fault-free run),
* SimProf's stratified CPI estimate stays within its own 99.7 %
  confidence interval of the (now perturbed) trace's true CPI — the
  paper's accuracy claim must survive the perturbation,
* the whole run replays deterministically (the fault report of a
  repeat run is identical).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, format_table
from repro.faults import FaultPlan
from repro.workloads import run_workload

__all__ = ["FaultSweepRow", "FaultSweepResult", "run_fault_sweep"]


@dataclass(frozen=True)
class FaultSweepRow:
    """Accuracy evidence for one fault rate."""

    rate: float
    n_faults: int
    estimate: float
    oracle: float
    error: float
    within_ci: bool
    results_match: bool
    replay_identical: bool


@dataclass
class FaultSweepResult:
    """The sweep table plus the invariants it must uphold."""

    label: str
    rows: list[FaultSweepRow]

    @property
    def all_results_match(self) -> bool:
        return all(r.results_match for r in self.rows)

    @property
    def all_within_ci(self) -> bool:
        return all(r.within_ci for r in self.rows)

    @property
    def all_replays_identical(self) -> bool:
        return all(r.replay_identical for r in self.rows)

    def to_text(self) -> str:
        table = format_table(
            ["rate", "faults", "est CPI", "oracle CPI", "error",
             "within CI", "results", "replay"],
            [
                (
                    f"{r.rate:.0%}",
                    r.n_faults,
                    f"{r.estimate:.4f}",
                    f"{r.oracle:.4f}",
                    f"{r.error:.2%}",
                    "yes" if r.within_ci else "NO",
                    "same" if r.results_match else "CHANGED",
                    "ok" if r.replay_identical else "DIVERGED",
                )
                for r in self.rows
            ],
            title=f"Extension: fault injection sweep ({self.label})",
        )
        verdict = (
            "recoveries transparent, estimates in-CI, replay deterministic"
            if (self.all_results_match and self.all_within_ci
                and self.all_replays_identical)
            else "INVARIANT VIOLATED — see table"
        )
        return f"{table}\n{verdict}"


def _results_fingerprint(meta: dict) -> tuple:
    """Workload-output invariant: byte counters faults must not move."""
    return (meta.get("hdfs_bytes_written"), meta.get("shuffle_bytes"))


def run_fault_sweep(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    rates: tuple[float, ...] = (0.0, 0.01, 0.02, 0.05),
    n_points: int = 20,
) -> FaultSweepResult:
    """Sweep a uniform fault rate and score accuracy + transparency.

    Each non-zero rate sets the task-failure, straggler, GC-pause,
    drop, duplicate and reorder probabilities simultaneously
    (:meth:`FaultPlan.uniform`); the rate-0 row doubles as the baseline
    whose output fingerprint every injected run must reproduce.
    """
    cfg = cfg or ExperimentConfig()
    tool = cfg.simprof_tool()
    run_kwargs = dict(scale=cfg.scale, seed=cfg.seed)

    baseline_fp: tuple | None = None
    rows: list[FaultSweepRow] = []
    for rate in rates:
        plan = FaultPlan.uniform(rate, seed=cfg.seed)
        trace = run_workload(workload, framework, faults=plan, **run_kwargs)
        report = trace.meta.get("fault_report", {})
        fingerprint = _results_fingerprint(trace.meta)
        if baseline_fp is None:
            baseline_fp = fingerprint

        # Determinism: the same plan must replay to the same faults.
        repeat = run_workload(workload, framework, faults=plan, **run_kwargs)
        replay_identical = (
            repeat.meta.get("fault_report", {}) == report
            and _results_fingerprint(repeat.meta) == fingerprint
        )

        result = tool.analyze(trace, n_points=n_points)
        lo, hi = result.points.confidence_interval(0.997)
        oracle = result.oracle_cpi()
        rows.append(
            FaultSweepRow(
                rate=rate,
                n_faults=int(report.get("n_events", 0)),
                estimate=float(result.points.estimate),
                oracle=float(oracle),
                error=float(result.sampling_error()),
                within_ci=bool(lo <= oracle <= hi),
                results_match=fingerprint == baseline_fp,
                replay_identical=replay_identical,
            )
        )

    suffix = "sp" if framework == "spark" else "hp"
    return FaultSweepResult(label=f"{workload}_{suffix}", rows=rows)
