"""Terminal rendering of the paper's scatter figures.

No plotting stack is assumed offline, so Figures 14/15 (CPI per
sampling unit + phase id, units sorted by phase) render as ASCII:
CPI dots on a character grid with phase boundaries marked — enough to
eyeball the per-phase CPI bands and variance the paper's plots show.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_scatter", "phase_scatter"]


def ascii_scatter(
    y: np.ndarray,
    *,
    width: int = 78,
    height: int = 16,
    marker: str = "·",
    y_label: str = "",
) -> str:
    """Render a 1-D series as an ASCII scatter (index vs value)."""
    y = np.asarray(y, dtype=np.float64)
    if len(y) == 0:
        return "(empty series)"
    lo, hi = float(y.min()), float(y.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    xs = np.minimum((np.arange(len(y)) * width) // max(1, len(y)), width - 1)
    ys = ((y - lo) / (hi - lo) * (height - 1)).round().astype(int)
    for x, row in zip(xs, ys):
        grid[height - 1 - row][x] = marker
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{hi:7.2f} |"
        elif i == height - 1:
            prefix = f"{lo:7.2f} |"
        else:
            prefix = "        |"
        lines.append(prefix + "".join(row))
    lines.append("        +" + "-" * width)
    if y_label:
        lines.insert(0, f"{y_label} (n={len(y)})")
    return "\n".join(lines)


def phase_scatter(
    cpi: np.ndarray,
    phases: np.ndarray,
    *,
    width: int = 78,
    height: int = 16,
) -> str:
    """The Figure 14/15 rendering: CPI dots with phase boundaries.

    ``cpi``/``phases`` must already be sorted by phase id (as the
    figure's x-axis is).  Phase boundaries are drawn as ``|`` columns
    and the phase ids printed beneath.
    """
    cpi = np.asarray(cpi, dtype=np.float64)
    phases = np.asarray(phases)
    if len(cpi) != len(phases):
        raise ValueError("cpi and phases disagree on length")
    plot = ascii_scatter(cpi, width=width, height=height, y_label="CPI")
    lines = plot.splitlines()

    # Column index of each unit.
    xs = np.minimum((np.arange(len(cpi)) * width) // max(1, len(cpi)), width - 1)
    boundary_cols = set()
    for i in range(1, len(phases)):
        if phases[i] != phases[i - 1]:
            boundary_cols.add(int(xs[i]))
    # Overlay boundaries on the grid rows (skip label/axis rows).
    out = []
    for line in lines:
        if line.startswith(("CPI", "        +")):
            out.append(line)
            continue
        prefix, body = line[:9], list(line[9:].ljust(width))
        for col in boundary_cols:
            body[col] = "|"
        out.append(prefix + "".join(body))

    # Phase-id ruler.
    ruler = [" "] * width
    for phase_id in np.unique(phases):
        members = np.nonzero(phases == phase_id)[0]
        mid = int(xs[members[len(members) // 2]])
        label = str(int(phase_id))
        for j, ch in enumerate(label):
            if mid + j < width:
                ruler[mid + j] = ch
    out.append("  phase  " + "".join(ruler))
    return "\n".join(out)
