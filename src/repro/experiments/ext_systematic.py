"""Extension experiment: SimProf × systematic sampling.

The paper's future-work direction, quantified: for a workload, sweep
the SMARTS chunk period and report the end-to-end CPI error and the
detailed-simulation budget per simulation point, against simulating
each 100 M-instruction point in full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SimProf
from repro.core.systematic import SystematicConfig, SystematicSimProf
from repro.experiments.common import ExperimentConfig, format_table
from repro.jvm.perf import PerfCounterReader
from repro.workloads import run_workload

__all__ = ["SystematicSweepResult", "run_systematic_sweep"]


@dataclass
class SystematicSweepResult:
    """Rows of the period sweep for one benchmark."""

    label: str
    n_points: int
    rows: list[tuple]

    def to_text(self) -> str:
        """Render the sweep as a table."""
        return format_table(
            [
                "period",
                "detailed/unit",
                "speedup",
                "SimProf err %",
                "combined err %",
                "added err %",
            ],
            self.rows,
            title=(
                f"Extension: SimProf x systematic sampling "
                f"({self.label}, n={self.n_points})"
            ),
        )


def run_systematic_sweep(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    n_points: int = 20,
    periods: tuple[int, ...] = (250_000, 1_000_000, 5_000_000),
    detailed_size: int = 10_000,
) -> SystematicSweepResult:
    """Sweep the systematic period on one benchmark.

    Needs sub-unit counters, so the workload is re-run here (the
    experiment cache stores only per-unit profiles).
    """
    cfg = cfg or ExperimentConfig()
    trace = run_workload(workload, framework, scale=cfg.scale, seed=cfg.seed)
    tool: SimProf = cfg.simprof_tool()
    job = tool.profile(trace)
    model = tool.form_phases(job)
    points = tool.select_points(job, model, n_points)
    reader = PerfCounterReader(
        trace.thread(job.profile.thread_id)
    )

    rows = []
    for period in periods:
        sys_cfg = SystematicConfig(
            detailed_size=detailed_size, period=period
        )
        result = SystematicSimProf(sys_cfg).evaluate(
            job, model, reader, points, rng=np.random.default_rng(cfg.seed)
        )
        rows.append(
            (
                f"{period / 1e6:g}M",
                f"{sys_cfg.detailed_instructions(job.profile.unit_size) / 1e6:.2f}M",
                f"{result.speedup:.0f}x",
                f"{100 * result.selection_error:.2f}",
                f"{100 * result.error:.2f}",
                f"{100 * result.added_error:.2f}",
            )
        )
    suffix = "sp" if framework == "spark" else "hp"
    return SystematicSweepResult(
        label=f"{workload}_{suffix}", n_points=n_points, rows=rows
    )
