"""Extension experiment: SimProf × systematic sampling.

The paper's future-work direction, quantified: for a workload, sweep
the SMARTS chunk period and report the end-to-end CPI error and the
detailed-simulation budget per simulation point, against simulating
each 100 M-instruction point in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.systematic import SystematicConfig, SystematicSimProf
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_spec,
    report_params,
    run_report,
)
from repro.jvm.perf import PerfCounterReader
from repro.runtime.provenance import StageGraph, stage_fn
from repro.runtime.stages import spec_nodes

__all__ = ["SystematicSweepResult", "graph_systematic_sweep", "run_systematic_sweep"]


@dataclass
class SystematicSweepResult:
    """Rows of the period sweep for one benchmark."""

    label: str
    n_points: int
    rows: list[tuple]

    def to_text(self) -> str:
        """Render the sweep as a table."""
        return format_table(
            [
                "period",
                "detailed/unit",
                "speedup",
                "SimProf err %",
                "combined err %",
                "added err %",
            ],
            self.rows,
            title=(
                f"Extension: SimProf x systematic sampling "
                f"({self.label}, n={self.n_points})"
            ),
        )


@stage_fn("report")
def _systematic_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> SystematicSweepResult:
    """Period sweep over the cached trace/profile/model/points chain.

    Sub-unit counters come from the *trace* artifact — the point of
    wiring the raw trace as a graph input instead of re-running the
    workload on every sweep invocation.
    """
    trace = inputs["trace"]
    job = inputs["job"]
    model = inputs["model"]
    points = inputs["points"]
    reader = PerfCounterReader(trace.thread(job.profile.thread_id))

    rows = []
    for period in params["periods"]:
        sys_cfg = SystematicConfig(
            detailed_size=params["detailed_size"], period=period
        )
        result = SystematicSimProf(sys_cfg).evaluate(
            job, model, reader, points, rng=np.random.default_rng(params["seed"])
        )
        rows.append(
            (
                f"{period / 1e6:g}M",
                f"{sys_cfg.detailed_instructions(job.profile.unit_size) / 1e6:.2f}M",
                f"{result.speedup:.0f}x",
                f"{100 * result.selection_error:.2f}",
                f"{100 * result.error:.2f}",
                f"{100 * result.added_error:.2f}",
            )
        )
    return SystematicSweepResult(
        label=params["label"], n_points=params["n_points"], rows=rows
    )


def graph_systematic_sweep(
    graph: StageGraph,
    cfg: ExperimentConfig,
    *,
    workload: str = "wc",
    framework: str = "spark",
    n_points: int = 20,
    periods: tuple[int, ...] = (250_000, 1_000_000, 5_000_000),
    detailed_size: int = 10_000,
) -> str:
    """Wire the systematic sweep into ``graph``; return the report node."""
    spec = make_spec(workload, framework, cfg)
    nodes = spec_nodes(graph, spec, n_points=n_points)
    suffix = "sp" if framework == "spark" else "hp"
    label = f"{workload}_{suffix}"
    return graph.node(
        f"report:ext_systematic:{label}",
        _systematic_report,
        params=report_params(
            cfg,
            [label],
            label=label,
            n_points=n_points,
            periods=list(periods),
            detailed_size=detailed_size,
        ),
        deps={
            "trace": nodes["trace"],
            "job": nodes["profile"],
            "model": nodes["model"],
            "points": nodes["estimate"],
        },
    )


def run_systematic_sweep(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    n_points: int = 20,
    periods: tuple[int, ...] = (250_000, 1_000_000, 5_000_000),
    detailed_size: int = 10_000,
) -> SystematicSweepResult:
    """Sweep the systematic period on one benchmark.

    Sub-unit counters come from the trace artifact, so a sweep rerun
    (or a new period grid) reuses the cached trace instead of
    re-running the workload.
    """
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("ext_systematic")
    node = graph_systematic_sweep(
        graph,
        cfg,
        workload=workload,
        framework=framework,
        n_points=n_points,
        periods=periods,
        detailed_size=detailed_size,
    )
    return run_report(graph, node)
