"""Figures 14 and 15: WordCount phase behaviour on both frameworks.

The scatter data of the paper's final figures: per sampling unit (units
sorted by phase id), the CPI (blue dots / left axis) and the phase id
(red line / right axis), plus the per-phase narrative:

* Figure 14 (Spark): the dominant phase carries the map-side reduce —
  ``Aggregator.combineValuesByKey`` coupled with the map and shuffle
  work of stage 1 — with fairly stable CPI; the small second phase is
  the reduce+HDFS-output stage with higher CPI variation.
* Figure 15 (Hadoop): map (TokenizerMapper, low CPI, stable), combine
  (NewCombinerRunner), and sort (QuickSort, high CPI variation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_spec,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn
from repro.runtime.stages import spec_nodes

__all__ = [
    "WordCountPhaseSeries",
    "graph_wordcount_series",
    "run_wordcount_series",
]


@dataclass
class WordCountPhaseSeries:
    """The plotted series of Figure 14 or 15."""

    label: str
    cpi_sorted: np.ndarray  # CPI per unit, units sorted by phase id
    phase_sorted: np.ndarray  # phase id per unit, same order
    phase_summary: list[dict]

    def to_text(self, plot: bool = True) -> str:
        """Summarise the scatter as a table (+ ASCII scatter)."""
        from repro.experiments.textplot import phase_scatter

        table = self._summary_table()
        if not plot:
            return table
        scatter = phase_scatter(self.cpi_sorted, self.phase_sorted)
        return f"{table}\n\n{scatter}"

    def _summary_table(self) -> str:
        return format_table(
            ["phase", "units", "weight", "cpi mean", "cpi CoV", "dominant method"],
            [
                (
                    p["phase_id"],
                    p["n_units"],
                    f"{p['weight']:.3f}",
                    f"{p['cpi_mean']:.3f}",
                    f"{p['cpi_cov']:.3f}",
                    p["top_method"],
                )
                for p in self.phase_summary
            ],
            title=f"Figure {'14' if self.label.endswith('sp') else '15'}: "
            f"WordCount phases ({self.label})",
        )


@stage_fn("report")
def _wordcount_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> WordCountPhaseSeries:
    """Phase-sorted CPI series + per-phase summary for WordCount."""
    job = inputs["job"]
    model = inputs["model"]
    cpi = job.profile.cpi()
    order = np.argsort(model.assignments, kind="stable")
    stats = model.phase_stats(cpi)
    summary = []
    for s in stats:
        tops = [m for m, _lift in model.top_methods(s.phase_id, 3)] or ["-"]
        summary.append(
            {
                "phase_id": s.phase_id,
                "n_units": s.n_units,
                "weight": s.weight,
                "cpi_mean": s.cpi_mean,
                "cpi_cov": s.cpi_cov,
                "top_method": tops[0],
                "top_methods": tops,
            }
        )
    return WordCountPhaseSeries(
        label=params["label"],
        cpi_sorted=cpi[order],
        phase_sorted=model.assignments[order],
        phase_summary=summary,
    )


def graph_wordcount_series(
    graph: StageGraph, framework: str, cfg: ExperimentConfig
) -> str:
    """Wire Figure 14/15 into ``graph``; return the report node's name."""
    spec = make_spec("wc", framework, cfg)
    nodes = spec_nodes(graph, spec)
    suffix = "sp" if framework == "spark" else "hp"
    label = f"wc_{suffix}"
    return graph.node(
        f"report:fig14_15:{label}",
        _wordcount_report,
        params=report_params(cfg, [label], label=label),
        deps={"job": nodes["profile"], "model": nodes["model"]},
    )


def run_wordcount_series(
    framework: str, cfg: ExperimentConfig | None = None
) -> WordCountPhaseSeries:
    """Figure 14 (``framework='spark'``) or 15 (``'hadoop'``)."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig14_15")
    return run_report(graph, graph_wordcount_series(graph, framework, cfg))
