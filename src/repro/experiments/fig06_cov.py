"""Figure 6: coefficient of variation of CPIs.

For every benchmark, the population CoV (all sampling units), the
weighted CoV (per-phase CoV weighted by phase size) and the maximum
per-phase CoV.  The paper's claim: weighted < population everywhere
(phase formation separates performance levels), while the maximum CoV
shows that some phases stay non-homogeneous (quicksort, reduce…).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import CoVReport, cov_report
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    prefetch_models,
)
from repro.workloads import label_of

__all__ = ["Fig6Row", "Fig6Result", "run_fig6"]


@dataclass(frozen=True)
class Fig6Row:
    """One bar group of Figure 6."""

    label: str
    population: float
    weighted: float
    maximum: float


@dataclass
class Fig6Result:
    """All bar groups plus convenience checks."""

    rows: list[Fig6Row]

    def weighted_below_population(self) -> bool:
        """The paper's headline property of the figure."""
        return all(r.weighted <= r.population + 1e-9 for r in self.rows)

    def to_text(self) -> str:
        """Render the figure as a table."""
        return format_table(
            ["benchmark", "population", "weighted", "max"],
            [
                (r.label, f"{r.population:.3f}", f"{r.weighted:.3f}", f"{r.maximum:.3f}")
                for r in self.rows
            ],
            title="Figure 6: CoV of CPIs (population / weighted / max)",
        )


def run_fig6(cfg: ExperimentConfig | None = None) -> Fig6Result:
    """Compute Figure 6 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    prefetch_models(all_label_pairs(), cfg)
    rows: list[Fig6Row] = []
    for workload, framework in all_label_pairs():
        job, model = get_model(workload, framework, cfg)
        report: CoVReport = cov_report(job.profile.cpi(), model.assignments)
        rows.append(
            Fig6Row(
                label=label_of(workload, framework),
                population=report.population,
                weighted=report.weighted,
                maximum=report.maximum,
            )
        )
    return Fig6Result(rows=rows)
