"""Figure 6: coefficient of variation of CPIs.

For every benchmark, the population CoV (all sampling units), the
weighted CoV (per-phase CoV weighted by phase size) and the maximum
per-phase CoV.  The paper's claim: weighted < population everywhere
(phase formation separates performance levels), while the maximum CoV
shows that some phases stay non-homogeneous (quicksort, reduce…).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.analysis import CoVReport, cov_report
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    model_inputs,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn

__all__ = ["Fig6Row", "Fig6Result", "graph_fig6", "run_fig6"]


@dataclass(frozen=True)
class Fig6Row:
    """One bar group of Figure 6."""

    label: str
    population: float
    weighted: float
    maximum: float


@dataclass
class Fig6Result:
    """All bar groups plus convenience checks."""

    rows: list[Fig6Row]

    def weighted_below_population(self) -> bool:
        """The paper's headline property of the figure."""
        return all(r.weighted <= r.population + 1e-9 for r in self.rows)

    def to_text(self) -> str:
        """Render the figure as a table."""
        return format_table(
            ["benchmark", "population", "weighted", "max"],
            [
                (r.label, f"{r.population:.3f}", f"{r.weighted:.3f}", f"{r.maximum:.3f}")
                for r in self.rows
            ],
            title="Figure 6: CoV of CPIs (population / weighted / max)",
        )


@stage_fn("report")
def _fig6_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig6Result:
    """CoV table over every benchmark's profile + phase model."""
    rows: list[Fig6Row] = []
    for label in params["labels"]:
        job = inputs[f"job:{label}"]
        model = inputs[f"model:{label}"]
        report: CoVReport = cov_report(job.profile.cpi(), model.assignments)
        rows.append(
            Fig6Row(
                label=label,
                population=report.population,
                weighted=report.weighted,
                maximum=report.maximum,
            )
        )
    return Fig6Result(rows=rows)


def graph_fig6(graph: StageGraph, cfg: ExperimentConfig) -> str:
    """Wire Figure 6 into ``graph``; return the report node's name."""
    deps, labels = model_inputs(graph, all_label_pairs(), cfg)
    return graph.node(
        "report:fig06",
        _fig6_report,
        params=report_params(cfg, labels),
        deps=deps,
    )


def run_fig6(cfg: ExperimentConfig | None = None) -> Fig6Result:
    """Compute Figure 6 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig06")
    return run_report(graph, graph_fig6(graph, cfg))
