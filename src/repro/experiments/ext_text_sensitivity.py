"""Extension experiment: input sensitivity for text workloads.

Section IV-E leaves text workloads for future work, but names the input
axes that matter: "for WordCount, the inputs with different frequencies
of words should be used, while for Sort, the inputs with different
ordering between words".  The text synthesizer exposes exactly those
knobs, so this extension runs the Section III-D procedure on them:

* **WordCount** — training input at Zipf s = 1.02; reference inputs
  with flatter (s = 0.8: many distinct hot words, bigger combiner maps)
  and steeper (s = 1.6: few hot words) frequency profiles.
* **Sort** — training input with frequency ranks decorrelated from
  alphabetical order; reference inputs with correlated ranks and with
  a steeper skew (duplicate-heavy keys), which change the quicksort
  partition behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.sampling import stratified_sample
from repro.core.sensitivity import input_sensitivity_test
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    get_model,
    get_profile,
    make_spec,
    prefetch_models,
    prefetch_profiles,
)

__all__ = ["TextSensitivityResult", "run_text_sensitivity"]

# (workload, framework) -> {reference input name: workload params}
TEXT_REFERENCE_INPUTS: dict[tuple[str, str], dict[str, dict[str, Any]]] = {
    ("wc", "spark"): {
        "flat-zipf": {"zipf_s": 0.8},
        "steep-zipf": {"zipf_s": 1.6},
    },
    ("wc", "hadoop"): {
        "flat-zipf": {"zipf_s": 0.8},
        "steep-zipf": {"zipf_s": 1.6},
    },
    ("sort", "spark"): {
        "rank-ordered": {"shuffle_ranks": False},
        "steep-zipf": {"zipf_s": 1.6},
    },
    ("sort", "hadoop"): {
        "rank-ordered": {"shuffle_ranks": False},
        "steep-zipf": {"zipf_s": 1.6},
    },
}


@dataclass
class TextSensitivityResult:
    """Sensitivity summary for the text workloads."""

    rows: list[tuple]
    details: dict[str, Any]

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            [
                "benchmark",
                "phases",
                "sensitive",
                "insensitive",
                "sensitive points %",
                "flagged by",
            ],
            self.rows,
            title="Extension: input sensitivity for text workloads",
        )


def run_text_sensitivity(
    cfg: ExperimentConfig | None = None, *, n_points: int = 20
) -> TextSensitivityResult:
    """Run the input-sensitivity procedure on wc and sort."""
    cfg = cfg or ExperimentConfig()
    prefetch_models(TEXT_REFERENCE_INPUTS.keys(), cfg)
    prefetch_profiles(
        make_spec(w, f, cfg, params=params)
        for (w, f), refs in TEXT_REFERENCE_INPUTS.items()
        for params in refs.values()
    )
    rows = []
    details: dict[str, Any] = {}
    for (workload, framework), refs in TEXT_REFERENCE_INPUTS.items():
        train_job, model = get_model(workload, framework, cfg)
        ref_jobs = {
            name: get_profile(workload, framework, cfg, params=params)
            for name, params in refs.items()
        }
        result = input_sensitivity_test(model, train_job, ref_jobs)
        est = stratified_sample(
            model.assignments,
            train_job.profile.cpi(),
            max(n_points, model.k),
            rng=np.random.default_rng(cfg.seed),
            k=model.k,
        )
        label = f"{workload}_{'sp' if framework == 'spark' else 'hp'}"
        flagged_by = sorted(
            {name for p in result.phases for name in p.triggered_by}
        )
        rows.append(
            (
                label,
                model.k,
                len(result.sensitive_phases),
                len(result.insensitive_phases),
                f"{100 * result.sensitive_point_fraction(est.allocation):.1f}",
                ", ".join(flagged_by) or "-",
            )
        )
        details[label] = result
    return TextSensitivityResult(rows=rows, details=details)
