"""Table II: the evaluated graph inputs.

Regenerated from the input catalog, with measured topology statistics
(degree inequality, skew) demonstrating that the Kronecker initiators
really produce distinct connectivity styles per seed family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.kronecker import degree_statistics
from repro.datagen.seeds import GRAPH_INPUTS
from repro.experiments.common import format_table

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    """Rows of Table II with topology statistics."""

    rows: list[tuple[str, str, str, int, int, float, float]]

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            ["input", "type", "role", "nodes", "edges", "degree CoV", "gini"],
            [
                (n, t, r, nodes, edges, f"{cov:.2f}", f"{gini:.2f}")
                for n, t, r, nodes, edges, cov, gini in self.rows
            ],
            title="Table II: evaluated graph inputs (Kronecker-synthesised)",
        )


def run_table2(seed: int = 0) -> Table2Result:
    """Regenerate Table II, materialising each input once."""
    rows = []
    for g in GRAPH_INPUTS.values():
        edges = g.edges(seed=seed)
        stats = degree_statistics(edges, g.n_nodes)
        rows.append(
            (
                g.name,
                g.category,
                g.role,
                g.n_nodes,
                int(stats["n_edges"]),
                stats["degree_cov"],
                stats["gini"],
            )
        )
    return Table2Result(rows=rows)
