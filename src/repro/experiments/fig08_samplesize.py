"""Figure 8: required sample size, SimProf vs SECOND.

For each benchmark: the number of sampling units SimProf needs for a
99.7 % confidence interval at 5 % and at 2 % relative CPI error (via
the stratified sample-size solver), against the number of units a
10-second SECOND interval contains.  Paper averages: 85 / 244 / 611 —
SimProf needs far fewer units except for cc_sp and rank_sp, whose many
high-variance phases push its requirement above SECOND's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.baselines import SecondSampler
from repro.core.sampling import required_sample_size
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    model_inputs,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn

__all__ = ["Fig8Row", "Fig8Result", "graph_fig8", "run_fig8"]


@dataclass(frozen=True)
class Fig8Row:
    """Sample sizes for one benchmark."""

    label: str
    simprof_5pct: int
    simprof_2pct: int
    second_units: int
    total_units: int


@dataclass
class Fig8Result:
    """All rows plus the three averages the paper quotes."""

    rows: list[Fig8Row]
    confidence: float = 0.997

    def averages(self) -> dict[str, float]:
        """Mean sample sizes (paper: 85 / 244 / 611)."""
        return {
            "SimProf_0.05": float(np.mean([r.simprof_5pct for r in self.rows])),
            "SimProf_0.02": float(np.mean([r.simprof_2pct for r in self.rows])),
            "SECOND": float(np.mean([r.second_units for r in self.rows])),
        }

    def to_text(self) -> str:
        """Render the figure as a table."""
        body = [
            (r.label, r.simprof_5pct, r.simprof_2pct, r.second_units, r.total_units)
            for r in self.rows
        ]
        avg = self.averages()
        body.append(
            (
                "AVERAGE",
                f"{avg['SimProf_0.05']:.0f}",
                f"{avg['SimProf_0.02']:.0f}",
                f"{avg['SECOND']:.0f}",
                "",
            )
        )
        return format_table(
            ["benchmark", "SimProf_0.05", "SimProf_0.02", "SECOND", "N_total"],
            body,
            title=(
                f"Figure 8: required sample size (units) @ "
                f"{100 * self.confidence:.1f}% confidence"
            ),
        )


def _simprof_sample_size(
    job: Any, model: Any, *, relative_error: float, confidence: float
) -> int:
    """The stratified solver over the model's phase stats (Eq. 1 + 4)."""
    stats = model.phase_stats(job.profile.cpi())
    sizes = np.array([s.n_units for s in stats], dtype=np.float64)
    stds = np.array([s.cpi_std for s in stats])
    return required_sample_size(
        sizes,
        stds,
        job.oracle_cpi(),
        relative_error=relative_error,
        confidence=confidence,
    )


@stage_fn("report")
def _fig8_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig8Result:
    """Sample-size table: stratified solver at 5 %/2 % vs SECOND units."""
    confidence = params["confidence"]
    rows: list[Fig8Row] = []
    for label in params["labels"]:
        job = inputs[f"job:{label}"]
        model = inputs[f"model:{label}"]
        n5 = _simprof_sample_size(
            job, model, relative_error=0.05, confidence=confidence
        )
        n2 = _simprof_sample_size(
            job, model, relative_error=0.02, confidence=confidence
        )
        second = SecondSampler(seconds=params["second_seconds"]).sample(job)
        rows.append(
            Fig8Row(
                label=label,
                simprof_5pct=n5,
                simprof_2pct=n2,
                second_units=second.sample_size,
                total_units=job.n_units,
            )
        )
    return Fig8Result(rows=rows, confidence=confidence)


def graph_fig8(
    graph: StageGraph,
    cfg: ExperimentConfig,
    *,
    confidence: float = 0.997,
    second_seconds: float = 10.0,
) -> str:
    """Wire Figure 8 into ``graph``; return the report node's name."""
    deps, labels = model_inputs(graph, all_label_pairs(), cfg)
    return graph.node(
        "report:fig08",
        _fig8_report,
        params=report_params(
            cfg, labels, confidence=confidence, second_seconds=second_seconds
        ),
        deps=deps,
    )


def run_fig8(
    cfg: ExperimentConfig | None = None,
    *,
    confidence: float = 0.997,
    second_seconds: float = 10.0,
) -> Fig8Result:
    """Compute Figure 8 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig08")
    node = graph_fig8(
        graph, cfg, confidence=confidence, second_seconds=second_seconds
    )
    return run_report(graph, node)
