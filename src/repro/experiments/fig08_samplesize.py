"""Figure 8: required sample size, SimProf vs SECOND.

For each benchmark: the number of sampling units SimProf needs for a
99.7 % confidence interval at 5 % and at 2 % relative CPI error (via
the stratified sample-size solver), against the number of units a
10-second SECOND interval contains.  Paper averages: 85 / 244 / 611 —
SimProf needs far fewer units except for cc_sp and rank_sp, whose many
high-variance phases push its requirement above SECOND's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import SecondSampler
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    prefetch_models,
)
from repro.workloads import label_of

__all__ = ["Fig8Row", "Fig8Result", "run_fig8"]


@dataclass(frozen=True)
class Fig8Row:
    """Sample sizes for one benchmark."""

    label: str
    simprof_5pct: int
    simprof_2pct: int
    second_units: int
    total_units: int


@dataclass
class Fig8Result:
    """All rows plus the three averages the paper quotes."""

    rows: list[Fig8Row]
    confidence: float = 0.997

    def averages(self) -> dict[str, float]:
        """Mean sample sizes (paper: 85 / 244 / 611)."""
        return {
            "SimProf_0.05": float(np.mean([r.simprof_5pct for r in self.rows])),
            "SimProf_0.02": float(np.mean([r.simprof_2pct for r in self.rows])),
            "SECOND": float(np.mean([r.second_units for r in self.rows])),
        }

    def to_text(self) -> str:
        """Render the figure as a table."""
        body = [
            (r.label, r.simprof_5pct, r.simprof_2pct, r.second_units, r.total_units)
            for r in self.rows
        ]
        avg = self.averages()
        body.append(
            (
                "AVERAGE",
                f"{avg['SimProf_0.05']:.0f}",
                f"{avg['SimProf_0.02']:.0f}",
                f"{avg['SECOND']:.0f}",
                "",
            )
        )
        return format_table(
            ["benchmark", "SimProf_0.05", "SimProf_0.02", "SECOND", "N_total"],
            body,
            title=(
                f"Figure 8: required sample size (units) @ "
                f"{100 * self.confidence:.1f}% confidence"
            ),
        )


def run_fig8(
    cfg: ExperimentConfig | None = None,
    *,
    confidence: float = 0.997,
    second_seconds: float = 10.0,
) -> Fig8Result:
    """Compute Figure 8 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    prefetch_models(all_label_pairs(), cfg)
    tool = cfg.simprof_tool()
    rows: list[Fig8Row] = []
    for workload, framework in all_label_pairs():
        job, model = get_model(workload, framework, cfg)
        n5 = tool.sample_size_for(
            job, model, relative_error=0.05, confidence=confidence
        )
        n2 = tool.sample_size_for(
            job, model, relative_error=0.02, confidence=confidence
        )
        second = SecondSampler(seconds=second_seconds).sample(job)
        rows.append(
            Fig8Row(
                label=label_of(workload, framework),
                simprof_5pct=n5,
                simprof_2pct=n2,
                second_units=second.sample_size,
                total_units=job.n_units,
            )
        )
    return Fig8Result(rows=rows, confidence=confidence)
