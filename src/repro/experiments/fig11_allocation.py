"""Figure 11: optimal allocation across the phases of cc_sp.

For every phase of cc_sp (sorted by weight, as in the paper): the phase
weight, the CoV of its CPI, and the share of the simulation points the
optimal allocation assigns to it.  The paper's point: allocation tracks
*both* weight and variance — its Phase 0 (aggregateUsingIndex, high
weight, high variance) receives more than its weight share, while its
Phase 1 (mapPartitionsWithIndex, high weight, low variance from
sequential access) receives far less.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampling import stratified_sample
from repro.experiments.common import ExperimentConfig, format_table, get_model

__all__ = ["Fig11Row", "Fig11Result", "run_fig11"]


@dataclass(frozen=True)
class Fig11Row:
    """One phase of the Figure 11 bar chart."""

    phase_id: int
    weight: float
    cpi_cov: float
    sample_ratio: float
    top_method: str


@dataclass
class Fig11Result:
    """Phases of the target benchmark, sorted by weight."""

    workload_label: str
    n_points: int
    rows: list[Fig11Row]

    def to_text(self) -> str:
        """Render the figure as a table."""
        return format_table(
            ["phase", "weight", "CoV(CPI)", "sample ratio", "dominant method"],
            [
                (
                    r.phase_id,
                    f"{r.weight:.3f}",
                    f"{r.cpi_cov:.3f}",
                    f"{r.sample_ratio:.3f}",
                    r.top_method,
                )
                for r in self.rows
            ],
            title=(
                f"Figure 11: optimal allocation over phases of "
                f"{self.workload_label} (n={self.n_points})"
            ),
        )


def run_fig11(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "cc",
    framework: str = "spark",
    n_points: int = 20,
) -> Fig11Result:
    """Compute Figure 11 (defaults to cc_sp, as in the paper)."""
    cfg = cfg or ExperimentConfig()
    job, model = get_model(workload, framework, cfg)
    cpi = job.profile.cpi()
    est = stratified_sample(
        model.assignments,
        cpi,
        max(n_points, model.k),
        rng=np.random.default_rng(cfg.seed),
        k=model.k,
    )
    stats = model.phase_stats(cpi)
    total = est.allocation.sum()
    rows = [
        Fig11Row(
            phase_id=s.phase_id,
            weight=s.weight,
            cpi_cov=s.cpi_cov,
            sample_ratio=float(est.allocation[s.phase_id]) / total,
            top_method=(model.top_methods(s.phase_id, 1) or [("-", 0.0)])[0][0],
        )
        for s in stats
    ]
    rows.sort(key=lambda r: -r.weight)
    suffix = "sp" if framework == "spark" else "hp"
    return Fig11Result(
        workload_label=f"{workload}_{suffix}", n_points=n_points, rows=rows
    )
