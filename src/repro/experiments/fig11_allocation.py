"""Figure 11: optimal allocation across the phases of cc_sp.

For every phase of cc_sp (sorted by weight, as in the paper): the phase
weight, the CoV of its CPI, and the share of the simulation points the
optimal allocation assigns to it.  The paper's point: allocation tracks
*both* weight and variance — its Phase 0 (aggregateUsingIndex, high
weight, high variance) receives more than its weight share, while its
Phase 1 (mapPartitionsWithIndex, high weight, low variance from
sequential access) receives far less.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.sampling import stratified_sample
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_spec,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn
from repro.runtime.stages import spec_nodes

__all__ = ["Fig11Row", "Fig11Result", "graph_fig11", "run_fig11"]


@dataclass(frozen=True)
class Fig11Row:
    """One phase of the Figure 11 bar chart."""

    phase_id: int
    weight: float
    cpi_cov: float
    sample_ratio: float
    top_method: str


@dataclass
class Fig11Result:
    """Phases of the target benchmark, sorted by weight."""

    workload_label: str
    n_points: int
    rows: list[Fig11Row]

    def to_text(self) -> str:
        """Render the figure as a table."""
        return format_table(
            ["phase", "weight", "CoV(CPI)", "sample ratio", "dominant method"],
            [
                (
                    r.phase_id,
                    f"{r.weight:.3f}",
                    f"{r.cpi_cov:.3f}",
                    f"{r.sample_ratio:.3f}",
                    r.top_method,
                )
                for r in self.rows
            ],
            title=(
                f"Figure 11: optimal allocation over phases of "
                f"{self.workload_label} (n={self.n_points})"
            ),
        )


@stage_fn("report")
def _fig11_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig11Result:
    """Per-phase allocation table for one benchmark's fitted model.

    The allocation here floors at ``n_points`` (not the unit count) so
    the paper's n=20 reading holds even for tiny test-scale profiles —
    hence a fresh :func:`stratified_sample` call rather than reusing the
    ``estimate`` stage's artifact.
    """
    job = inputs["job"]
    model = inputs["model"]
    n_points = params["n_points"]
    cpi = job.profile.cpi()
    est = stratified_sample(
        model.assignments,
        cpi,
        max(n_points, model.k),
        rng=np.random.default_rng(params["seed"]),
        k=model.k,
    )
    stats = model.phase_stats(cpi)
    total = est.allocation.sum()
    rows = [
        Fig11Row(
            phase_id=s.phase_id,
            weight=s.weight,
            cpi_cov=s.cpi_cov,
            sample_ratio=float(est.allocation[s.phase_id]) / total,
            top_method=(model.top_methods(s.phase_id, 1) or [("-", 0.0)])[0][0],
        )
        for s in stats
    ]
    rows.sort(key=lambda r: -r.weight)
    return Fig11Result(
        workload_label=params["workload_label"],
        n_points=n_points,
        rows=rows,
    )


def graph_fig11(
    graph: StageGraph,
    cfg: ExperimentConfig,
    *,
    workload: str = "cc",
    framework: str = "spark",
    n_points: int = 20,
) -> str:
    """Wire Figure 11 into ``graph``; return the report node's name."""
    spec = make_spec(workload, framework, cfg)
    nodes = spec_nodes(graph, spec)
    suffix = "sp" if framework == "spark" else "hp"
    label = f"{workload}_{suffix}"
    return graph.node(
        f"report:fig11:{label}",
        _fig11_report,
        params=report_params(
            cfg, [label], n_points=n_points, workload_label=label
        ),
        deps={"job": nodes["profile"], "model": nodes["model"]},
    )


def run_fig11(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "cc",
    framework: str = "spark",
    n_points: int = 20,
) -> Fig11Result:
    """Compute Figure 11 (defaults to cc_sp, as in the paper)."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig11")
    node = graph_fig11(
        graph, cfg, workload=workload, framework=framework, n_points=n_points
    )
    return run_report(graph, node)
