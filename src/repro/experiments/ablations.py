"""Ablations of SimProf's design choices (DESIGN.md list).

* **Allocation**: Neyman (optimal) allocation vs proportional
  allocation vs plain SRS, at the same sample size.
* **Feature selection**: the top-K regression selection vs smaller K.
* **Snapshot period**: the profiler's poll rate (paper: 10 M).
* **Unit size**: the sampling-unit size (paper: 100 M).

Each ablation returns rows comparing the headline metrics (number of
phases, expected sampling error) across the variants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.phases import PhaseModel
from repro.core.pipeline import SimProfConfig
from repro.core.sampling import stratified_standard_error
from repro.core.units import JobProfile
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    get_model,
    get_profile,
    prefetch_models,
)

__all__ = [
    "AblationResult",
    "proportional_allocation",
    "run_allocation_ablation",
    "run_projection_ablation",
    "run_top_k_ablation",
    "run_profiler_ablation",
]


@dataclass
class AblationResult:
    """Rows of one ablation table."""

    name: str
    headers: list[str]
    rows: list[tuple]

    def to_text(self) -> str:
        """Render the ablation as a table."""
        return format_table(self.headers, self.rows, title=f"Ablation: {self.name}")


def proportional_allocation(
    stratum_sizes: np.ndarray, n: int
) -> np.ndarray:
    """Allocation ∝ N_h (the classic alternative to Neyman)."""
    N_h = np.asarray(stratum_sizes, dtype=np.float64)
    nonempty = N_h > 0
    alloc = np.where(nonempty, 1.0, 0.0)
    remaining = n - alloc.sum()
    if remaining > 0:
        share = remaining * N_h / N_h.sum()
        alloc += np.floor(share)
        leftover = int(n - alloc.sum())
        order = np.argsort(-(share - np.floor(share)))
        for idx in order[:max(0, leftover)]:
            alloc[idx] += 1
    return np.minimum(alloc, N_h).astype(np.int64)


def _expected_error(
    job: JobProfile,
    model: PhaseModel,
    allocation: np.ndarray,
) -> float:
    """Relative SE of the stratified estimator under an allocation."""
    cpi = job.profile.cpi()
    stats = model.phase_stats(cpi)
    sizes = np.array([s.n_units for s in stats], dtype=np.float64)
    stds = np.array([s.cpi_std for s in stats])
    se = stratified_standard_error(sizes, allocation, stds)
    return se / job.oracle_cpi()


def run_allocation_ablation(
    cfg: ExperimentConfig | None = None,
    *,
    workloads: tuple[tuple[str, str], ...] = (("wc", "spark"), ("cc", "spark"),
                                              ("wc", "hadoop")),
    n_points: int = 20,
) -> AblationResult:
    """Neyman vs proportional allocation vs SRS, by expected error."""
    from repro.core.sampling import optimal_allocation

    cfg = cfg or ExperimentConfig()
    prefetch_models(workloads, cfg)
    rows = []
    for workload, framework in workloads:
        job, model = get_model(workload, framework, cfg)
        cpi = job.profile.cpi()
        stats = model.phase_stats(cpi)
        sizes = np.array([s.n_units for s in stats], dtype=np.float64)
        stds = np.array([s.cpi_std for s in stats])
        n = max(n_points, model.k)
        neyman = _expected_error(job, model, optimal_allocation(sizes, stds, n))
        proportional = _expected_error(
            job, model, proportional_allocation(sizes, n)
        )
        # SRS SE with finite-population correction.
        pop_std = cpi.std(ddof=1)
        srs = (
            pop_std / np.sqrt(n) * np.sqrt(1 - n / len(cpi)) / job.oracle_cpi()
        )
        label = f"{workload}_{'sp' if framework == 'spark' else 'hp'}"
        rows.append(
            (
                label,
                f"{100 * neyman:.2f}",
                f"{100 * proportional:.2f}",
                f"{100 * srs:.2f}",
            )
        )
    return AblationResult(
        name=f"allocation strategy (expected rel. SE %, n={n_points})",
        headers=["benchmark", "Neyman", "proportional", "SRS"],
        rows=rows,
    )


def run_top_k_ablation(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    top_ks: tuple[int, ...] = (2, 5, 20, 100),
) -> AblationResult:
    """Phase count and weighted CoV as the feature budget K varies."""
    from repro.core.analysis import cov_report

    cfg = cfg or ExperimentConfig()
    job = get_profile(workload, framework, cfg)
    rows = []
    for k in top_ks:
        model = PhaseModel.fit(
            job,
            top_k=k,
            max_phases=cfg.simprof.max_phases,
            score_threshold=cfg.simprof.silhouette_threshold,
            seed=cfg.seed,
        )
        report = cov_report(job.profile.cpi(), model.assignments)
        rows.append(
            (k, model.space.n_features, model.k, f"{report.weighted:.3f}")
        )
    return AblationResult(
        name=f"top-K feature selection ({workload}_{framework})",
        headers=["K", "features kept", "phases", "weighted CoV"],
        rows=rows,
    )


def run_projection_ablation(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "cc",
    framework: str = "spark",
    dims: tuple[int, ...] = (2, 5, 15),
) -> AblationResult:
    """SimPoint-style random projection vs the plain selected space.

    SimPoint projects million-dimension BBVs to ~15 dims before
    clustering; our regression-selected space is already small, so the
    interesting question is how far it can be squeezed before phase
    structure degrades.
    """
    from repro.core.analysis import cov_report

    cfg = cfg or ExperimentConfig()
    job = get_profile(workload, framework, cfg)
    rows = []
    baseline = PhaseModel.fit(job, seed=cfg.seed)
    base_report = cov_report(job.profile.cpi(), baseline.assignments)
    rows.append(
        ("none", baseline.space.n_features, baseline.k,
         f"{base_report.weighted:.3f}")
    )
    for d in dims:
        model = PhaseModel.fit(job, seed=cfg.seed, projection_dims=d)
        report = cov_report(job.profile.cpi(), model.assignments)
        rows.append(
            (f"project->{d}",
             min(d, model.space.n_features),
             model.k,
             f"{report.weighted:.3f}")
        )
    return AblationResult(
        name=f"random projection ({workload}_{framework})",
        headers=["projection", "dims", "phases", "weighted CoV"],
        rows=rows,
    )


def run_profiler_ablation(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    snapshot_periods: tuple[int, ...] = (1_000_000, 2_000_000, 10_000_000),
    unit_sizes: tuple[int, ...] = (50_000_000, 100_000_000, 200_000_000),
) -> AblationResult:
    """Phase count and unit count across profiler settings.

    The paper's setting is (100 M, 10 M); the repo default is
    (100 M, 2 M) — see ProfilerConfig for why.
    """
    cfg = cfg or ExperimentConfig()
    rows = []
    for period in snapshot_periods:
        sub = ExperimentConfig(
            scale=cfg.scale,
            seed=cfg.seed,
            n_sampling_draws=cfg.n_sampling_draws,
            simprof=replace(cfg.simprof, snapshot_period=period),
        )
        job, model = get_model(workload, framework, sub)
        rows.append((f"period={period // 1_000_000}M", job.n_units, model.k))
    for unit in unit_sizes:
        sub = ExperimentConfig(
            scale=cfg.scale,
            seed=cfg.seed,
            n_sampling_draws=cfg.n_sampling_draws,
            simprof=replace(
                cfg.simprof,
                unit_size=unit,
                snapshot_period=min(cfg.simprof.snapshot_period, unit // 10),
            ),
        )
        job, model = get_model(workload, framework, sub)
        rows.append((f"unit={unit // 1_000_000}M", job.n_units, model.k))
    return AblationResult(
        name=f"profiler settings ({workload}_{framework})",
        headers=["setting", "units", "phases"],
        rows=rows,
    )
