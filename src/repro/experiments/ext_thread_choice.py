"""Extension experiment: does the profiled-thread choice matter?

The paper's design rests on an observation (Section II-B): "in each
execution stage, executor threads are executing the same code", so
profiling *one* executor thread suffices.  This experiment validates
that on the simulator: profile every executor thread of one job, fit
the phase model on each, and check that (a) oracle CPIs agree across
threads, (b) each thread's SimProf estimate still predicts the *job*
oracle, and (c) the busiest-thread default is representative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SimProf
from repro.experiments.common import ExperimentConfig, format_table
from repro.workloads import run_workload

__all__ = ["ThreadChoiceResult", "run_thread_choice"]


@dataclass
class ThreadChoiceResult:
    """Per-thread profiling outcomes for one job."""

    label: str
    rows: list[tuple]
    job_oracle: float

    def oracle_spread(self) -> float:
        """(max − min)/mean of per-thread oracle CPIs."""
        oracles = [float(r[2]) for r in self.rows]
        return (max(oracles) - min(oracles)) / float(np.mean(oracles))

    def max_error(self) -> float:
        """Worst per-thread SimProf error vs the job-wide oracle."""
        return max(float(r[4]) for r in self.rows) / 100.0

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            ["thread", "units", "oracle CPI", "phases", "err vs job oracle %"],
            self.rows,
            title=(
                f"Extension: choice of profiled thread ({self.label}, "
                f"job oracle {self.job_oracle:.3f})"
            ),
        )


def run_thread_choice(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "spark",
    n_points: int = 20,
) -> ThreadChoiceResult:
    """Profile every executor thread of one job and compare."""
    cfg = cfg or ExperimentConfig()
    trace = run_workload(workload, framework, scale=cfg.scale, seed=cfg.seed)
    tool: SimProf = cfg.simprof_tool()

    # Job-wide oracle: instruction-weighted CPI over all threads.
    total_cycles = sum(t.total_cycles for t in trace.traces)
    total_insts = sum(t.total_instructions for t in trace.traces)
    job_oracle = total_cycles / total_insts

    rows = []
    for t in sorted(trace.traces, key=lambda t: t.thread_id):
        try:
            job = tool.profile(trace, thread_id=t.thread_id)
        except ValueError:
            continue  # thread too short for one unit
        model = tool.form_phases(job)
        errs = []
        for draw in range(cfg.n_sampling_draws):
            rng = np.random.default_rng(
                np.random.SeedSequence([cfg.seed, t.thread_id, draw])
            )
            est = tool.select_points(job, model, n_points, rng=rng)
            errs.append(abs(est.estimate - job_oracle) / job_oracle)
        rows.append(
            (
                t.thread_id,
                job.n_units,
                f"{job.oracle_cpi():.4f}",
                model.k,
                f"{100 * float(np.mean(errs)):.2f}",
            )
        )
    suffix = "sp" if framework == "spark" else "hp"
    return ThreadChoiceResult(
        label=f"{workload}_{suffix}", rows=rows, job_oracle=job_oracle
    )
