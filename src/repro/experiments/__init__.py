"""Experiment drivers: one module per paper table/figure.

Each driver exposes a ``run_*`` function returning a small result
object with the figure's rows/series and a ``to_text()`` rendering that
prints what the paper plots.  The benchmark harness under
``benchmarks/`` calls these drivers and times their computational
kernels; the examples under ``examples/`` reuse them too.
"""

from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    get_profile,
    make_spec,
    prefetch_models,
    prefetch_profiles,
)

__all__ = [
    "ExperimentConfig",
    "all_label_pairs",
    "format_table",
    "get_model",
    "get_profile",
    "make_spec",
    "prefetch_models",
    "prefetch_profiles",
]
