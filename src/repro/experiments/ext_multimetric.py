"""Extension experiment: do the points generalise beyond CPI?

Section III-A: "the hardware counters, such as IPC and cache miss rate,
are collected for validation and sampling."  SimProf *selects* on CPI;
a useful simulation-point set must also estimate the other
architectural metrics.  This experiment scores the stratified sample's
estimate of LLC MPKI (misses per kilo-instruction) against the
all-units oracle, next to its CPI error, for every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.phases import PhaseModel
from repro.core.sampling import multimetric_allocation, stratified_sample
from repro.core.units import JobProfile
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    prefetch_models,
)
from repro.workloads import label_of

__all__ = ["MultiMetricResult", "estimate_metric", "run_multimetric"]


def estimate_metric(
    job: JobProfile,
    model: PhaseModel,
    selected: np.ndarray,
    values: np.ndarray,
) -> float:
    """Stratified estimate of any per-unit metric from a drawn sample.

    Phase means over the sampled units, weighted by phase size — the
    same estimator the CPI uses, applied to another counter series.
    """
    assignments = model.assignments
    N = len(values)
    estimate = 0.0
    for h in range(model.k):
        members = selected[assignments[selected] == h]
        weight = (assignments == h).sum() / N
        if len(members) == 0:
            continue
        estimate += weight * float(values[members].mean())
    return estimate


@dataclass
class MultiMetricResult:
    """CPI and MPKI errors of the same sample, per benchmark."""

    rows: list[tuple]
    n_points: int

    def average_mpki_error(self) -> float:
        """Mean relative MPKI error across benchmarks."""
        return float(np.mean([float(r[2]) for r in self.rows])) / 100.0

    def average_joint_mpki_error(self) -> float:
        """Mean MPKI error under the minimax allocation."""
        return float(np.mean([float(r[3]) for r in self.rows])) / 100.0

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            [
                "benchmark",
                "CPI err %",
                "MPKI err %",
                "MPKI err % (joint alloc)",
                "oracle MPKI",
            ],
            self.rows,
            title=(
                "Extension: multi-metric validation of the simulation "
                f"points (n={self.n_points})"
            ),
        )


def _joint_sample_errors(
    job: JobProfile,
    model: PhaseModel,
    n_points: int,
    cfg: ExperimentConfig,
    mpki: np.ndarray,
) -> float:
    """Mean MPKI error under the minimax multi-metric allocation."""
    cpi = job.profile.cpi()
    assignments = model.assignments
    sizes = np.array(
        [(assignments == h).sum() for h in range(model.k)], dtype=np.float64
    )
    stds = np.vstack(
        [
            [
                cpi[assignments == h].std(ddof=1) if sizes[h] > 1 else 0.0
                for h in range(model.k)
            ],
            [
                mpki[assignments == h].std(ddof=1) if sizes[h] > 1 else 0.0
                for h in range(model.k)
            ],
        ]
    )
    means = np.array([cpi.mean(), max(mpki.mean(), 1e-9)])
    alloc = multimetric_allocation(
        sizes, stds, means, max(n_points, model.k)
    )
    errors = []
    for draw in range(cfg.n_sampling_draws):
        rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, 77, draw]))
        selected: list[int] = []
        for h in range(model.k):
            members = np.nonzero(assignments == h)[0]
            take = int(min(alloc[h], len(members)))
            if take:
                selected.extend(
                    int(i) for i in rng.choice(members, size=take, replace=False)
                )
        mpki_est = estimate_metric(
            job, model, np.array(selected, dtype=np.intp), mpki
        )
        if mpki.mean() > 0:
            errors.append(abs(mpki_est - mpki.mean()) / mpki.mean())
    return float(np.mean(errors)) if errors else 0.0


def run_multimetric(
    cfg: ExperimentConfig | None = None, *, n_points: int = 20
) -> MultiMetricResult:
    """Score CPI + LLC MPKI estimates for all twelve benchmarks.

    The last column re-estimates MPKI under the minimax multi-metric
    allocation, which trades a little CPI optimality for a bound on the
    worst metric.
    """
    cfg = cfg or ExperimentConfig()
    prefetch_models(all_label_pairs(), cfg)
    rows = []
    for workload, framework in all_label_pairs():
        job, model = get_model(workload, framework, cfg)
        cpi = job.profile.cpi()
        mpki = job.profile.llc_mpki()
        cpi_errors = []
        mpki_errors = []
        for draw in range(cfg.n_sampling_draws):
            rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, draw]))
            est = stratified_sample(
                model.assignments, cpi, max(n_points, model.k), rng=rng,
                k=model.k,
            )
            cpi_errors.append(abs(est.estimate - cpi.mean()) / cpi.mean())
            mpki_est = estimate_metric(job, model, est.selected, mpki)
            oracle_mpki = mpki.mean()
            if oracle_mpki > 0:
                mpki_errors.append(abs(mpki_est - oracle_mpki) / oracle_mpki)
        joint = _joint_sample_errors(job, model, n_points, cfg, mpki)
        rows.append(
            (
                label_of(workload, framework),
                f"{100 * np.mean(cpi_errors):.2f}",
                f"{100 * np.mean(mpki_errors):.2f}" if mpki_errors else "-",
                f"{100 * joint:.2f}",
                f"{mpki.mean():.3f}",
            )
        )
    return MultiMetricResult(rows=rows, n_points=n_points)
