"""Figure 7: CPI sampling error of the four approaches.

SECOND (one 10-second interval), SRS (n = 20), CODE (one point per
phase, SimPoint-like) and SimProf (stratified, n = 20), each compared
to the oracle CPI (the mean over all sampling units).  The stochastic
samplers are averaged over ``n_sampling_draws`` draws so the reported
error is the expected error, not one lucky draw.

Paper averages: SECOND 6.5 %, SRS 8.9 %, CODE 4.0 %, SimProf 1.6 % —
the *ordering* (SimProf < CODE < SECOND/SRS) is the reproduction
target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.baselines import CodeSampler, SecondSampler, SimProfSampler, SRSSampler
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    model_inputs,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn

__all__ = ["Fig7Row", "Fig7Result", "graph_fig7", "run_fig7", "APPROACHES"]

APPROACHES = ("SECOND", "SRS", "CODE", "SimProf")


@dataclass(frozen=True)
class Fig7Row:
    """Errors (fractions) of the four approaches for one benchmark."""

    label: str
    second: float
    srs: float
    code: float
    simprof: float

    def as_dict(self) -> dict[str, float]:
        """Errors keyed by approach name."""
        return {
            "SECOND": self.second,
            "SRS": self.srs,
            "CODE": self.code,
            "SimProf": self.simprof,
        }


@dataclass
class Fig7Result:
    """All rows plus the per-approach averages the paper quotes."""

    rows: list[Fig7Row]
    n_points: int = 20
    second_seconds: float = 10.0

    def averages(self) -> dict[str, float]:
        """Mean error per approach (the paper's 6.5/8.9/4.0/1.6 %)."""
        return {
            name: float(np.mean([r.as_dict()[name] for r in self.rows]))
            for name in APPROACHES
        }

    def to_text(self) -> str:
        """Render the figure as a table (percent errors)."""
        body = [
            (
                r.label,
                f"{100 * r.second:.2f}",
                f"{100 * r.srs:.2f}",
                f"{100 * r.code:.2f}",
                f"{100 * r.simprof:.2f}",
            )
            for r in self.rows
        ]
        avg = self.averages()
        body.append(
            (
                "AVERAGE",
                f"{100 * avg['SECOND']:.2f}",
                f"{100 * avg['SRS']:.2f}",
                f"{100 * avg['CODE']:.2f}",
                f"{100 * avg['SimProf']:.2f}",
            )
        )
        return format_table(
            ["benchmark", "SECOND %", "SRS %", "CODE %", "SimProf %"],
            body,
            title=(
                f"Figure 7: CPI sampling error (n={self.n_points}, "
                f"SECOND={self.second_seconds:.0f}s)"
            ),
        )


@stage_fn("report")
def _fig7_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig7Result:
    """Error table: deterministic samplers once, stochastic ones averaged."""
    n_points = params["n_points"]
    second_seconds = params["second_seconds"]
    rows: list[Fig7Row] = []
    for label in params["labels"]:
        job = inputs[f"job:{label}"]
        model = inputs[f"model:{label}"]
        oracle = job.oracle_cpi()

        second = SecondSampler(seconds=second_seconds).sample(job).error_vs(oracle)
        code = CodeSampler().sample(job, model).error_vs(oracle)

        srs_sampler = SRSSampler(n_points)
        simprof_sampler = SimProfSampler(n_points)
        srs_errors = []
        simprof_errors = []
        for draw in range(params["n_sampling_draws"]):
            rng = np.random.default_rng(
                np.random.SeedSequence([params["seed"], draw])
            )
            srs_errors.append(srs_sampler.sample(job, rng).error_vs(oracle))
            simprof_errors.append(
                simprof_sampler.sample(job, model, rng).error_vs(oracle)
            )

        rows.append(
            Fig7Row(
                label=label,
                second=second,
                srs=float(np.mean(srs_errors)),
                code=code,
                simprof=float(np.mean(simprof_errors)),
            )
        )
    return Fig7Result(rows=rows, n_points=n_points, second_seconds=second_seconds)


def graph_fig7(
    graph: StageGraph,
    cfg: ExperimentConfig,
    *,
    n_points: int = 20,
    second_seconds: float = 10.0,
) -> str:
    """Wire Figure 7 into ``graph``; return the report node's name."""
    deps, labels = model_inputs(graph, all_label_pairs(), cfg)
    return graph.node(
        "report:fig07",
        _fig7_report,
        params=report_params(
            cfg, labels, n_points=n_points, second_seconds=second_seconds
        ),
        deps=deps,
    )


def run_fig7(
    cfg: ExperimentConfig | None = None,
    *,
    n_points: int = 20,
    second_seconds: float = 10.0,
) -> Fig7Result:
    """Compute Figure 7 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig07")
    node = graph_fig7(
        graph, cfg, n_points=n_points, second_seconds=second_seconds
    )
    return run_report(graph, node)
