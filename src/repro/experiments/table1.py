"""Table I: the evaluated benchmarks.

Regenerated from the workload registry, with the scaled input volumes
this reproduction actually runs next to the paper's full-scale inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.workloads import WORKLOADS

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Rows of Table I."""

    rows: list[tuple[str, str, str, str, str]]

    def to_text(self) -> str:
        """Render the table."""
        return format_table(
            ["benchmark", "abbrev", "type", "paper input", "frameworks"],
            self.rows,
            title="Table I: evaluated benchmarks",
        )


def run_table1() -> Table1Result:
    """Regenerate Table I from the registry."""
    rows = [
        (
            cls.name,
            cls.abbrev,
            cls.workload_type,
            cls.paper_input,
            "Hadoop, Spark",
        )
        for cls in WORKLOADS.values()
    ]
    return Table1Result(rows=rows)
