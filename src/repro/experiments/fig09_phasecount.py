"""Figure 9: number of phases per workload.

The paper's observation: Spark phase counts span a much wider range
(1 for grep up to 9 for cc) than Hadoop's, because GraphX-style Spark
programs use many more distinct operations while Hadoop jobs define one
or two map/reduce operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    model_inputs,
    report_params,
    run_report,
)
from repro.runtime.provenance import StageGraph, stage_fn

__all__ = ["Fig9Result", "graph_fig9", "run_fig9"]


@dataclass
class Fig9Result:
    """Phase count per benchmark label."""

    counts: dict[str, int]

    def range_for(self, framework_suffix: str) -> tuple[int, int]:
        """(min, max) phase count for one framework (``"hp"``/``"sp"``)."""
        vals = [
            v for k, v in self.counts.items() if k.endswith(f"_{framework_suffix}")
        ]
        return (min(vals), max(vals))

    def to_text(self) -> str:
        """Render the figure as a table."""
        body = [(label, count) for label, count in self.counts.items()]
        hp = self.range_for("hp")
        sp = self.range_for("sp")
        body.append(("hadoop range", f"{hp[0]}..{hp[1]}"))
        body.append(("spark range", f"{sp[0]}..{sp[1]}"))
        return format_table(
            ["benchmark", "phases"],
            body,
            title="Figure 9: number of phases",
        )


@stage_fn("report")
def _fig9_report(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Fig9Result:
    """Phase count per benchmark, straight off the fitted models."""
    counts: dict[str, int] = {}
    for label in params["labels"]:
        counts[label] = inputs[f"model:{label}"].k
    return Fig9Result(counts=counts)


def graph_fig9(graph: StageGraph, cfg: ExperimentConfig) -> str:
    """Wire Figure 9 into ``graph``; return the report node's name."""
    deps, labels = model_inputs(graph, all_label_pairs(), cfg)
    return graph.node(
        "report:fig09",
        _fig9_report,
        params=report_params(cfg, labels),
        deps=deps,
    )


def run_fig9(cfg: ExperimentConfig | None = None) -> Fig9Result:
    """Compute Figure 9 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    graph = StageGraph("fig09")
    return run_report(graph, graph_fig9(graph, cfg))
