"""Figure 9: number of phases per workload.

The paper's observation: Spark phase counts span a much wider range
(1 for grep up to 9 for cc) than Hadoop's, because GraphX-style Spark
programs use many more distinct operations while Hadoop jobs define one
or two map/reduce operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    prefetch_models,
)
from repro.workloads import label_of

__all__ = ["Fig9Result", "run_fig9"]


@dataclass
class Fig9Result:
    """Phase count per benchmark label."""

    counts: dict[str, int]

    def range_for(self, framework_suffix: str) -> tuple[int, int]:
        """(min, max) phase count for one framework (``"hp"``/``"sp"``)."""
        vals = [
            v for k, v in self.counts.items() if k.endswith(f"_{framework_suffix}")
        ]
        return (min(vals), max(vals))

    def to_text(self) -> str:
        """Render the figure as a table."""
        body = [(label, count) for label, count in self.counts.items()]
        hp = self.range_for("hp")
        sp = self.range_for("sp")
        body.append(("hadoop range", f"{hp[0]}..{hp[1]}"))
        body.append(("spark range", f"{sp[0]}..{sp[1]}"))
        return format_table(
            ["benchmark", "phases"],
            body,
            title="Figure 9: number of phases",
        )


def run_fig9(cfg: ExperimentConfig | None = None) -> Fig9Result:
    """Compute Figure 9 for all twelve benchmark configurations."""
    cfg = cfg or ExperimentConfig()
    prefetch_models(all_label_pairs(), cfg)
    counts: dict[str, int] = {}
    for workload, framework in all_label_pairs():
        _job, model = get_model(workload, framework, cfg)
        counts[label_of(workload, framework)] = model.k
    return Fig9Result(counts=counts)
