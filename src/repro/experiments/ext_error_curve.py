"""Extension experiment: sampling error as a function of sample size.

The classic error-vs-budget curve behind Figure 8's point estimates:
for one benchmark, the expected CPI error of SimProf (stratified,
optimal allocation) and SRS at increasing sample sizes, next to the
analytic 99.7 % bound from Eq. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import SimProfSampler, SRSSampler
from repro.core.sampling import (
    optimal_allocation,
    stratified_standard_error,
    z_for_confidence,
)
from repro.experiments.common import ExperimentConfig, format_table, get_model

__all__ = ["ErrorCurveResult", "run_error_curve"]


@dataclass
class ErrorCurveResult:
    """Rows: (n, SRS err, SimProf err, analytic bound)."""

    label: str
    rows: list[tuple]

    def to_text(self) -> str:
        """Render the curve as a table."""
        return format_table(
            ["n", "SRS err %", "SimProf err %", "Eq.4 bound % (99.7%)"],
            self.rows,
            title=f"Extension: error vs sample size ({self.label})",
        )


def run_error_curve(
    cfg: ExperimentConfig | None = None,
    *,
    workload: str = "wc",
    framework: str = "hadoop",
    sizes: tuple[int, ...] = (10, 20, 40, 80, 160),
) -> ErrorCurveResult:
    """Expected error at each sample size for one benchmark."""
    cfg = cfg or ExperimentConfig()
    job, model = get_model(workload, framework, cfg)
    oracle = job.oracle_cpi()
    cpi = job.profile.cpi()
    stats = model.phase_stats(cpi)
    N_h = np.array([s.n_units for s in stats], dtype=np.float64)
    s_h = np.array([s.cpi_std for s in stats])
    z = z_for_confidence(0.997)

    rows = []
    for n in sizes:
        n_eff = max(n, model.k)
        srs_errs = []
        simprof_errs = []
        for draw in range(cfg.n_sampling_draws):
            rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, n, draw]))
            srs_errs.append(
                SRSSampler(n_eff).sample(job, rng).error_vs(oracle)
            )
            simprof_errs.append(
                SimProfSampler(n_eff).sample(job, model, rng).error_vs(oracle)
            )
        bound = (
            z
            * stratified_standard_error(
                N_h, optimal_allocation(N_h, s_h, n_eff), s_h
            )
            / oracle
        )
        rows.append(
            (
                n_eff,
                f"{100 * float(np.mean(srs_errs)):.2f}",
                f"{100 * float(np.mean(simprof_errs)):.2f}",
                f"{100 * bound:.2f}",
            )
        )
    suffix = "sp" if framework == "spark" else "hp"
    return ErrorCurveResult(label=f"{workload}_{suffix}", rows=rows)
