"""Streaming trace-plane benchmark: columnar throughput, flat memory.

Three claims of the columnar trace plane, measured on the same
deterministic synthetic stream (packed ``SEGMENT_DTYPE`` batches built
vectorised, no per-segment Python objects on the producer side):

* **Parity** — the streaming profiler's units are bit-identical to the
  batch profiler's on the identical stream.
* **Throughput** — the columnar consumer (``StreamingProfiler`` over
  ``feed_array``) beats the pre-columnar object path
  (:class:`repro.core._reference.ReferenceUnitCutter` fed one
  ``TraceSegment`` at a time, objects materialised exactly as the old
  wire format carried them) by at least ``RATIO_FLOOR``.
* **Scale** — a 10× longer job (10⁶ sampling units ≈ 10⁷ segments in
  the full run) moves sustained units/s and peak traced memory by
  less than 2×: the stream holds one in-flight unit, never the trace.

The scale test doubles as the CI regression gate: with
``benchmarks/baselines/streaming_baseline.json`` present, sustained
units/s may not fall below baseline / ``REGRESSION_FACTOR``.

Writes the evidence to ``BENCH_streaming.json`` for the CI artifact.
``SIMPROF_BENCH_SMOKE=1`` shrinks every scale for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path
from typing import Iterator

import numpy as np
from conftest import emit

from repro.core._reference import ReferenceUnitCutter
from repro.core.profiler import ProfilerConfig, SimProfProfiler, StreamingProfiler
from repro.jvm.job import JobTrace
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.segments import SEGMENT_DTYPE
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    ThreadStart,
    TraceStream,
    sequenced_batch,
)
from repro.jvm.threads import OP_KIND_CODES
from repro.runtime.store import default_store

SMOKE = os.environ.get("SIMPROF_BENCH_SMOKE") == "1"
UNIT_SIZE = 1_000_000
SNAPSHOT_PERIOD = 50_000
SEGMENT_INSTRUCTIONS = 100_000  # 10 segments per sampling unit
ROWS_PER_BATCH = 10_000  # segments per SegmentBatch on the wire

BASE_UNITS = 8 if SMOKE else 40  # memory sweep base length
SWEEP = (1, 3, 10)
REF_UNITS = 50 if SMOKE else 500  # object-path comparison length
RATIO_FLOOR = 2.0 if SMOKE else 5.0
SCALE_UNITS = 10_000 if SMOKE else 1_000_000  # sustained-throughput length

BASELINE_PATH = Path(__file__).parent / "baselines" / "streaming_baseline.json"
REGRESSION_FACTOR = 2.0

CONFIG = ProfilerConfig(
    unit_size=UNIT_SIZE, snapshot_period=SNAPSHOT_PERIOD, seed=0
)

# Accumulated by the tests in definition order; the last one writes the
# JSON artifact.
RESULTS: dict = {}


def _shared_context() -> tuple[MethodRegistry, StackTable, list[int]]:
    """One registry/stack table reused by every stream of the sweep."""
    registry = MethodRegistry()
    table = StackTable(registry)
    root = registry.intern("bench.Worker", "run")
    stacks = []
    for name in ("scan", "hash", "merge", "spill", "emit", "flush"):
        mid = registry.intern("bench.Worker", name)
        stacks.append(table.intern(CallStack((root, mid))))
    return registry, table, stacks


def _batch_rows(start: int, n: int, stacks: list[int]) -> np.ndarray:
    """Rows ``start .. start+n`` of the synthetic trace, packed columnar.

    Deterministic CPI/stack patterns (pure index arithmetic, no RNG) so
    every invocation with the same indices produces identical bytes.
    """
    idx = np.arange(start, start + n, dtype=np.int64)
    data = np.zeros(n, dtype=SEGMENT_DTYPE)
    data["stack_id"] = np.asarray(stacks, dtype=np.int64)[
        (idx // 40) % len(stacks)
    ]
    data["op_kind"] = OP_KIND_CODES[OpKind.MAP]
    data["instructions"] = SEGMENT_INSTRUCTIONS
    data["cycles"] = SEGMENT_INSTRUCTIONS * (55 + (idx % 7) * 9) // 100
    data["l1d_misses"] = 64
    data["llc_misses"] = 8
    data["stage_id"] = -1
    data["task_id"] = -1
    return data


def make_stream(
    n_units: int,
    registry: MethodRegistry,
    table: StackTable,
    stacks: list[int],
    *,
    rows_per_batch: int = ROWS_PER_BATCH,
) -> TraceStream:
    """A lazy columnar stream: batches materialise only when consumed.

    Peak consumer memory is O(``rows_per_batch``), not O(trace): the
    memory-flatness sweep pins a small constant batch so the sweep
    lengths, not the wire granularity, are what vary.
    """
    n_segments = n_units * (UNIT_SIZE // SEGMENT_INSTRUCTIONS)

    def events() -> Iterator:
        yield ThreadStart(1, 0, 0)
        for seq, start in enumerate(range(0, n_segments, rows_per_batch)):
            n = min(rows_per_batch, n_segments - start)
            yield sequenced_batch(1, _batch_rows(start, n, stacks), seq)
        yield JobEnd({})

    return TraceStream(
        framework="synthetic",
        workload="synth",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        events=events(),
    )


def _stream_run(
    n_units: int, ctx, *, rows_per_batch: int = ROWS_PER_BATCH
) -> tuple[float, int, float]:
    """(peak KiB, units emitted, units/s) for the columnar path.

    Consumes ``StreamingProfiler.units`` with aggregation only — the
    O(active-unit) mode a live monitor would use — so the peak reflects
    in-flight state, not a retained profile.
    """
    profiler = StreamingProfiler(CONFIG)
    tracemalloc.start()
    count = 0
    instructions = 0.0
    start = time.perf_counter()
    stream = make_stream(n_units, *ctx, rows_per_batch=rows_per_batch)
    for _tid, unit in profiler.units(stream):
        count += 1
        instructions += unit.instructions
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert instructions == float(n_units * UNIT_SIZE)
    return peak / 1024.0, count, count / elapsed if elapsed > 0 else 0.0


def _batch_run(
    n_units: int, ctx, *, rows_per_batch: int = ROWS_PER_BATCH
) -> tuple[float, int]:
    """(peak KiB, units) for the batch path on the same stream."""
    tracemalloc.start()
    trace = JobTrace.from_stream(
        make_stream(n_units, *ctx, rows_per_batch=rows_per_batch)
    )
    job = SimProfProfiler(CONFIG).profile(trace)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1024.0, job.n_units


def _reference_run(n_units: int, ctx) -> tuple[list, float]:
    """(units, units/s) for the pre-columnar object path.

    Batches arrive columnar off the wire either way; the object path's
    first act was always to materialise per-segment objects, so that
    conversion is charged to it.
    """
    cutter = ReferenceUnitCutter(1, CONFIG)
    units = []
    start = time.perf_counter()
    for event in make_stream(n_units, *ctx):
        if isinstance(event, SegmentBatch):
            for seg in event.segments:
                units.extend(cutter.feed(seg))
    units.extend(cutter.flush())
    elapsed = time.perf_counter() - start
    return units, len(units) / elapsed if elapsed > 0 else 0.0


def test_stream_profile_matches_batch():
    """Bit-exact parity on the synthetic stream at the base length."""
    ctx = _shared_context()
    trace = JobTrace.from_stream(make_stream(BASE_UNITS, *ctx))
    batch = SimProfProfiler(CONFIG).profile(trace)
    streamed = StreamingProfiler(CONFIG).consume(make_stream(BASE_UNITS, *ctx))
    assert streamed.profile.thread_id == batch.profile.thread_id
    assert len(streamed.profile.units) == len(batch.profile.units)
    for b, s in zip(batch.profile.units, streamed.profile.units):
        assert b.index == s.index
        assert b.instructions == s.instructions
        assert b.cycles == s.cycles
        assert b.l1d_misses == s.l1d_misses
        assert b.llc_misses == s.llc_misses
        assert np.array_equal(b.stack_ids, s.stack_ids)
        assert np.array_equal(b.stack_counts, s.stack_counts)


def test_columnar_beats_object_path():
    """Columnar consumer vs the reference object path: same units, faster."""
    ctx = _shared_context()
    ref_units, ref_rate = _reference_run(REF_UNITS, ctx)

    profiler = StreamingProfiler(CONFIG)
    col_units = []
    start = time.perf_counter()
    for _tid, unit in profiler.units(make_stream(REF_UNITS, *ctx)):
        col_units.append(unit)
    elapsed = time.perf_counter() - start
    col_rate = len(col_units) / elapsed if elapsed > 0 else 0.0

    assert len(col_units) == len(ref_units) == REF_UNITS
    for c, r in zip(col_units, ref_units):
        assert c.index == r.index
        assert c.instructions == r.instructions
        assert c.cycles == r.cycles
        assert np.array_equal(c.stack_ids, r.stack_ids)
        assert np.array_equal(c.stack_counts, r.stack_counts)

    speedup = col_rate / ref_rate if ref_rate > 0 else float("inf")
    RESULTS["throughput"] = {
        "units": REF_UNITS,
        "reference_units_per_sec": round(ref_rate, 1),
        "columnar_units_per_sec": round(col_rate, 1),
        "speedup": round(speedup, 1),
        "ratio_floor": RATIO_FLOOR,
    }
    emit(
        "Columnar vs object-path throughput",
        f"  reference {ref_rate:>10,.1f} units/s | "
        f"columnar {col_rate:>10,.1f} units/s | {speedup:.1f}x "
        f"(floor {RATIO_FLOOR:.0f}x, {REF_UNITS} units)",
    )
    assert speedup >= RATIO_FLOOR, (
        f"columnar path only {speedup:.1f}x the object path "
        f"(floor {RATIO_FLOOR:.0f}x)"
    )


def test_columnar_scale_sustains_throughput():
    """The 10⁶-unit job: sustained units/s, flat peak, regression gate."""
    ctx = _shared_context()
    base_peak, _, _ = _stream_run(SCALE_UNITS // 10, ctx)
    scale_peak, scale_units, scale_rate = _stream_run(SCALE_UNITS, ctx)
    assert scale_units == SCALE_UNITS
    # One in-flight unit per thread: 10x the job length must not
    # meaningfully move the peak.
    assert scale_peak < 2.0 * base_peak

    RESULTS["scale"] = {
        "units": SCALE_UNITS,
        "segments": SCALE_UNITS * (UNIT_SIZE // SEGMENT_INSTRUCTIONS),
        "units_per_sec": round(scale_rate, 1),
        "peak_kib_tenth": round(base_peak, 1),
        "peak_kib_full": round(scale_peak, 1),
    }
    emit(
        "Columnar scale run",
        f"  {scale_units:,} units ({RESULTS['scale']['segments']:,} "
        f"segments): {scale_rate:>10,.1f} units/s | peak "
        f"{scale_peak:,.1f} KiB (vs {base_peak:,.1f} KiB at 1/10 length)",
    )

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["smoke_units_per_sec"] / REGRESSION_FACTOR
        if SMOKE:
            assert scale_rate >= floor, (
                f"REGRESSION: columnar throughput {scale_rate:,.1f} units/s "
                f"< baseline {baseline['smoke_units_per_sec']:,.1f} / "
                f"{REGRESSION_FACTOR:.0f}"
            )
        RESULTS["scale"]["baseline_units_per_sec"] = baseline[
            "smoke_units_per_sec"
        ]


def test_streaming_memory_stays_flat(benchmark):
    """The headline sweep: batch peak grows ~linearly, stream peak flat."""
    ctx = _shared_context()
    rows = []
    # A constant 4-unit wire batch: in-flight state is identical at
    # every sweep length, so only the retained trace can move the peak.
    sweep_batch = 4 * (UNIT_SIZE // SEGMENT_INSTRUCTIONS)
    for factor in SWEEP:
        n = BASE_UNITS * factor
        stream_peak, stream_units, units_per_sec = _stream_run(
            n, ctx, rows_per_batch=sweep_batch
        )
        batch_peak, batch_units = _batch_run(n, ctx, rows_per_batch=sweep_batch)
        assert stream_units == batch_units == n
        rows.append(
            {
                "factor": factor,
                "units": n,
                "segments": n * (UNIT_SIZE // SEGMENT_INSTRUCTIONS),
                "stream_peak_kib": round(stream_peak, 1),
                "batch_peak_kib": round(batch_peak, 1),
                "units_per_sec": round(units_per_sec, 1),
                "us_per_unit": round(1e6 / units_per_sec, 1)
                if units_per_sec > 0 else None,
            }
        )

    base, top = rows[0], rows[-1]
    # Streaming holds one in-flight unit: a 10x longer trace must not
    # meaningfully move the peak.  Batch holds the whole trace: the
    # peak must scale with length.
    assert top["stream_peak_kib"] < 2.0 * base["stream_peak_kib"]
    assert top["batch_peak_kib"] > 5.0 * base["batch_peak_kib"]

    # Time the streaming kernel itself on a fresh base-length stream
    # (streams are single-shot, so each round gets its own).
    benchmark.pedantic(
        lambda s: sum(1 for _ in StreamingProfiler(CONFIG).units(s)),
        setup=lambda: ((make_stream(BASE_UNITS, *ctx),), {}),
        rounds=3,
        iterations=1,
    )

    store_stats = default_store().stats
    payload = {
        "benchmark": "streaming-profiler",
        "smoke": SMOKE,
        "unit_size": UNIT_SIZE,
        "snapshot_period": SNAPSHOT_PERIOD,
        "segment_instructions": SEGMENT_INSTRUCTIONS,
        "rows_per_batch": ROWS_PER_BATCH,
        "sweep": rows,
        **RESULTS,
        "store": {
            "memory_hits": store_stats.memory_hits,
            "disk_hits": store_stats.disk_hits,
            "misses": store_stats.misses,
            "puts": store_stats.puts,
        },
    }
    with open("BENCH_streaming.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    emit(
        "Streaming profiler: peak memory vs trace length",
        "\n".join(
            f"  {r['factor']:>3}x ({r['units']:>4} units): "
            f"stream {r['stream_peak_kib']:>9,.1f} KiB | "
            f"batch {r['batch_peak_kib']:>10,.1f} KiB | "
            f"{r['units_per_sec']:>8,.1f} units/s"
            for r in rows
        )
        + f"\n  batch grows {top['batch_peak_kib'] / base['batch_peak_kib']:.1f}x, "
        f"stream {top['stream_peak_kib'] / base['stream_peak_kib']:.2f}x "
        "across a 10x length sweep (wrote BENCH_streaming.json)",
    )
