"""Streaming profiler benchmark: flat memory across trace lengths.

The tentpole claim of the streaming refactor, measured: the batch
profiler's peak memory grows linearly with trace length (it holds the
whole :class:`JobTrace`), while the streaming profiler's peak stays
flat (it holds one in-flight sampling unit per thread).  The sweep
drives both paths from the *same* lazy synthetic stream so neither side
pays for pre-built inputs, asserts bit-identical units at the smallest
length, and writes the evidence to ``BENCH_streaming.json`` for the CI
artifact.

``SIMPROF_BENCH_SMOKE=1`` shrinks the sweep for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from typing import Iterator

import numpy as np
from conftest import emit

from repro.core.profiler import ProfilerConfig, SimProfProfiler, StreamingProfiler
from repro.jvm.job import JobTrace
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.stream import JobEnd, SegmentBatch, ThreadStart, TraceStream
from repro.jvm.threads import TraceSegment
from repro.runtime.store import default_store

SMOKE = os.environ.get("SIMPROF_BENCH_SMOKE") == "1"
UNIT_SIZE = 1_000_000
SNAPSHOT_PERIOD = 50_000
SEGMENT_INSTRUCTIONS = 10_000  # 100 segments per sampling unit
BASE_UNITS = 8 if SMOKE else 40
SWEEP = (1, 3, 10)

CONFIG = ProfilerConfig(
    unit_size=UNIT_SIZE, snapshot_period=SNAPSHOT_PERIOD, seed=0
)


def _shared_context() -> tuple[MethodRegistry, StackTable, list[int]]:
    """One registry/stack table reused by every stream of the sweep."""
    registry = MethodRegistry()
    table = StackTable(registry)
    root = registry.intern("bench.Worker", "run")
    stacks = []
    for name in ("scan", "hash", "merge", "spill", "emit", "flush"):
        mid = registry.intern("bench.Worker", name)
        stacks.append(table.intern(CallStack((root, mid))))
    return registry, table, stacks


def make_stream(
    n_units: int,
    registry: MethodRegistry,
    table: StackTable,
    stacks: list[int],
) -> TraceStream:
    """A lazy synthetic stream: segments materialise only when consumed.

    Deterministic CPI/stack patterns (no RNG) so every invocation with
    the same length produces the identical event sequence.
    """
    n_segments = n_units * (UNIT_SIZE // SEGMENT_INSTRUCTIONS)

    def events() -> Iterator:
        yield ThreadStart(1, 0, 0)
        for i in range(n_segments):
            sid = stacks[(i // 40) % len(stacks)]
            cycles = SEGMENT_INSTRUCTIONS * (55 + (i % 7) * 9) // 100
            yield SegmentBatch(
                1,
                (
                    TraceSegment(
                        sid, OpKind.MAP, SEGMENT_INSTRUCTIONS, cycles, 64, 8
                    ),
                ),
            )
        yield JobEnd({})

    return TraceStream(
        framework="synthetic",
        workload="synth",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        events=events(),
    )


def _stream_run(n_units: int, ctx) -> tuple[float, int, float]:
    """(peak KiB, units emitted, units/s) for the pure streaming path.

    Consumes ``StreamingProfiler.units`` with aggregation only — the
    O(active-unit) mode a live monitor would use — so the peak reflects
    in-flight state, not a retained profile.
    """
    profiler = StreamingProfiler(CONFIG)
    tracemalloc.start()
    count = 0
    instructions = 0.0
    start = time.perf_counter()
    for _tid, unit in profiler.units(make_stream(n_units, *ctx)):
        count += 1
        instructions += unit.instructions
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert instructions == float(n_units * UNIT_SIZE)
    return peak / 1024.0, count, count / elapsed if elapsed > 0 else 0.0


def _batch_run(n_units: int, ctx) -> tuple[float, int]:
    """(peak KiB, units) for the batch path on the same stream."""
    tracemalloc.start()
    trace = JobTrace.from_stream(make_stream(n_units, *ctx))
    job = SimProfProfiler(CONFIG).profile(trace)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1024.0, job.n_units


def test_stream_profile_matches_batch():
    """Bit-exact parity on the synthetic stream at the base length."""
    ctx = _shared_context()
    trace = JobTrace.from_stream(make_stream(BASE_UNITS, *ctx))
    batch = SimProfProfiler(CONFIG).profile(trace)
    streamed = StreamingProfiler(CONFIG).consume(make_stream(BASE_UNITS, *ctx))
    assert streamed.profile.thread_id == batch.profile.thread_id
    assert len(streamed.profile.units) == len(batch.profile.units)
    for b, s in zip(batch.profile.units, streamed.profile.units):
        assert b.index == s.index
        assert b.instructions == s.instructions
        assert b.cycles == s.cycles
        assert b.l1d_misses == s.l1d_misses
        assert b.llc_misses == s.llc_misses
        assert np.array_equal(b.stack_ids, s.stack_ids)
        assert np.array_equal(b.stack_counts, s.stack_counts)


def test_streaming_memory_stays_flat(benchmark):
    """The headline sweep: batch peak grows ~linearly, stream peak flat."""
    ctx = _shared_context()
    rows = []
    for factor in SWEEP:
        n = BASE_UNITS * factor
        stream_peak, stream_units, units_per_sec = _stream_run(n, ctx)
        batch_peak, batch_units = _batch_run(n, ctx)
        assert stream_units == batch_units == n
        rows.append(
            {
                "factor": factor,
                "units": n,
                "segments": n * (UNIT_SIZE // SEGMENT_INSTRUCTIONS),
                "stream_peak_kib": round(stream_peak, 1),
                "batch_peak_kib": round(batch_peak, 1),
                "units_per_sec": round(units_per_sec, 1),
                "us_per_unit": round(1e6 / units_per_sec, 1)
                if units_per_sec > 0 else None,
            }
        )

    base, top = rows[0], rows[-1]
    # Streaming holds one in-flight unit: a 10x longer trace must not
    # meaningfully move the peak.  Batch holds the whole trace: the
    # peak must scale with length.
    assert top["stream_peak_kib"] < 2.0 * base["stream_peak_kib"]
    assert top["batch_peak_kib"] > 5.0 * base["batch_peak_kib"]

    # Time the streaming kernel itself on a fresh base-length stream
    # (streams are single-shot, so each round gets its own).
    benchmark.pedantic(
        lambda s: sum(1 for _ in StreamingProfiler(CONFIG).units(s)),
        setup=lambda: ((make_stream(BASE_UNITS, *ctx),), {}),
        rounds=3,
        iterations=1,
    )

    store_stats = default_store().stats
    payload = {
        "benchmark": "streaming-profiler",
        "smoke": SMOKE,
        "unit_size": UNIT_SIZE,
        "snapshot_period": SNAPSHOT_PERIOD,
        "sweep": rows,
        "store": {
            "memory_hits": store_stats.memory_hits,
            "disk_hits": store_stats.disk_hits,
            "misses": store_stats.misses,
            "puts": store_stats.puts,
        },
    }
    with open("BENCH_streaming.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    emit(
        "Streaming profiler: peak memory vs trace length",
        "\n".join(
            f"  {r['factor']:>3}x ({r['units']:>4} units): "
            f"stream {r['stream_peak_kib']:>9,.1f} KiB | "
            f"batch {r['batch_peak_kib']:>10,.1f} KiB | "
            f"{r['units_per_sec']:>8,.1f} units/s"
            for r in rows
        )
        + f"\n  batch grows {top['batch_peak_kib'] / base['batch_peak_kib']:.1f}x, "
        f"stream {top['stream_peak_kib'] / base['stream_peak_kib']:.2f}x "
        "across a 10x length sweep (wrote BENCH_streaming.json)",
    )
