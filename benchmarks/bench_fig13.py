"""Figure 13: number of input-sensitive vs insensitive phases."""

from conftest import emit

from repro.core.sensitivity import phase_sensitivity_test
from repro.experiments.common import get_model
from repro.experiments.fig12_13_sensitivity import run_fig12_13


def test_fig13(benchmark, full_cfg):
    result = run_fig12_13(full_cfg)
    lines = [
        f"{r.label}: sensitive={r.n_sensitive} insensitive={r.n_insensitive}"
        for r in result.rows
    ]
    emit("Figure 13", "\n".join(lines))
    # Paper shape: for most workloads, at least ~40% of the phases are
    # input insensitive.
    mostly_insensitive = sum(
        1 for r in result.rows if r.n_insensitive >= 0.4 * r.n_phases
    )
    assert mostly_insensitive >= 3
    # The flagship input-sensitive phase: cc_sp's aggregateUsingIndex.
    cc_sp = result.details["cc_sp"]
    _job, model = get_model("cc", "spark", full_cfg, graph_name="Google")
    agg_phases = [
        h
        for h in range(model.k)
        if any("aggregateUsingIndex" in m for m, _ in model.top_methods(h, 1))
    ]
    assert any(h in cc_sp.sensitive_phases for h in agg_phases)

    # Kernel: the Eq. 6 comparison itself.
    t = cc_sp.train_stats[0]
    r = cc_sp.ref_stats["Road"][0]
    benchmark(phase_sensitivity_test, t, r)
