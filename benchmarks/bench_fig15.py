"""Figure 15: WordCount phase behaviour on Hadoop."""

from conftest import emit

from repro.experiments.fig14_15_wordcount import run_wordcount_series


def test_fig15(benchmark, full_cfg):
    series = benchmark.pedantic(
        run_wordcount_series, args=("hadoop", full_cfg), rounds=3, iterations=1
    )
    emit("Figure 15", series.to_text())
    summary = series.phase_summary

    def phase_with(method: str):
        matches = [
            p for p in summary if any(method in m for m in p["top_methods"])
        ]
        assert matches, f"no phase dominated by {method}"
        return matches[0]

    # Paper shape: a TokenizerMapper map phase with high performance and
    # low CPI variation ...
    map_phase = phase_with("TokenizerMapper")
    assert map_phase["cpi_cov"] < 0.1
    # ... and a quicksort phase whose recursive partition sizes make the
    # CPI variation the highest of all phases.
    sort_phase = phase_with("QuickSort")
    assert sort_phase["cpi_cov"] == max(p["cpi_cov"] for p in summary)
    assert sort_phase["cpi_cov"] > 0.25
    assert sort_phase["cpi_mean"] > map_phase["cpi_mean"]
