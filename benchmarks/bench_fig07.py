"""Figure 7: CPI sampling errors of SECOND / SRS / CODE / SimProf."""

import numpy as np
from conftest import emit

from repro.core.baselines import SimProfSampler
from repro.experiments.common import get_model
from repro.experiments.fig07_errors import run_fig7


def test_fig07(benchmark, full_cfg):
    result = run_fig7(full_cfg)
    emit("Figure 7", result.to_text())
    avg = result.averages()
    # Paper shape: SimProf is the most accurate approach by a margin
    # (paper: 1.6% vs 4.0/6.5/8.9%).
    assert avg["SimProf"] < avg["CODE"]
    assert avg["SimProf"] < avg["SRS"]
    assert avg["SimProf"] < avg["SECOND"]
    assert avg["SimProf"] < 0.04

    # Kernel: one stratified sampling draw on wc_sp.
    job, model = get_model("wc", "spark", full_cfg)
    sampler = SimProfSampler(20)
    rng = np.random.default_rng(0)
    benchmark(sampler.sample, job, model, rng)
