"""Extension: input sensitivity for text workloads (paper future work)."""

from conftest import emit

from repro.experiments.ext_text_sensitivity import run_text_sensitivity


def test_text_sensitivity(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_text_sensitivity, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: text-workload input sensitivity", result.to_text())
    assert len(result.rows) == 4
    for label, phases, sensitive, insensitive, _pct, _by in result.rows:
        assert sensitive + insensitive == phases
    # The Zipf skew must register somewhere: word-frequency profiles
    # change the combiner-map behaviour of at least one wc variant.
    wc_rows = [r for r in result.rows if r[0].startswith("wc")]
    assert any(r[2] > 0 for r in wc_rows)
