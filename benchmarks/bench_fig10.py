"""Figure 10: phase-type distribution (map / reduce / sort / IO)."""

from conftest import emit

from repro.core.analysis import phase_type_distribution
from repro.experiments.common import get_model
from repro.experiments.fig10_phasetypes import run_fig10


def test_fig10(benchmark, full_cfg):
    result = run_fig10(full_cfg)
    emit("Figure 10", result.to_text())
    # Paper shape: sort phases appear in the Hadoop key-value workloads
    # (spill sorting) but not in their Spark counterparts.
    assert result.shares["wc_hp"].get("sort", 0.0) > 0.0
    assert result.shares["wc_sp"].get("sort", 0.0) == 0.0
    # Every row is a distribution.
    for label, shares in result.shares.items():
        assert abs(sum(shares.values()) - 1.0) < 1e-9, label

    job, model = get_model("wc", "hadoop", full_cfg)
    benchmark(phase_type_distribution, job, model.assignments)
