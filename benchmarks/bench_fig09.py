"""Figure 9: number of phases per workload."""

from conftest import emit

from repro.core.features import FeatureSpace
from repro.core.clustering import choose_k
from repro.experiments.common import get_profile
from repro.experiments.fig09_phasecount import run_fig9


def test_fig09(benchmark, full_cfg):
    result = run_fig9(full_cfg)
    emit("Figure 9", result.to_text())
    # Paper shape: grep has the fewest phases; the graph workloads sit
    # at the top of the Spark range.
    counts = result.counts
    assert counts["grep_sp"] == min(
        v for k, v in counts.items() if k.endswith("_sp")
    )
    assert all(1 <= v <= 20 for v in counts.values())

    # Kernel: the k-selection sweep on wc_sp's feature matrix.
    job = get_profile("wc", "spark", full_cfg)
    _space, X = FeatureSpace.fit(job, top_k=100)
    benchmark.pedantic(
        choose_k, args=(X,), kwargs={"seed": 0}, rounds=3, iterations=1
    )
