"""Replication + fleet-restore benchmark: overhead, speedup, no-op gate.

Three questions about the replication plane, answered on deterministic
workload streams:

* **Cost of replicating** — end-to-end streaming profile time with a
  checkpoint chain mirrored to a filesystem peer, at ``every`` =
  1/10/100, versus the same checkpointed run with replication off.
  The async policy keeps peer traffic off the hot path, so the
  overhead should shrink toward 1.0x as the interval coarsens.
* **Replication off is a no-op** — with no policy attached the run
  must produce a byte-identical profile and generate zero peer
  traffic (the peer directory is never created).
* **Fleet restore speedup** — 8 jobs killed mid-stream, chains and
  journal replicated, then restored serially (``jobs=1``) versus in
  parallel (``jobs=8``) from an identical pulled copy.  The two
  restores must be byte-identical; on hosts with ≥ 4 cores the
  parallel restore must be ≥ 3x faster (on smaller hosts the measured
  speedup is recorded but not gated — 8 workers cannot beat 1 core).

Writes the evidence to ``BENCH_restore.json`` for the CI artifact.
``SIMPROF_BENCH_SMOKE=1`` shrinks the streams for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time

from conftest import emit

from repro.core.pipeline import SimProf, SimProfConfig
from repro.runtime.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    WorkerKilled,
)
from repro.runtime.replicate import (
    FilesystemPeer,
    ReplicationPolicy,
    RetryPolicy,
    pull_fleet,
    restore_fleet,
)
from repro.runtime.runner import RunSpec, _compute_profile_stream
from repro.runtime.store import ArtifactStore
from repro.workloads import run_workload_stream

SMOKE = os.environ.get("SIMPROF_BENCH_SMOKE") == "1"
SCALE = 0.08 if SMOKE else 0.3
FLEET = 8
#: The ≥3x serial→parallel gate only binds where the hardware can
#: actually run restores concurrently.
GATE_MIN_CPUS = 4

CONFIG = SimProfConfig(unit_size=10_000_000, snapshot_period=500_000, seed=0)
NO_BACKOFF = RetryPolicy(retries=3, backoff=0.0)

RESULTS: dict = {}


def _stream():
    return run_workload_stream("wc", "spark", scale=SCALE, seed=0)


def _timed_profile(checkpoint=None) -> tuple[float, str]:
    tool = SimProf(CONFIG)
    start = time.perf_counter()
    job = tool.profile_stream(_stream(), checkpoint=checkpoint)
    return time.perf_counter() - start, job.content_digest()


def test_replication_overhead(tmp_path):
    """Checkpointed run + replication vs the same run replication-off."""
    off_base, want = _timed_profile()  # no checkpointing at all

    rows = []
    for every in (1, 10, 100):
        local = ArtifactStore(tmp_path / f"off-{every}")
        manager = CheckpointManager(local, "bench-off")
        t_off, d_off = _timed_profile(
            CheckpointPolicy(manager, every=every, resume=False)
        )
        assert d_off == want, "checkpointing changed the result"
        # Replication off really was a no-op: zero peer traffic.
        assert not (tmp_path / f"peer-{every}").exists()

        local = ArtifactStore(tmp_path / f"on-{every}")
        peer = FilesystemPeer(tmp_path / f"peer-{every}")
        policy = ReplicationPolicy(peer, retry=NO_BACKOFF)
        manager = CheckpointManager(local, "bench-on", replicate=policy)
        start = time.perf_counter()
        tool = SimProf(CONFIG)
        job = tool.profile_stream(
            _stream(),
            checkpoint=CheckpointPolicy(manager, every=every, resume=False),
        )
        status = policy.close()  # drain: replication cost fully counted
        t_on = time.perf_counter() - start
        assert job.content_digest() == want, "replication changed the result"
        assert not status.degraded
        assert status.pushed + status.present == status.submitted
        rows.append(
            {
                "every": every,
                "off_seconds": round(t_off, 4),
                "on_seconds": round(t_on, 4),
                "overhead": round(t_on / t_off, 3) if t_off else 0.0,
                "pushed": status.pushed,
            }
        )

    RESULTS["overhead"] = {"baseline_seconds": round(off_base, 4), "rows": rows}
    emit(
        "Replication overhead (checkpointed run, on vs off)",
        f"  no checkpointing: {off_base:.3f}s (digest {want[:12]})\n"
        + "\n".join(
            f"  every={r['every']:>3}: off {r['off_seconds']:.3f}s, "
            f"on {r['on_seconds']:.3f}s ({r['overhead']:.2f}x, "
            f"{r['pushed']} pushed)"
            for r in rows
        ),
    )


def _fleet_specs():
    frameworks = ("spark", "hadoop")
    return [
        RunSpec(
            ("wc", "grep")[(i // 2) % 2],
            frameworks[i % 2],
            scale=SCALE,
            seed=i // 4,
            simprof=CONFIG,
        )
        for i in range(FLEET)
    ]


def test_fleet_restore_serial_vs_parallel(tmp_path):
    """Serial and parallel restores are byte-identical; speedup gated
    on hosts with enough cores to express it."""
    specs = _fleet_specs()
    store_a = ArtifactStore(tmp_path / "a")
    peer = FilesystemPeer(tmp_path / "peer")
    policy = ReplicationPolicy(peer, retry=NO_BACKOFF)
    for i, spec in enumerate(specs):
        try:
            _compute_profile_stream(
                spec,
                store_a,
                checkpoint_every=1,
                kill_after=12 + i,
                replicate=policy,
            )
        except WorkerKilled:
            pass
    status = policy.close()
    assert not status.degraded, "replication must drain cleanly here"

    # An identical second copy, recovered the DR way: pulled from the peer.
    store_b = ArtifactStore(tmp_path / "b")
    pulled = pull_fleet(peer, store_b, retry=NO_BACKOFF)
    assert pulled.ok

    start = time.perf_counter()
    serial = restore_fleet(store_a, jobs=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = restore_fleet(store_b, jobs=FLEET)
    t_parallel = time.perf_counter() - start

    assert len(serial) == len(parallel) == FLEET
    pairs = [(s.job_key, s.digest) for s in serial]
    assert pairs == [(p.job_key, p.digest) for p in parallel], (
        "parallel restore diverged from serial"
    )

    cpus = os.cpu_count() or 1
    speedup = t_serial / t_parallel if t_parallel else 0.0
    RESULTS["fleet_restore"] = {
        "fleet": FLEET,
        "cpus": cpus,
        "serial_seconds": round(t_serial, 3),
        "parallel_seconds": round(t_parallel, 3),
        "speedup": round(speedup, 2),
        "byte_identical": True,
        "gated": cpus >= GATE_MIN_CPUS,
    }
    if cpus >= GATE_MIN_CPUS:
        assert speedup >= 3.0, (
            f"parallel restore only {speedup:.2f}x faster than serial "
            f"({t_parallel:.2f}s vs {t_serial:.2f}s) on {cpus} cpus"
        )

    payload = {
        "benchmark": "restore",
        "smoke": SMOKE,
        "scale": SCALE,
        "unit_size": CONFIG.unit_size,
        "snapshot_period": CONFIG.snapshot_period,
        **RESULTS,
    }
    with open("BENCH_restore.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    emit(
        "Fleet restore: serial vs parallel",
        f"  fleet {FLEET} on {cpus} cpu(s): serial {t_serial:.2f}s, "
        f"parallel {t_parallel:.2f}s ({speedup:.2f}x"
        f"{', gate ≥3x' if cpus >= GATE_MIN_CPUS else ', ungated'})\n"
        f"  byte-identical: True (wrote BENCH_restore.json)",
    )
