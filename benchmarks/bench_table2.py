"""Table II: graph inputs (Kronecker synthesis of all eight seeds)."""

from conftest import emit

from repro.experiments.table2 import run_table2


def test_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    emit("Table II", result.to_text())
    assert len(result.rows) == 8
    # Topologies must differ: web graphs are more skewed than roads.
    by_name = {r[0]: r for r in result.rows}
    assert by_name["Google"][5] > by_name["Road"][5]
