"""Incremental-recompute benchmark: cold graph run vs warm-after-edit.

The provenance plane claims that after a one-line edit to one
estimator module, ``run_graph`` re-executes only the stages whose code
closure contains that module.  This bench measures the claim on a real
two-workload Figure-7-style graph (trace-gen → profile → featurize →
phase-fit → report):

* **cold** — empty store: simulate both workloads, profile, fit, and
  build the error report;
* **warm (no edit)** — the same graph again: every node must hit;
* **warm (one-line edit)** — append one line to
  ``src/repro/core/baselines.py`` (the samplers the report stage uses)
  and re-run: only the report node may re-execute, with recorded miss
  cause ``code``.  The edit is reverted afterwards (``try/finally``),
  and a final planning pass confirms the original entries still hit.

The acceptance gate is a >= 10x cold / warm-after-edit speedup;
anything less means an edit to one leaf module is re-running upstream
simulation work.  Writes ``BENCH_incremental.json`` for the CI
artifact; ``--check-baseline`` makes a gate miss exit non-zero (the CI
``incremental-smoke`` job).  Run as a script, not under pytest::

    PYTHONPATH=src python benchmarks/bench_incremental.py --check-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
EDIT_TARGET = REPO_ROOT / "src" / "repro" / "core" / "baselines.py"
EDIT_LINE = "\n# bench_incremental: one-line edit (reverted)\n"

MIN_SPEEDUP = 10.0
PAIRS = (("grep", "spark"), ("wc", "spark"))
REPORT_NODE = "report:bench"


def _build_graph(cfg):
    """A small Figure-7-shaped graph over two fast workloads."""
    from repro.experiments.common import model_inputs, report_params
    from repro.experiments.fig07_errors import _fig7_report
    from repro.runtime.provenance import StageGraph

    graph = StageGraph("bench-incremental")
    deps, labels = model_inputs(graph, list(PAIRS), cfg)
    graph.node(
        REPORT_NODE,
        _fig7_report,
        params=report_params(cfg, labels, n_points=10, second_seconds=10.0),
        deps=deps,
    )
    return graph


def _timed_run(runner, cfg):
    from repro.runtime.provenance import CodeIndex

    graph = _build_graph(cfg)
    start = time.perf_counter()
    # A fresh CodeIndex per run: nothing warm survives from the
    # previous pass except the store's content-addressed modindex
    # entries, exactly like a new CI process.
    result = runner.run_graph(graph, code=CodeIndex(runner.store))
    return time.perf_counter() - start, result


def run_bench() -> dict:
    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig
    from repro.runtime.runner import ExperimentRunner
    from repro.runtime.store import ArtifactStore

    cfg = ExperimentConfig(
        scale=0.05,
        n_sampling_draws=3,
        simprof=SimProfConfig(unit_size=10_000_000, snapshot_period=500_000),
    )
    tmp = tempfile.mkdtemp(prefix="simprof-bench-incremental-")
    runner = ExperimentRunner(store=ArtifactStore(tmp))

    cold_s, cold = _timed_run(runner, cfg)
    assert cold.misses == len(cold.plans), "cold run hit a fresh store"
    report_key = cold.key(REPORT_NODE)

    noop_s, noop = _timed_run(runner, cfg)
    assert noop.executed == [], f"no-op run recomputed {noop.executed}"

    original = EDIT_TARGET.read_bytes()
    try:
        EDIT_TARGET.write_bytes(original + EDIT_LINE.encode())
        edit_s, edited = _timed_run(runner, cfg)
    finally:
        EDIT_TARGET.write_bytes(original)

    assert edited.executed == [REPORT_NODE], (
        f"one-line edit to {EDIT_TARGET.name} re-executed "
        f"{edited.executed}, expected only the report stage"
    )
    assert edited.plan(REPORT_NODE).cause == "code"

    # With the edit reverted, the original entries answer again — the
    # edit fragmented nothing upstream.
    revert_s, reverted = _timed_run(runner, cfg)
    assert reverted.executed == []
    assert reverted.key(REPORT_NODE) == report_key

    # The two report artifacts agree: the appended line changed the
    # fingerprint, not the numbers.
    assert (
        runner.store.get(report_key).to_text()
        == runner.store.get(edited.key(REPORT_NODE)).to_text()
    ), "edited-run report diverged from the cold run"

    speedup = cold_s / edit_s
    return {
        "benchmark": "incremental-recompute",
        "pairs": ["_".join(p) for p in PAIRS],
        "nodes": len(cold.plans),
        "edit_target": str(EDIT_TARGET.relative_to(REPO_ROOT)),
        "cold_seconds": round(cold_s, 4),
        "warm_noop_seconds": round(noop_s, 4),
        "warm_after_edit_seconds": round(edit_s, 4),
        "warm_after_revert_seconds": round(revert_s, 4),
        "recomputed_after_edit": edited.executed,
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=f"fail if cold/warm-after-edit speedup drops below {MIN_SPEEDUP:.0f}x",
    )
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    results = run_bench()
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    print(
        f"incremental recompute over {results['nodes']} stage nodes "
        f"({', '.join(results['pairs'])}):"
    )
    print(
        f"  cold {results['cold_seconds']:.3f}s | "
        f"warm no-op {results['warm_noop_seconds']:.3f}s | "
        f"warm after one-line edit {results['warm_after_edit_seconds']:.3f}s "
        f"-> {results['speedup']:.1f}x"
    )
    print(f"wrote {args.out}")

    if args.check_baseline and results["speedup"] < MIN_SPEEDUP:
        print(
            f"REGRESSION: warm-after-edit only {results['speedup']:.1f}x "
            f"faster than cold (< {MIN_SPEEDUP:.0f}x): the provenance "
            "cache is re-running upstream stages"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
