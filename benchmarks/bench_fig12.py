"""Figure 12: simulation points in input-sensitive phases."""

from conftest import emit

from repro.core.sensitivity import classify_units
from repro.experiments.common import get_model, get_profile
from repro.experiments.fig12_13_sensitivity import run_fig12_13


def test_fig12(benchmark, full_cfg):
    result = run_fig12_13(full_cfg)
    emit("Figure 12", result.to_text())
    # Paper shape: skipping input-insensitive phases shrinks the sample
    # needed for reference inputs substantially (paper: 33.7% average).
    assert 0.10 <= result.average_reduction() <= 0.90
    for row in result.rows:
        assert 0.0 <= row.sensitive_point_fraction <= 1.0

    # Kernel: unit classification of one reference input (the hot step
    # of Algorithm 1).
    train_job, model = get_model("cc", "spark", full_cfg, graph_name="Google")
    ref = get_profile("cc", "spark", full_cfg, graph_name="Road")
    benchmark.pedantic(
        classify_units, args=(model, ref), rounds=3, iterations=1
    )
