"""Figure 14: WordCount phase behaviour on Spark."""

from conftest import emit

from repro.experiments.fig14_15_wordcount import run_wordcount_series


def test_fig14(benchmark, full_cfg):
    series = benchmark.pedantic(
        run_wordcount_series, args=("spark", full_cfg), rounds=3, iterations=1
    )
    emit("Figure 14", series.to_text())
    # Paper shape: the dominant phase carries the map-side reduce
    # (Aggregator.combineValuesByKey) in stage 1 ...
    dominant = max(series.phase_summary, key=lambda p: p["weight"])
    assert "combineValuesByKey" in dominant["top_method"]
    assert dominant["weight"] > 0.5
    # ... and shows fairly stable performance (its ops are merged).
    assert dominant["cpi_cov"] < 0.15
    # The reduce+save stage is a small minority of the sample.
    others = [p for p in series.phase_summary if p is not dominant]
    assert sum(p["weight"] for p in others) < 0.5
