"""Figure 8: required sample size, SimProf vs SECOND."""

from conftest import emit

from repro.experiments.common import get_model
from repro.experiments.fig08_samplesize import run_fig8


def test_fig08(benchmark, full_cfg):
    result = run_fig8(full_cfg)
    emit("Figure 8", result.to_text())
    avg = result.averages()
    # Paper shape: 5%-error samples are much smaller than 2%-error
    # samples, and both are (on average) well below the SECOND interval.
    assert avg["SimProf_0.05"] < avg["SimProf_0.02"] < avg["SECOND"]
    # Paper: cc_sp is the exception whose phases are so variable that it
    # needs more units than SECOND covers.
    by_label = {r.label: r for r in result.rows}
    assert by_label["cc_sp"].simprof_2pct > by_label["cc_sp"].second_units

    # Kernel: the sample-size solver on cc_sp.
    job, model = get_model("cc", "spark", full_cfg)
    tool = full_cfg.simprof_tool()
    benchmark(
        tool.sample_size_for, job, model, relative_error=0.02
    )
