"""Extension: stratified sampling accuracy under fault injection.

Runs the :mod:`repro.experiments.ext_faults` sweep — recoveries must be
semantically transparent (workload output unchanged), SimProf's CPI
estimate must stay inside its 99.7 % confidence interval at every fault
rate, and the whole thing must replay bit-identically — and writes the
evidence to ``BENCH_faults.json`` for the CI chaos-smoke artifact.

``SIMPROF_BENCH_SMOKE=1`` shrinks the workload scale and the rate sweep
(still including a nonzero rate, so the smoke job genuinely injects).
"""

import dataclasses
import json
import os

from conftest import emit

from repro.experiments.common import ExperimentConfig
from repro.experiments.ext_faults import run_fault_sweep

SMOKE = os.environ.get("SIMPROF_BENCH_SMOKE") == "1"
RATES = (0.0, 0.02, 0.05) if SMOKE else (0.0, 0.01, 0.02, 0.05)


def test_fault_sweep(benchmark, full_cfg):
    cfg = (
        dataclasses.replace(full_cfg, scale=0.1, n_sampling_draws=5)
        if SMOKE
        else full_cfg
    )
    result = benchmark.pedantic(
        run_fault_sweep,
        args=(cfg,),
        kwargs={"rates": RATES},
        rounds=1,
        iterations=1,
    )
    emit("Extension: fault injection", result.to_text())

    payload = {
        "benchmark": "fault-injection",
        "smoke": SMOKE,
        "rates": list(RATES),
        "rows": [dataclasses.asdict(r) for r in result.rows],
    }
    with open("BENCH_faults.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    # Recovery semantics: the workload's output is untouched by faults.
    assert result.all_results_match
    # Determinism: each plan replayed to the identical fault report.
    assert result.all_replays_identical
    # The sweep must actually inject at its top rate.
    assert result.rows[-1].n_faults > 0
    # Accuracy: the stratified estimate stays inside its own 99.7% CI.
    assert result.all_within_ci
