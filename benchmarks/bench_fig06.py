"""Figure 6: CoV of CPIs (population / weighted / max)."""

from conftest import emit

from repro.core.analysis import cov_report
from repro.experiments.common import get_model
from repro.experiments.fig06_cov import run_fig6


def test_fig06(benchmark, full_cfg):
    result = run_fig6(full_cfg)
    emit("Figure 6", result.to_text())
    # Paper property: phase formation separates performance levels.
    assert result.weighted_below_population()

    # Kernel: the CoV computation itself on the largest profile.
    job, model = get_model("cc", "spark", full_cfg)
    cpi = job.profile.cpi()
    benchmark(cov_report, cpi, model.assignments)
