"""Extension: JIT warm-up bias vs sampling approach."""

from conftest import emit

from repro.experiments.ext_warmup import run_warmup_experiment


def test_warmup(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_warmup_experiment, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: JIT warm-up", result.to_text())
    # Warm-up concentrates in the early execution, so it moves the
    # early-anchored SECOND estimate far more than the oracle moves —
    # while SimProf's run-spanning stratified sample tracks the oracle.
    assert result.second_shift() > 3 * result.oracle_shift()
    assert result.simprof_shift() < result.second_shift()
    # And SimProf stays accurate in both states.
    by_state = {r[0]: r for r in result.rows}
    assert float(by_state["on"][5]) < 5.0
    assert float(by_state["off"][5]) < 5.0
