"""Checkpoint/restore benchmark: latency, overhead, chaos smoke.

Three questions about the checkpoint layer, answered on the same
deterministic wc/spark stream:

* **Cost of a snapshot** — wall-clock to ``snapshot()`` + encode +
  store one mid-stream profiling session, and to restore it into a
  fresh session.
* **Overhead of the policy** — end-to-end streaming profile time at
  ``every`` = 1/10/100 versus checkpointing off.  Off must be the
  plain hot path: no snapshot work, no store traffic.
* **Does it survive chaos** — a seeded kill-and-restore campaign must
  reproduce the uninterrupted digest bit-exactly (the acceptance gate
  of the whole layer, asserted here so the CI smoke job exercises it
  end to end).

Writes the evidence to ``BENCH_checkpoint.json`` for the CI artifact.
``SIMPROF_BENCH_SMOKE=1`` shrinks the stream for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import time

from conftest import emit

from repro.core.pipeline import SimProf, SimProfConfig
from repro.core.profiler import ProfilerSession
from repro.faults.chaos import ChaosPlan, kill_and_restore
from repro.runtime.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    drive_session,
)
from repro.runtime.snapshot import decode_state, encode_state
from repro.runtime.store import ArtifactStore
from repro.workloads import run_workload_stream

SMOKE = os.environ.get("SIMPROF_BENCH_SMOKE") == "1"
SCALE = 0.08 if SMOKE else 0.6
REPEATS = 3 if SMOKE else 5

CONFIG = SimProfConfig(unit_size=10_000_000, snapshot_period=500_000, seed=0)

RESULTS: dict = {}


def _stream():
    return run_workload_stream("wc", "spark", scale=SCALE, seed=0)


def _session(stream):
    return ProfilerSession(CONFIG.profiler_config(), stream, collect=True)


def _timed_profile(checkpoint=None) -> tuple[float, str]:
    tool = SimProf(CONFIG)
    start = time.perf_counter()
    job = tool.profile_stream(_stream(), checkpoint=checkpoint)
    return time.perf_counter() - start, job.content_digest()


def test_snapshot_write_restore_latency(tmp_path):
    """Snapshot + encode + store, and restore, of a mid-stream session."""
    stream = _stream()
    session = _session(stream)
    for i, event in enumerate(stream):
        session.feed(event)
        if i >= 40:
            break
    store = ArtifactStore(tmp_path)
    manager = CheckpointManager(store, "bench-latency")

    writes = []
    for position in range(REPEATS):
        start = time.perf_counter()
        manager.save(position, {"position": position,
                                "session": session.snapshot()})
        writes.append(time.perf_counter() - start)

    blob = encode_state({"position": 0, "session": session.snapshot()})
    restores = []
    for _ in range(REPEATS):
        fresh = _session(_stream())
        start = time.perf_counter()
        fresh.restore(decode_state(blob)["session"])
        restores.append(time.perf_counter() - start)

    RESULTS["latency"] = {
        "snapshot_bytes": len(blob),
        "write_ms": [round(w * 1e3, 3) for w in writes],
        "restore_ms": [round(r * 1e3, 3) for r in restores],
    }
    assert min(writes) > 0 and min(restores) > 0
    emit(
        "Checkpoint write/restore latency",
        f"  snapshot payload: {len(blob) / 1024:,.1f} KiB\n"
        f"  write (snapshot+encode+store): "
        f"{min(writes) * 1e3:.2f} ms best of {REPEATS}\n"
        f"  restore (decode+restore):      "
        f"{min(restores) * 1e3:.2f} ms best of {REPEATS}",
    )


def test_policy_overhead(tmp_path):
    """End-to-end profile time at every=1/10/100 vs checkpointing off."""
    off_time, want = _timed_profile(checkpoint=None)

    rows = []
    for every in (1, 10, 100):
        store = ArtifactStore(tmp_path / f"every-{every}")
        manager = CheckpointManager(store, "bench-overhead")
        elapsed, digest = _timed_profile(
            CheckpointPolicy(manager, every=every, resume=False)
        )
        assert digest == want, "checkpointing changed the result"
        rows.append(
            {
                "every": every,
                "seconds": round(elapsed, 4),
                "overhead": round(elapsed / off_time, 3),
                "snapshots": len(manager.manifests()),
            }
        )

    RESULTS["overhead"] = {"off_seconds": round(off_time, 4), "rows": rows}
    # Coarser intervals cannot cost more snapshots than finer ones.
    assert rows[0]["snapshots"] >= rows[1]["snapshots"] >= rows[2]["snapshots"]
    emit(
        "Checkpoint policy overhead (vs off)",
        f"  off: {off_time:.3f}s (digest {want[:12]})\n"
        + "\n".join(
            f"  every={r['every']:>3}: {r['seconds']:.3f}s "
            f"({r['overhead']:.2f}x, {r['snapshots']} snapshots)"
            for r in rows
        ),
    )


def test_chaos_smoke_and_artifact(tmp_path):
    """Kill-and-restore must be byte-identical; writes the artifact."""
    start = time.perf_counter()
    outcome = kill_and_restore(
        _stream,
        _session,
        ArtifactStore(tmp_path),
        "bench-chaos",
        ChaosPlan(seed=0, kills=2, checkpoint_every=1),
    )
    elapsed = time.perf_counter() - start
    assert outcome.byte_identical, "resumed result diverged from reference"

    RESULTS["chaos"] = {
        "seconds": round(elapsed, 3),
        "n_events": outcome.n_events,
        "kills": [
            {"position": a.kill_position, "resumed_from": a.resumed_from}
            for a in outcome.attempts
        ],
        "final_resumed_from": outcome.final_resumed_from,
        "byte_identical": outcome.byte_identical,
    }

    payload = {
        "benchmark": "checkpoint",
        "smoke": SMOKE,
        "scale": SCALE,
        "unit_size": CONFIG.unit_size,
        "snapshot_period": CONFIG.snapshot_period,
        **RESULTS,
    }
    with open("BENCH_checkpoint.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    emit(
        "Kill-and-restore chaos",
        f"  {outcome.n_events} events, kills at "
        f"{[a.kill_position for a in outcome.attempts]}, final resume from "
        f"{outcome.final_resumed_from}: byte-identical "
        f"(wrote BENCH_checkpoint.json)",
    )
