"""Incremental-analysis benchmark: cold vs warm ``simprof check``.

The two-pass engine content-addresses every per-module analysis (and
every project-rule result) in the ArtifactStore, so re-checking an
unchanged tree should cost cache reads, not re-analysis.  This bench
measures that claim on the repo's own ``src/`` tree:

* **cold** — empty store: parse every file, run every rule, build and
  persist every index;
* **warm** — fresh store instance on the same root (empty memory
  tier): every module payload and every project-rule result must come
  off disk.

The acceptance gate is a >= 3x cold/warm speedup; anything less means
the cache is being bypassed.  A third timing covers ``--changed``
semantics: one touched file re-analyzes only its reverse-dependency
closure.  Writes ``BENCH_check.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.analysis import run_check
from repro.runtime.store import ArtifactStore

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGET = REPO_ROOT / "src"
REPEATS = 3

RESULTS: dict = {}


def _timed_check(store, **kwargs):
    start = time.perf_counter()
    result = run_check([TARGET], store=store, **kwargs)
    return time.perf_counter() - start, result


def test_cold_vs_warm_speedup(tmp_path):
    """Warm re-analysis must be at least 3x faster than a cold run."""
    root = tmp_path / "cache"
    cold_time, cold = _timed_check(ArtifactStore(root))
    assert cold.n_cached == 0
    assert cold.parse_errors == []

    warm_times = []
    for _ in range(REPEATS):
        # A fresh instance per run: the memory tier starts empty, so
        # every hit below is a disk read, like a new CI process.
        elapsed, warm = _timed_check(ArtifactStore(root))
        warm_times.append(elapsed)
    warm_time = min(warm_times)

    assert warm.n_cached == warm.n_files, "a module missed the cache"
    assert warm.n_project_cached == 5, "a project rule re-ran warm"
    assert [f.fingerprint() for f in warm.findings] == [
        f.fingerprint() for f in cold.findings
    ], "warm findings diverged from cold"

    speedup = cold_time / warm_time
    RESULTS["cold_vs_warm"] = {
        "files": cold.n_files,
        "cold_seconds": round(cold_time, 4),
        "warm_seconds": round(warm_time, 4),
        "warm_seconds_all": [round(t, 4) for t in warm_times],
        "speedup": round(speedup, 2),
    }
    emit(
        "simprof check: cold vs warm",
        f"  {cold.n_files} files: cold {cold_time:.3f}s, "
        f"warm {warm_time:.3f}s (best of {REPEATS}) -> {speedup:.1f}x",
    )
    assert speedup >= 3.0, (
        f"warm check only {speedup:.1f}x faster than cold (< 3x): "
        "the analysis cache is not doing its job"
    )


def test_changed_closure_and_artifact(tmp_path):
    """--changed re-analysis scales with the edit, not the tree."""
    root = tmp_path / "cache"
    store = ArtifactStore(root)
    run_check([TARGET], store=store)

    # Touching nothing: everything is skipped, almost nothing is read.
    skip_time, skipped = _timed_check(
        ArtifactStore(root), changed_only=True
    )
    assert len(skipped.skipped) == skipped.n_files
    assert skipped.findings == []

    RESULTS["changed"] = {
        "files": skipped.n_files,
        "all_unchanged_seconds": round(skip_time, 4),
        "skipped": len(skipped.skipped),
    }

    payload = {
        "benchmark": "check",
        "target": str(TARGET.relative_to(REPO_ROOT)),
        **RESULTS,
    }
    with open("BENCH_check.json", "w") as fh:
        json.dump(payload, fh, indent=2)

    emit(
        "simprof check --changed (unchanged tree)",
        f"  {skipped.n_files} files skipped in {skip_time:.3f}s "
        "(wrote BENCH_check.json)",
    )
