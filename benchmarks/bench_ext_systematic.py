"""Extension: SimProf × systematic sampling (the paper's future work)."""

from conftest import emit

from repro.experiments.ext_systematic import run_systematic_sweep


def test_systematic_sweep(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_systematic_sweep, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: systematic sampling", result.to_text())
    # Sub-sampling each point must add only a small error on top of the
    # selection error, while cutting the detailed budget by orders of
    # magnitude.
    for period, _detail, speedup, sel, comb, added in result.rows:
        assert float(speedup.rstrip("x")) >= 3
        assert float(added) < 5.0, (period, added)
    # Sparser periods cost fewer detailed instructions.
    speedups = [float(r[2].rstrip("x")) for r in result.rows]
    assert speedups == sorted(speedups)
