"""Ablations of SimProf's design choices (see DESIGN.md)."""

import numpy as np
from conftest import emit

from repro.experiments.ablations import (
    proportional_allocation,
    run_allocation_ablation,
    run_profiler_ablation,
    run_projection_ablation,
    run_top_k_ablation,
)


def test_allocation_ablation(benchmark, full_cfg):
    result = run_allocation_ablation(full_cfg)
    emit("Ablation: allocation", result.to_text())
    # Neyman allocation never loses to proportional on expected SE.
    for label, neyman, proportional, _srs in result.rows:
        assert float(neyman) <= float(proportional) + 1e-9, label

    benchmark(proportional_allocation, np.array([500.0, 300.0, 200.0]), 20)


def test_top_k_ablation(benchmark, full_cfg):
    result = run_top_k_ablation(full_cfg)
    emit("Ablation: top-K", result.to_text())
    # The feature budget caps the kept features.
    for k, kept, _phases, _cov in result.rows:
        assert kept <= k

    benchmark.pedantic(
        run_top_k_ablation, args=(full_cfg,), kwargs={"top_ks": (5,)},
        rounds=1, iterations=1,
    )


def test_projection_ablation(benchmark, full_cfg):
    result = run_projection_ablation(full_cfg)
    emit("Ablation: random projection", result.to_text())
    # Projection must keep the phase structure usable: the weighted CoV
    # stays within 2x of the unprojected run at 15 dims.
    by_name = {r[0]: r for r in result.rows}
    assert float(by_name["project->15"][3]) <= 2 * float(by_name["none"][3]) + 0.05

    benchmark.pedantic(
        run_projection_ablation, args=(full_cfg,), kwargs={"dims": (5,)},
        rounds=1, iterations=1,
    )


def test_profiler_ablation(benchmark, full_cfg):
    result = run_profiler_ablation(full_cfg)
    emit("Ablation: profiler settings", result.to_text())
    by_setting = {r[0]: r for r in result.rows}
    # Bigger units => fewer of them.
    assert by_setting["unit=50M"][1] > by_setting["unit=200M"][1]
    # Every variant still finds phase structure.
    assert all(r[2] >= 1 for r in result.rows)

    # Kernel: re-rendering from the (now cached) variants.
    benchmark.pedantic(
        run_profiler_ablation, args=(full_cfg,), rounds=1, iterations=1
    )
