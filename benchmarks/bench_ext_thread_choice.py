"""Extension: the single-profiled-thread assumption, validated."""

from conftest import emit

from repro.experiments.ext_thread_choice import run_thread_choice


def test_thread_choice(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_thread_choice, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: profiled-thread choice", result.to_text())
    # The paper's assumption: executor threads run the same code, so any
    # thread's profile represents the job.
    assert len(result.rows) >= 4
    assert result.oracle_spread() < 0.10
    assert result.max_error() < 0.06
