"""Phase-formation fast-path benchmark: fast vs pre-fast-path reference.

Sweeps the unit count n from 10² to 10⁵ (10⁴ in ``--quick`` mode) over
a deterministic synthetic profile with planted phase structure, and for
every n times the three phase-formation stages twice — once through the
optimised fast path and once through the
:mod:`repro.core._reference` implementations it replaced:

* ``featurize`` — matrix assembly (one batched scatter-add vs the
  per-unit/per-stack Python loop);
* ``select``    — feature selection (shared, unchanged code: timed once
  and charged to both sides);
* ``sweep``     — the silhouette k-sweep (one shared
  ``SilhouetteDistances`` build + sweep-result reuse vs per-k distance
  rebuilds + a refit of the winning k).

Every scale asserts the fast path's output is *bit-identical* to the
reference: same feature-matrix bytes, same chosen k, same assignment
and centre bytes (silhouette scores are ``allclose`` — their summation
order changed).  The smallest scale additionally checks the parallel
sweep (``jobs=2``) is byte-identical to the serial one.

Writes ``BENCH_phase.json`` with wall-clock seconds and peak traced
memory (tracemalloc, KiB) per stage plus the process peak RSS.  Run as
a script, not under pytest::

    PYTHONPATH=src python benchmarks/bench_phase_perf.py --quick

``--check-baseline`` compares the fast end-to-end wall-clock at
n = 10⁴ against ``benchmarks/baselines/phase_perf_baseline.json`` and
exits non-zero on a > 2x regression (the CI ``phase-perf-smoke`` gate).

``--scale`` additionally benchmarks the stages that scale to a
10⁶-unit job — featurize (fast vs reference, bit-parity asserted) and
select — at n = 10⁶.  The silhouette sweep is deliberately excluded
there: even the subsampled estimator holds a ``max_points x n``
distance matrix, which at n = 10⁶ is ~24 GB.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core._reference import (
    reference_build_feature_matrix,
    reference_choose_k,
)
from repro.core.clustering import select_phases
from repro.core.features import build_feature_matrix, select_features
from repro.core.units import JobProfile, SamplingUnit, ThreadProfile
from repro.jvm.machine import MachineConfig
from repro.jvm.methods import CallStack, MethodRegistry, StackTable

SEED = 0
TOP_K = 100
K_MAX = 20
QUICK_NS = (100, 1_000, 10_000)
FULL_NS = (100, 1_000, 10_000, 100_000)
SCALE_N = 1_000_000
BASELINE_N = 10_000
BASELINE_PATH = Path(__file__).parent / "baselines" / "phase_perf_baseline.json"
REGRESSION_FACTOR = 2.0

UNIT_SIZE = 1_000_000
SNAPSHOTS_PER_UNIT = 50
N_GROUPS = 5
OPS_PER_GROUP = 8
STACKS_PER_GROUP = 10
STACKS_PER_UNIT = 6


def make_job(n_units: int, *, seed: int = SEED) -> JobProfile:
    """Synthetic profile with ``N_GROUPS`` planted phases.

    Deterministic under ``seed``: each unit draws its stacks from its
    group's stack pool and its CPI from a group-specific band, so the
    group methods correlate with IPC and survive feature selection.
    """
    rng = np.random.default_rng(seed)
    registry = MethodRegistry()
    table = StackTable(registry)
    root = registry.intern("bench.Executor", "run")
    task = registry.intern("bench.Task", "invoke")
    shared_ops = [registry.intern("bench.Shared", f"util{i}") for i in range(4)]
    group_stacks: list[list[int]] = []
    for g in range(N_GROUPS):
        ops = [
            registry.intern(f"bench.Group{g}", f"op{i}")
            for i in range(OPS_PER_GROUP)
        ]
        sids = []
        for s in range(STACKS_PER_GROUP):
            frames = [root, task, shared_ops[s % len(shared_ops)]]
            for d in range(2 + s % 4):
                frames.append(ops[(s + d) % OPS_PER_GROUP])
            sids.append(table.intern(CallStack(tuple(frames))))
        group_stacks.append(sids)

    units: list[SamplingUnit] = []
    for i in range(n_units):
        g = int(rng.integers(0, N_GROUPS))
        pool = group_stacks[g]
        picked = rng.choice(len(pool), size=STACKS_PER_UNIT, replace=False)
        sids = np.sort(np.array([pool[c] for c in picked], dtype=np.int64))
        counts = rng.multinomial(
            SNAPSHOTS_PER_UNIT, np.full(len(sids), 1.0 / len(sids))
        ).astype(np.float64)
        cpi = max(0.05, 0.5 + 0.3 * g + float(rng.normal(0.0, 0.02)))
        units.append(
            SamplingUnit(
                index=i,
                stack_ids=sids,
                stack_counts=counts,
                instructions=float(UNIT_SIZE),
                cycles=float(UNIT_SIZE) * cpi,
                l1d_misses=UNIT_SIZE / 100,
                llc_misses=UNIT_SIZE / 1000,
            )
        )
    profile = ThreadProfile(
        thread_id=0,
        unit_size=UNIT_SIZE,
        snapshot_period=UNIT_SIZE // SNAPSHOTS_PER_UNIT,
        units=units,
    )
    return JobProfile(
        workload="phasebench",
        framework="spark",
        input_name=f"n{n_units}",
        profile=profile,
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
    )


def timed(fn):
    """(result, wall-clock seconds, tracemalloc peak KiB) of ``fn()``."""
    tracemalloc.start()
    start = time.perf_counter()
    out = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return out, elapsed, peak / 1024.0


def run_scale(n: int, *, check_parallel: bool = False) -> dict:
    """Benchmark one unit count; returns the JSON row (parity asserted)."""
    job = make_job(n)

    Xf, t_fast_feat, m_fast_feat = timed(lambda: build_feature_matrix(job))
    Xr, t_ref_feat, m_ref_feat = timed(
        lambda: reference_build_feature_matrix(job)
    )
    featmat_bitwise = Xf.dtype == Xr.dtype and np.array_equal(Xf, Xr)
    assert featmat_bitwise, f"feature matrices diverge at n={n}"

    ipc = job.profile.ipc()
    (ids, _scores), t_select, m_select = timed(
        lambda: select_features(Xf, ipc, top_k=TOP_K)
    )
    X_sel = np.ascontiguousarray(Xf[:, ids])

    fast, t_fast_sweep, m_fast_sweep = timed(
        lambda: select_phases(X_sel, k_max=K_MAX, seed=SEED, jobs=1)
    )
    ref, t_ref_sweep, m_ref_sweep = timed(
        lambda: reference_choose_k(X_sel, k_max=K_MAX, seed=SEED)
    )
    k_fast, scores_fast, result_fast = fast
    k_ref, scores_ref, result_ref = ref

    assert k_fast == k_ref, f"phase count diverges at n={n}: {k_fast} != {k_ref}"
    assert sorted(scores_fast) == sorted(scores_ref)
    assert all(
        np.isclose(scores_fast[k], scores_ref[k], rtol=1e-9, atol=1e-12)
        for k in sorted(scores_fast)
    ), f"silhouette scores diverge at n={n}"
    if result_fast is None or result_ref is None:
        assignments_bitwise = centers_bitwise = (
            result_fast is None and result_ref is None
        )
    else:
        assignments_bitwise = np.array_equal(
            result_fast.assignments, result_ref.assignments
        )
        centers_bitwise = np.array_equal(
            result_fast.centers, result_ref.centers
        )
    assert assignments_bitwise, f"assignments diverge at n={n}"
    assert centers_bitwise, f"centres diverge at n={n}"

    parallel_bitwise = None
    if check_parallel:
        par = select_phases(X_sel, k_max=K_MAX, seed=SEED, jobs=2)
        k_par, scores_par, result_par = par
        parallel_bitwise = (
            k_par == k_fast
            and list(scores_par.items()) == list(scores_fast.items())
            and (
                result_par is None
                if result_fast is None
                else result_par is not None
                and np.array_equal(result_par.assignments, result_fast.assignments)
                and np.array_equal(result_par.centers, result_fast.centers)
            )
        )
        assert parallel_bitwise, f"parallel sweep diverges at n={n}"

    fast_total = t_fast_feat + t_select + t_fast_sweep
    ref_total = t_ref_feat + t_select + t_ref_sweep
    return {
        "n": n,
        "d_selected": int(len(ids)),
        "k": k_fast,
        "stages": {
            "featurize": {
                "fast_s": round(t_fast_feat, 4),
                "ref_s": round(t_ref_feat, 4),
                "fast_peak_kib": round(m_fast_feat, 1),
                "ref_peak_kib": round(m_ref_feat, 1),
            },
            "select": {
                "shared_s": round(t_select, 4),
                "peak_kib": round(m_select, 1),
            },
            "sweep": {
                "fast_s": round(t_fast_sweep, 4),
                "ref_s": round(t_ref_sweep, 4),
                "fast_peak_kib": round(m_fast_sweep, 1),
                "ref_peak_kib": round(m_ref_sweep, 1),
            },
        },
        "fast_total_s": round(fast_total, 4),
        "ref_total_s": round(ref_total, 4),
        "speedup": round(ref_total / fast_total, 2) if fast_total > 0 else None,
        "parity": {
            "featmat_bitwise": featmat_bitwise,
            "k_equal": k_fast == k_ref,
            "assignments_bitwise": assignments_bitwise,
            "centers_bitwise": centers_bitwise,
            "scores_allclose": True,
            "parallel_sweep_bitwise": parallel_bitwise,
        },
    }


def run_featurize_scale(n: int = SCALE_N) -> dict:
    """Featurize + select at the 10⁶-unit scale (sweep excluded).

    The columnar trace plane feeds this stage, so it is the one held to
    the full job length; parity with the reference featurizer stays
    bit-exact even here.
    """
    job = make_job(n)
    Xf, t_fast, m_fast = timed(lambda: build_feature_matrix(job))
    Xr, t_ref, m_ref = timed(lambda: reference_build_feature_matrix(job))
    assert Xf.dtype == Xr.dtype and np.array_equal(
        Xf, Xr
    ), f"feature matrices diverge at n={n}"
    del Xr
    ipc = job.profile.ipc()
    (ids, _scores), t_select, m_select = timed(
        lambda: select_features(Xf, ipc, top_k=TOP_K)
    )
    return {
        "n": n,
        "d_selected": int(len(ids)),
        "featurize": {
            "fast_s": round(t_fast, 4),
            "ref_s": round(t_ref, 4),
            "fast_peak_kib": round(m_fast, 1),
            "ref_peak_kib": round(m_ref, 1),
            "speedup": round(t_ref / t_fast, 2) if t_fast > 0 else None,
        },
        "select": {"shared_s": round(t_select, 4), "peak_kib": round(m_select, 1)},
        "sweep": None,  # max_points x n distances: infeasible at this n
        "parity": {"featmat_bitwise": True},
    }


def check_baseline(rows: list[dict]) -> int:
    """Exit status of the >2x regression gate at n = BASELINE_N."""
    row = next((r for r in rows if r["n"] == BASELINE_N), None)
    if row is None:
        print(f"baseline check skipped: n={BASELINE_N} not in sweep")
        return 0
    if not BASELINE_PATH.exists():
        print(f"baseline check skipped: {BASELINE_PATH} missing")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    allowed = baseline["fast_total_s"] * REGRESSION_FACTOR
    actual = row["fast_total_s"]
    if actual > allowed:
        print(
            f"REGRESSION: fast phase formation at n={BASELINE_N} took "
            f"{actual:.2f}s > {REGRESSION_FACTOR:.0f}x baseline "
            f"({baseline['fast_total_s']:.2f}s)"
        )
        return 1
    print(
        f"baseline ok: {actual:.2f}s <= {REGRESSION_FACTOR:.0f}x "
        f"{baseline['fast_total_s']:.2f}s at n={BASELINE_N}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="stop the sweep at n=10^4"
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=f"fail on >{REGRESSION_FACTOR:.0f}x regression at n={BASELINE_N}",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help=f"also benchmark featurize + select at n={SCALE_N} (no sweep)",
    )
    parser.add_argument("--out", default="BENCH_phase.json")
    args = parser.parse_args(argv)

    ns = QUICK_NS if args.quick else FULL_NS
    rows = []
    for i, n in enumerate(ns):
        row = run_scale(n, check_parallel=i == 0)
        rows.append(row)
        print(
            f"n={n:>6}: fast {row['fast_total_s']:>8.3f}s | "
            f"ref {row['ref_total_s']:>8.3f}s | "
            f"speedup {row['speedup']:>5.1f}x | k={row['k']} "
            f"(d={row['d_selected']})"
        )

    scale_row = None
    if args.scale:
        scale_row = run_featurize_scale()
        feat = scale_row["featurize"]
        print(
            f"n={scale_row['n']:>7} (featurize only): "
            f"fast {feat['fast_s']:>8.3f}s | ref {feat['ref_s']:>8.3f}s | "
            f"speedup {feat['speedup']:>5.1f}x (d={scale_row['d_selected']})"
        )

    payload = {
        "benchmark": "phase-formation-fast-path",
        "quick": args.quick,
        "scale": scale_row,
        "seed": SEED,
        "k_max": K_MAX,
        "top_k": TOP_K,
        "generator": {
            "groups": N_GROUPS,
            "stacks_per_unit": STACKS_PER_UNIT,
            "snapshots_per_unit": SNAPSHOTS_PER_UNIT,
        },
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "sweep": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    if args.check_baseline:
        return check_baseline(rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
