"""Extension: the CODE over-fitting problem (paper, Related Work)."""

from conftest import emit

from repro.experiments.ext_code_overfit import run_code_overfit


def test_code_overfit(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_code_overfit, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: CODE over-fitting", result.to_text())
    assert len(result.rows) >= 2
    # More clusters never buy CODE SimProf-level accuracy on the
    # non-homogeneous wc_hp (its quicksort phase varies *within* code).
    for _k, code_err, simprof_err in result.rows:
        assert float(simprof_err) < float(code_err)
