"""Table I: evaluated benchmarks (registry regeneration)."""

from conftest import emit

from repro.experiments.table1 import run_table1


def test_table1(benchmark):
    result = benchmark(run_table1)
    emit("Table I", result.to_text())
    assert len(result.rows) == 6
