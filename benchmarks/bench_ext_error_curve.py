"""Extension: expected error vs sample size."""

from conftest import emit

from repro.experiments.ext_error_curve import run_error_curve


def test_error_curve(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_error_curve, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: error vs sample size", result.to_text())
    simprof = [float(r[2]) for r in result.rows]
    srs = [float(r[1]) for r in result.rows]
    bounds = [float(r[3]) for r in result.rows]
    # More points => tighter analytic bound, monotonically.
    assert bounds == sorted(bounds, reverse=True)
    # SimProf dominates SRS at (almost) every size; allow one tie-ish
    # size since both are expectations over finite draws.
    wins = sum(1 for a, b in zip(simprof, srs) if a <= b + 0.05)
    assert wins >= len(simprof) - 1
    # Measured errors respect the 99.7% bound.
    violations = sum(1 for e, b in zip(simprof, bounds) if e > b)
    assert violations == 0
