"""Benchmark-harness fixtures.

Each ``bench_*`` module regenerates one paper table/figure at full
scale, prints the rows/series the paper reports (run with ``-s`` to see
them; the printed output is the reproduction artifact), and times a
representative computational kernel with pytest-benchmark.

Workload profiles flow through the :mod:`repro.runtime` engine: the
first benchmark session pays the simulation cost once and every later
session (or later figure in the same session) reuses the cached
artifacts.  Set ``SIMPROF_JOBS`` to fan the cache misses out over a
process pool.  The session summary prints the store's hit/miss
counters so cross-figure reuse is visible.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig
from repro.runtime.store import default_store


@pytest.fixture(scope="session")
def full_cfg() -> ExperimentConfig:
    """Full-scale configuration (the paper's setup)."""
    return ExperimentConfig()


@pytest.fixture(scope="session", autouse=True)
def cache_session_report():
    """Print artifact-store traffic for the session (visible under -s)."""
    store = default_store()
    yield
    stats = store.stats
    manifest_hits = sum(m.hits for m in store.entries())
    emit(
        "Artifact store",
        f"session: {stats.memory_hits} memory hits, {stats.disk_hits} disk "
        f"hits, {stats.misses} misses, {stats.puts} writes\n"
        f"lifetime manifest hits: {manifest_hits} ({store.root})",
    )


def emit(title: str, text: str) -> None:
    """Print a figure table with a separator (shown under ``-s``)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
