"""Benchmark-harness fixtures.

Each ``bench_*`` module regenerates one paper table/figure at full
scale, prints the rows/series the paper reports (run with ``-s`` to see
them; the printed output is the reproduction artifact), and times a
representative computational kernel with pytest-benchmark.

Workload profiles are produced through the experiment cache, so the
first benchmark session pays the simulation cost once and subsequent
sessions reuse the cached profiles.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session")
def full_cfg() -> ExperimentConfig:
    """Full-scale configuration (the paper's setup)."""
    return ExperimentConfig()


def emit(title: str, text: str) -> None:
    """Print a figure table with a separator (shown under ``-s``)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
