"""Extension: multi-metric validation of the simulation points."""

from conftest import emit

from repro.experiments.ext_multimetric import run_multimetric


def test_multimetric(benchmark, full_cfg):
    result = benchmark.pedantic(
        run_multimetric, args=(full_cfg,), rounds=1, iterations=1
    )
    emit("Extension: multi-metric validation", result.to_text())
    # The CPI-selected points must transfer: LLC-MPKI estimates stay
    # within ~15% on average even though MPKI never drove the sampling.
    assert result.average_mpki_error() < 0.15
