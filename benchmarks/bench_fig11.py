"""Figure 11: optimal allocation over the phases of cc_sp."""

import numpy as np
from conftest import emit

from repro.core.sampling import optimal_allocation
from repro.experiments.common import get_model
from repro.experiments.fig11_allocation import run_fig11


def test_fig11(benchmark, full_cfg):
    result = run_fig11(full_cfg)
    emit("Figure 11", result.to_text())
    rows = result.rows
    # Paper shape: the aggregateUsingIndex phase takes a sample share
    # larger than its weight (high variance), while the low-variance
    # mapPartitionsWithIndex phase takes far less than its weight.
    agg = next(r for r in rows if "aggregateUsingIndex" in r.top_method)
    load = next(r for r in rows if "mapPartitionsWithIndex" in r.top_method)
    assert agg.sample_ratio > agg.weight
    assert load.sample_ratio < load.weight
    assert agg.cpi_cov > load.cpi_cov

    job, model = get_model("cc", "spark", full_cfg)
    stats = model.phase_stats(job.profile.cpi())
    sizes = np.array([s.n_units for s in stats])
    stds = np.array([s.cpi_std for s in stats])
    benchmark(optimal_allocation, sizes, stds, 20)
