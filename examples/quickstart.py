#!/usr/bin/env python
"""Quickstart: select simulation points for one workload.

Runs WordCount on the simulated Spark cluster, profiles the busiest
executor thread, forms phases from the call-stack snapshots, and picks
20 simulation points by stratified random sampling — the full SimProf
pipeline (Figure 2 of the paper) in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import SimProf, SimProfConfig
from repro.workloads import run_workload


def main() -> None:
    print("Running WordCount on the Spark simulator ...")
    trace = run_workload("wc", "spark", scale=0.25, seed=0)
    print(
        f"  {trace.n_threads} executor threads, "
        f"{trace.total_instructions / 1e9:.1f} G instructions total"
    )

    # Smaller sampling units than the paper's 100 M keep the quarter-
    # scale run statistically interesting; ratios are preserved.
    simprof = SimProf(SimProfConfig(unit_size=25_000_000,
                                    snapshot_period=1_000_000))
    result = simprof.analyze(trace, n_points=20)

    job = result.job
    print(f"\nProfiled thread: {job.n_units} sampling units "
          f"({job.profile.unit_size / 1e6:.0f} M instructions each)")
    print(f"Phases found: {result.n_phases}")
    for stats in result.phase_stats:
        methods = result.model.top_methods(stats.phase_id, 2)
        names = ", ".join(m.rsplit(".", 2)[-2] + "." + m.rsplit(".", 1)[-1]
                          for m, _ in methods)
        print(
            f"  phase {stats.phase_id}: weight {stats.weight:5.1%}  "
            f"CPI {stats.cpi_mean:5.2f} (CoV {stats.cpi_cov:.3f})  [{names}]"
        )

    print(f"\nSimulation points (unit ids): "
          f"{[int(p) for p in result.simulation_points]}")
    print(f"Per-phase allocation:          "
          f"{[int(a) for a in result.points.allocation]}")

    oracle = result.oracle_cpi()
    lo, hi = result.points.confidence_interval(0.997)
    print(f"\nOracle CPI (all units):        {oracle:.4f}")
    print(f"Stratified estimate:           {result.points.estimate:.4f}")
    print(f"Sampling error:                {result.sampling_error():.2%}")
    print(f"99.7% confidence interval:     [{lo:.4f}, {hi:.4f}]")


if __name__ == "__main__":
    main()
