#!/usr/bin/env python
"""Scenario: planning a simulation campaign under a time budget.

An architect wants to simulate WordCount-on-Hadoop on a detailed
micro-architectural simulator that runs ~200 KIPS.  Simulating the whole
job is out of the question; this script walks the paper's Section III-C
procedure instead:

1. profile once on the (simulated) real machine — fast;
2. ask SimProf how many 100 M-instruction simulation points a 5 % and a
   2 % CPI error bound require (Figure 8's numbers);
3. compare the simulation time of those points against simulating a
   single 10-second interval (SECOND) and against the full job.

Run:  python examples/simulation_budget_planning.py
"""

from repro import SimProf, SimProfConfig
from repro.core.baselines import SecondSampler
from repro.workloads import run_workload

SIMULATOR_IPS = 200_000  # detailed simulator speed, instructions/second


def sim_hours(n_units: int, unit_size: int) -> float:
    """Wall-clock hours to simulate ``n_units`` sampling units."""
    return n_units * unit_size / SIMULATOR_IPS / 3600


def main() -> None:
    print("Profiling WordCount on the Hadoop simulator ...")
    trace = run_workload("wc", "hadoop", scale=0.5, seed=0)
    simprof = SimProf(SimProfConfig(unit_size=50_000_000,
                                    snapshot_period=2_000_000))
    job = simprof.profile(trace)
    model = simprof.form_phases(job)
    unit = job.profile.unit_size
    print(f"  {job.n_units} sampling units, {model.k} phases")

    full = job.n_units
    second = SecondSampler(seconds=10.0).sample(job).sample_size
    n5 = simprof.sample_size_for(job, model, relative_error=0.05)
    n2 = simprof.sample_size_for(job, model, relative_error=0.02)

    print("\nSimulation-campaign options (99.7% confidence):")
    print(f"  {'approach':30s} {'units':>6s} {'sim time':>10s}")
    for name, n in [
        ("full job (oracle)", full),
        ("SECOND: one 10 s interval", second),
        ("SimProf @ 5% CPI error", n5),
        ("SimProf @ 2% CPI error", n2),
    ]:
        print(f"  {name:30s} {n:6d} {sim_hours(n, unit):9.1f} h")

    # Sanity-check the 5% promise against the oracle with actual draws.
    import numpy as np

    errors = []
    for i in range(20):
        est = simprof.select_points(job, model, n5,
                                    # simprof: ignore[SPA003] -- demo script pins its seed for stable output
                                    rng=np.random.default_rng(i))
        errors.append(abs(est.estimate - job.oracle_cpi()) / job.oracle_cpi())
    print(f"\nEmpirical error at the 5% design point "
          f"(20 draws): mean {np.mean(errors):.2%}, max {np.max(errors):.2%}")


if __name__ == "__main__":
    main()
