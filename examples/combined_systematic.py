#!/usr/bin/env python
"""Scenario: stretch the simulation budget with systematic sub-sampling.

The paper's future-work idea, runnable: SimProf picks *which*
100 M-instruction units to simulate; SMARTS-style systematic sampling
decides *how much of each unit* to simulate in detail (short chunks +
functional warming).  This script shows the two-level budget math on
WordCount/Spark — and what happens if you skip the functional warming.

Run:  python examples/combined_systematic.py
"""

import numpy as np

from repro import SimProf, SimProfConfig
from repro.core.systematic import SystematicConfig, SystematicSimProf
from repro.jvm.perf import PerfCounterReader
from repro.workloads import run_workload


def main() -> None:
    print("Running WordCount on the Spark simulator ...")
    trace = run_workload("wc", "spark", scale=0.5, seed=0)
    simprof = SimProf(SimProfConfig(unit_size=50_000_000,
                                    snapshot_period=2_000_000))
    job = simprof.profile(trace)
    model = simprof.form_phases(job)
    points = simprof.select_points(job, model, 20)
    reader = PerfCounterReader(trace.thread(job.profile.thread_id))
    unit = job.profile.unit_size
    print(f"  {job.n_units} units, {model.k} phases, "
          f"{points.sample_size} simulation points selected")

    print("\nPer-point budget vs accuracy (period sweep):")
    header = (f"  {'period':>8s} {'detail/unit':>12s} {'speedup':>8s} "
              f"{'combined err':>13s} {'added err':>10s}")
    print(header)
    for period in (200_000, 1_000_000, 5_000_000):
        cfg = SystematicConfig(detailed_size=10_000, period=period)
        result = SystematicSimProf(cfg).evaluate(
            job, model, reader, points,
            # simprof: ignore[SPA003] -- demo script pins its seed for stable output
            rng=np.random.default_rng(0),
        )
        print(
            f"  {period / 1e6:7.2f}M {cfg.detailed_instructions(unit) / 1e6:11.2f}M "
            f"{result.speedup:7.0f}x {result.error:12.2%} "
            f"{result.added_error:9.2%}"
        )

    print("\nThe same sweep WITHOUT functional warming "
          "(the SMARTS cold-start trap):")
    for period in (1_000_000,):
        cfg = SystematicConfig(detailed_size=10_000, period=period,
                               warmup_size=0)
        result = SystematicSimProf(cfg).evaluate(
            job, model, reader, points,
            # simprof: ignore[SPA003] -- demo script pins its seed for stable output
            rng=np.random.default_rng(0),
        )
        print(
            f"  {period / 1e6:7.2f}M: combined err {result.error:.2%} "
            f"(cold-start bias {cfg.cold_bias:.1%})"
        )


if __name__ == "__main__":
    main()
