#!/usr/bin/env python
"""Scenario: bring your own workload.

SimProf is framework-agnostic: anything that produces executor traces
through the simulated JVM interfaces can be profiled.  This script
builds a new analytic job directly on the Spark simulator API — an
inverted-index build (document -> posting lists) followed by a hot-term
report — and runs the SimProf pipeline on it, no registry entry needed.

Run:  python examples/custom_workload.py
"""

from repro import SimProf, SimProfConfig
from repro.datagen.text import TextSpec, synthesize_text
from repro.spark import SparkConfig, SparkContext


def build_job(seed: int = 0) -> SparkContext:
    ctx = SparkContext(SparkConfig(seed=seed))
    lines = synthesize_text(
        TextSpec(n_lines=12_000, vocab_size=40_000, zipf_s=1.1), seed
    )
    ctx.fs.write("/in/docs", lines, block_records=1500)

    docs = ctx.text_file("/in/docs")
    postings = (
        docs.map_partitions(
            lambda batch: [
                (word, i) for i, line in enumerate(batch)
                for word in set(line.split())
            ],
            "example.InvertedIndex$Tokenize.apply",
            inst_per_record=350_000.0,
        )
        .group_by_key()
        .map_values(sorted, "example.InvertedIndex$SortPostings.apply",
                    inst_per_record=120_000.0)
    )
    postings.save_as_text_file("/out/index")

    # Second job over the same input: hot terms by document frequency.
    hot = (
        docs.flat_map(lambda line: set(line.split()),
                      "example.HotTerms$Tokenize.apply",
                      inst_per_record=300_000.0)
        .map(lambda w: (w, 1), "example.HotTerms$One.apply",
             inst_per_record=80_000.0)
        .reduce_by_key(lambda a, b: a + b)
        .filter(lambda kv: kv[1] >= 50,
                "example.HotTerms$Threshold.apply",
                inst_per_record=40_000.0)
    )
    n_hot = hot.count()
    print(f"  inverted index built; {n_hot} hot terms (df >= 50)")
    return ctx


def main() -> None:
    print("Running the custom inverted-index job ...")
    ctx = build_job()
    trace = ctx.job_trace("inverted_index")
    print(
        f"  {len(trace.stages)} stages, "
        f"{trace.total_instructions / 1e9:.1f} G instructions"
    )

    simprof = SimProf(SimProfConfig(unit_size=25_000_000,
                                    snapshot_period=1_000_000))
    result = simprof.analyze(trace, n_points=16)
    print(f"\nPhases found: {result.n_phases}")
    for stats in result.phase_stats:
        methods = result.model.top_methods(stats.phase_id, 2)
        names = ", ".join(m.split(".")[-2] + "." + m.split(".")[-1]
                          for m, _ in methods)
        print(
            f"  phase {stats.phase_id}: weight {stats.weight:5.1%} "
            f"CPI {stats.cpi_mean:4.2f} (CoV {stats.cpi_cov:.3f})  [{names}]"
        )
    print(
        f"\n{result.points.sample_size} simulation points, "
        f"estimate {result.points.estimate:.3f} vs oracle "
        f"{result.oracle_cpi():.3f} "
        f"(error {result.sampling_error():.2%})"
    )


if __name__ == "__main__":
    main()
