#!/usr/bin/env python
"""Scenario: exploring many graph inputs without re-simulating everything.

Connected Components must be evaluated on several graph families
(Table II).  Simulating every input's full simulation-point set is
wasteful: most phases behave identically regardless of topology.  This
script runs the paper's Section III-D input-sensitivity test — train on
the Google web graph, classify the reference inputs' units into the
training phases, flag the phases whose CPI distribution moves more than
10 % — and reports how many simulation points the reference inputs can
skip (Figures 12 and 13).

Run:  python examples/graph_input_sensitivity.py
"""

import numpy as np

from repro import SimProf, SimProfConfig
from repro.datagen.seeds import GRAPH_INPUTS, TRAINING_INPUT
from repro.workloads import run_workload

REFERENCES = ("Facebook", "Wikipedia", "Road")
SCALE = 0.25


def profile(simprof: SimProf, graph_name: str):
    graph = GRAPH_INPUTS[graph_name]
    trace = run_workload(
        "cc", "spark", scale=SCALE, seed=0, graph=graph, input_name=graph_name
    )
    return simprof.profile(trace)


def main() -> None:
    simprof = SimProf(SimProfConfig(unit_size=25_000_000,
                                    snapshot_period=1_000_000))

    print(f"Training input: {TRAINING_INPUT.name} ({TRAINING_INPUT.category})")
    train = profile(simprof, TRAINING_INPUT.name)
    model = simprof.form_phases(train)
    print(f"  {train.n_units} units, {model.k} phases")

    refs = {}
    for name in REFERENCES:
        print(f"Profiling reference input {name} ...")
        refs[name] = profile(simprof, name)

    result = simprof.input_sensitivity(model, train, refs)

    print("\nPer-phase verdicts:")
    for phase in result.phases:
        stats = result.train_stats[phase.phase_id]
        methods = model.top_methods(phase.phase_id, 1)
        method = methods[0][0].rsplit(".", 1)[-1] if methods else "?"
        verdict = (
            f"SENSITIVE (flagged by {', '.join(phase.triggered_by)})"
            if phase.sensitive
            else "insensitive"
        )
        print(
            f"  phase {phase.phase_id} [{method}] "
            f"weight {stats.weight:5.1%}: {verdict}"
        )

    points = simprof.select_points(train, model, 20,
                                   # simprof: ignore[SPA003] -- demo script pins its seed for stable output
                                   rng=np.random.default_rng(0))
    frac = result.sensitive_point_fraction(points.allocation)
    print(f"\nSimulation points (training input): {points.sample_size}")
    print(f"Points in input-sensitive phases:   {frac:.0%}")
    print(
        f"=> per additional input, {1 - frac:.0%} of the simulation time "
        "can be skipped (the paper reports 33.7% on average)."
    )


if __name__ == "__main__":
    main()
