"""Small-scale integration tests for the ablation/extension drivers."""

from __future__ import annotations

import pytest

from repro.core.pipeline import SimProfConfig
from repro.experiments.common import ExperimentConfig

CFG = ExperimentConfig(
    scale=0.1,
    n_sampling_draws=3,
    simprof=SimProfConfig(unit_size=20_000_000, snapshot_period=1_000_000),
)


@pytest.mark.slow
class TestAblationDrivers:
    def test_allocation(self):
        from repro.experiments.ablations import run_allocation_ablation

        result = run_allocation_ablation(CFG)
        assert len(result.rows) == 3
        for _label, neyman, proportional, srs in result.rows:
            assert float(neyman) <= float(proportional) + 1e-9

    def test_top_k(self):
        from repro.experiments.ablations import run_top_k_ablation

        result = run_top_k_ablation(CFG, top_ks=(2, 100))
        assert result.rows[0][1] <= 2

    def test_projection(self):
        from repro.experiments.ablations import run_projection_ablation

        result = run_projection_ablation(CFG, dims=(2,))
        assert len(result.rows) == 2
        assert "Ablation" in result.to_text()

    def test_profiler(self):
        from repro.experiments.ablations import run_profiler_ablation

        result = run_profiler_ablation(
            CFG,
            snapshot_periods=(1_000_000,),
            unit_sizes=(10_000_000, 40_000_000),
        )
        by = {r[0]: r for r in result.rows}
        assert by["unit=10M"][1] > by["unit=40M"][1]


@pytest.mark.slow
class TestExtensionDrivers:
    def test_error_curve(self):
        from repro.experiments.ext_error_curve import run_error_curve

        result = run_error_curve(CFG, sizes=(10, 40))
        bounds = [float(r[3]) for r in result.rows]
        assert bounds[0] >= bounds[1]
        assert "error vs sample size" in result.to_text()

    def test_multimetric(self):
        from repro.experiments.ext_multimetric import run_multimetric

        result = run_multimetric(CFG, n_points=15)
        assert len(result.rows) == 12
        assert 0 <= result.average_mpki_error() < 1.0

    def test_text_sensitivity(self):
        from repro.experiments.ext_text_sensitivity import run_text_sensitivity

        result = run_text_sensitivity(CFG, n_points=15)
        assert len(result.rows) == 4
        for _l, phases, sens, insens, _pct, _by in result.rows:
            assert sens + insens == phases

    def test_systematic_sweep(self):
        from repro.experiments.ext_systematic import run_systematic_sweep

        result = run_systematic_sweep(
            CFG, periods=(1_000_000,), n_points=10
        )
        assert len(result.rows) == 1
        assert float(result.rows[0][5]) < 10.0  # added error bounded

    def test_warmup(self):
        from repro.experiments.ext_warmup import run_warmup_experiment

        result = run_warmup_experiment(CFG, n_points=10)
        assert result.second_shift() > 0
        assert len(result.rows) == 2

    def test_thread_choice(self):
        from repro.experiments.ext_thread_choice import run_thread_choice

        result = run_thread_choice(CFG, n_points=10)
        assert len(result.rows) >= 4
        assert result.oracle_spread() < 0.2

    def test_fault_sweep(self):
        from repro.experiments.ext_faults import run_fault_sweep

        result = run_fault_sweep(
            CFG, workload="grep", rates=(0.0, 0.05), n_points=10
        )
        assert len(result.rows) == 2
        assert result.rows[0].n_faults == 0  # null plan fires nothing
        assert result.rows[-1].n_faults > 0
        assert result.all_results_match  # recoveries are transparent
        assert result.all_replays_identical  # same plan, same faults
        assert result.all_within_ci
        assert "fault" in result.to_text().lower()
