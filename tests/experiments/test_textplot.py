"""Tests for the ASCII scatter renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.textplot import ascii_scatter, phase_scatter


class TestAsciiScatter:
    def test_empty(self):
        assert "empty" in ascii_scatter(np.array([]))

    def test_dimensions(self):
        text = ascii_scatter(np.linspace(0, 1, 50), width=40, height=8)
        lines = text.splitlines()
        # 8 grid rows + axis line.
        assert len(lines) == 9
        assert all(len(l) <= 9 + 40 for l in lines)

    def test_extremes_on_first_and_last_rows(self):
        y = np.array([0.0, 1.0])
        lines = ascii_scatter(y, width=10, height=5).splitlines()
        assert "·" in lines[0]      # max on top row
        assert "·" in lines[4]      # min on bottom row

    def test_axis_labels(self):
        text = ascii_scatter(np.array([2.0, 4.0]), width=10, height=4)
        assert "4.00" in text
        assert "2.00" in text

    def test_constant_series(self):
        text = ascii_scatter(np.ones(10))
        assert "·" in text  # no division-by-zero blank plot

    def test_y_label(self):
        text = ascii_scatter(np.ones(3), y_label="CPI")
        assert text.splitlines()[0].startswith("CPI")


class TestPhaseScatter:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            phase_scatter(np.ones(3), np.zeros(2))

    def test_boundaries_and_ruler(self):
        cpi = np.concatenate([np.ones(30), np.full(30, 2.0)])
        phases = np.array([0] * 30 + [1] * 30)
        text = phase_scatter(cpi, phases, width=40, height=6)
        assert "|" in text
        ruler = text.splitlines()[-1]
        assert ruler.strip().startswith("phase")
        assert "0" in ruler and "1" in ruler

    def test_single_phase_has_no_boundary(self):
        cpi = np.ones(20)
        text = phase_scatter(cpi, np.zeros(20, dtype=int), width=30, height=4)
        grid_rows = text.splitlines()[1:-2]
        assert not any("|" in row[9:] for row in grid_rows)
