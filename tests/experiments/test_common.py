"""Unit tests for the experiment cache and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import SimProfConfig
from repro.experiments import common
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    get_profile,
)

SMALL = ExperimentConfig(
    scale=0.05,
    n_sampling_draws=3,
    simprof=SimProfConfig(unit_size=10_000_000, snapshot_period=500_000),
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
    monkeypatch.setattr(common, "_MEMORY_CACHE", {})
    yield


class TestLabels:
    def test_twelve_pairs(self):
        pairs = all_label_pairs()
        assert len(pairs) == 12
        assert pairs[0][1] == "hadoop"  # Hadoop first, as in Figure 7


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(["a", "bb"], [(1, 2), (30, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestCaching:
    def test_profile_cached_on_disk(self, tmp_path):
        p1 = get_profile("grep", "spark", SMALL)
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 1
        # Second call from a cleared memory cache hits the disk.
        common._MEMORY_CACHE.clear()
        p2 = get_profile("grep", "spark", SMALL)
        assert p2.n_units == p1.n_units
        np.testing.assert_allclose(p2.profile.cpi(), p1.profile.cpi())

    def test_model_cached(self, tmp_path):
        job, model = get_model("grep", "spark", SMALL)
        assert len(list(tmp_path.glob("model-*.pkl"))) == 1
        _job2, model2 = get_model("grep", "spark", SMALL)
        assert model2.k == model.k

    def test_distinct_keys_for_distinct_params(self, tmp_path):
        get_profile("grep", "spark", SMALL)
        other = ExperimentConfig(
            scale=0.06,
            n_sampling_draws=3,
            simprof=SMALL.simprof,
        )
        get_profile("grep", "spark", other)
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        get_profile("grep", "spark", SMALL)
        entry = next(tmp_path.glob("profile-*.pkl"))
        entry.write_bytes(b"not a pickle")
        common._MEMORY_CACHE.clear()
        p = get_profile("grep", "spark", SMALL)
        assert p.n_units > 0
