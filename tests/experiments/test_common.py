"""Unit tests for the experiment-facing cache wrappers.

The heavy lifting (hashing, atomicity, parallelism) is covered by
``tests/runtime``; these tests pin the behaviour of the thin
``get_profile``/``get_model`` wrappers, including regression tests for
the historical cache-key bugs (missing ``simprof.seed``, nested-dict
order sensitivity).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import SimProfConfig
from repro.experiments.common import (
    ExperimentConfig,
    all_label_pairs,
    format_table,
    get_model,
    get_profile,
    make_spec,
)
from repro.runtime.store import default_store, reset_default_stores

SMALL = ExperimentConfig(
    scale=0.05,
    n_sampling_draws=3,
    simprof=SimProfConfig(unit_size=10_000_000, snapshot_period=500_000),
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
    reset_default_stores()
    yield
    reset_default_stores()


class TestLabels:
    def test_twelve_pairs(self):
        pairs = all_label_pairs()
        assert len(pairs) == 12
        assert pairs[0][1] == "hadoop"  # Hadoop first, as in Figure 7


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(["a", "bb"], [(1, 2), (30, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestCaching:
    def test_profile_cached_on_disk(self, tmp_path):
        p1 = get_profile("grep", "spark", SMALL)
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 1
        # Second call from a cleared memory tier hits the disk.
        default_store().clear_memory()
        p2 = get_profile("grep", "spark", SMALL)
        assert p2.n_units == p1.n_units
        np.testing.assert_allclose(p2.profile.cpi(), p1.profile.cpi())
        assert default_store().stats.disk_hits >= 1

    def test_model_cached(self, tmp_path):
        job, model = get_model("grep", "spark", SMALL)
        assert len(list(tmp_path.glob("model-*.pkl"))) == 1
        _job2, model2 = get_model("grep", "spark", SMALL)
        assert model2.k == model.k

    def test_distinct_keys_for_distinct_params(self, tmp_path):
        get_profile("grep", "spark", SMALL)
        other = ExperimentConfig(
            scale=0.06,
            n_sampling_draws=3,
            simprof=SMALL.simprof,
        )
        get_profile("grep", "spark", other)
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        get_profile("grep", "spark", SMALL)
        entry = next(tmp_path.glob("profile-*.pkl"))
        entry.write_bytes(b"not a pickle")
        default_store().clear_memory()
        p = get_profile("grep", "spark", SMALL)
        assert p.n_units > 0

    def test_simprof_seed_in_profile_key(self, tmp_path):
        """Regression: changing only ``simprof.seed`` must miss the cache.

        The old hand-listed keys omitted it, so re-seeding the snapshot
        jitter (and k-means init) silently returned stale artifacts.
        """
        get_profile("grep", "spark", SMALL)
        reseeded = ExperimentConfig(
            scale=SMALL.scale,
            n_sampling_draws=SMALL.n_sampling_draws,
            simprof=SimProfConfig(
                unit_size=10_000_000, snapshot_period=500_000, seed=1
            ),
        )
        get_profile("grep", "spark", reseeded)
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 2

    def test_simprof_seed_in_model_key(self):
        spec0 = make_spec("grep", "spark", SMALL)
        reseeded = ExperimentConfig(
            scale=SMALL.scale,
            n_sampling_draws=SMALL.n_sampling_draws,
            simprof=SimProfConfig(
                unit_size=10_000_000, snapshot_period=500_000, seed=1
            ),
        )
        spec1 = make_spec("grep", "spark", reseeded)
        store = default_store()
        assert store.key_for("model", spec0.model_params()) != store.key_for(
            "model", spec1.model_params()
        )

    def test_nested_params_order_insensitive(self, tmp_path):
        """Regression: nested dict key order must not fragment the cache."""
        get_profile(
            "wc", "spark", SMALL, params={"a": {"x": 1, "y": 2}, "b": 3}
        )
        get_profile(
            "wc", "spark", SMALL, params={"b": 3, "a": {"y": 2, "x": 1}}
        )
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 1
