"""Integration tests: every figure/table driver runs at small scale and
its output has the paper's qualitative shape."""

from __future__ import annotations

import pytest

from repro.core.pipeline import SimProfConfig
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig06_cov import run_fig6
from repro.experiments.fig07_errors import run_fig7
from repro.experiments.fig08_samplesize import run_fig8
from repro.experiments.fig09_phasecount import run_fig9
from repro.experiments.fig10_phasetypes import run_fig10
from repro.experiments.fig11_allocation import run_fig11
from repro.experiments.fig12_13_sensitivity import run_fig12_13
from repro.experiments.fig14_15_wordcount import run_wordcount_series
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

# One shared small config: profiles are cached across the session in
# the user cache dir, so the twelve runs happen once.
CFG = ExperimentConfig(
    scale=0.1,
    n_sampling_draws=5,
    simprof=SimProfConfig(unit_size=20_000_000, snapshot_period=1_000_000),
)


class TestTables:
    def test_table1_rows(self):
        t = run_table1()
        assert len(t.rows) == 6
        assert "wordcount" in t.to_text()

    def test_table2_rows(self):
        t = run_table2()
        assert len(t.rows) == 8
        assert "training" in t.to_text()


@pytest.mark.slow
class TestFigureDrivers:
    def test_fig6_weighted_below_population(self):
        result = run_fig6(CFG)
        assert len(result.rows) == 12
        assert result.weighted_below_population()
        assert "Figure 6" in result.to_text()

    def test_fig7_simprof_wins(self):
        # At test scale a 10 s SECOND window covers the entire run and
        # degenerates into the oracle, so only the SRS/CODE comparisons
        # are meaningful here; the full-scale benchmark covers SECOND.
        result = run_fig7(CFG)
        avg = result.averages()
        assert avg["SimProf"] < avg["CODE"]
        assert avg["SimProf"] < avg["SRS"]
        assert "AVERAGE" in result.to_text()

    def test_fig8_sample_sizes_ordered(self):
        result = run_fig8(CFG)
        avg = result.averages()
        assert avg["SimProf_0.05"] <= avg["SimProf_0.02"]
        for row in result.rows:
            assert row.simprof_5pct <= row.simprof_2pct <= row.total_units

    def test_fig9_counts_positive(self):
        result = run_fig9(CFG)
        assert len(result.counts) == 12
        assert all(1 <= k <= 20 for k in result.counts.values())
        lo, hi = result.range_for("sp")
        assert lo >= 1

    def test_fig10_shares_normalised(self):
        result = run_fig10(CFG)
        for label, shares in result.shares.items():
            assert sum(shares.values()) == pytest.approx(1.0), label

    def test_fig11_allocation_tracks_variance(self):
        result = run_fig11(CFG)
        assert sum(r.sample_ratio for r in result.rows) == pytest.approx(1.0)
        # Sorted by weight, descending.
        weights = [r.weight for r in result.rows]
        assert weights == sorted(weights, reverse=True)

    def test_fig12_13_sensitivity(self):
        result = run_fig12_13(
            CFG, reference_names=("Road", "Facebook")
        )
        assert len(result.rows) == 4
        for row in result.rows:
            assert 0 <= row.sensitive_point_fraction <= 1
            assert row.n_sensitive + row.n_insensitive == row.n_phases
        assert 0.0 <= result.average_reduction() <= 1.0

    def test_fig14_15_series(self):
        for fw in ("spark", "hadoop"):
            series = run_wordcount_series(fw, CFG)
            assert len(series.cpi_sorted) == len(series.phase_sorted)
            # Units sorted by phase id.
            assert (series.phase_sorted[:-1] <= series.phase_sorted[1:]).all()
            assert sum(p["weight"] for p in series.phase_summary) == pytest.approx(1.0)
