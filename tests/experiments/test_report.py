"""Test for the one-shot report generator (small scale)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import SimProfConfig
from repro.experiments.common import ExperimentConfig
from repro.experiments.report import generate_report


@pytest.mark.slow
def test_generate_report_contains_all_sections():
    cfg = ExperimentConfig(
        scale=0.1,
        n_sampling_draws=3,
        simprof=SimProfConfig(unit_size=20_000_000, snapshot_period=1_000_000),
    )
    seen = []
    text = generate_report(cfg, progress=seen.append)
    for heading in [
        "Table I", "Table II", "Figure 6", "Figure 7", "Figure 8",
        "Figure 9", "Figure 10", "Figure 11", "Figures 12-13",
        "Figure 14", "Figure 15", "systematic sampling",
        "text-workload input sensitivity", "Headline",
    ]:
        assert heading in text, heading
    assert "figure 7" in seen
    assert text.startswith("# SimProf reproduction report")


@pytest.mark.slow
def test_generate_report_without_extensions():
    cfg = ExperimentConfig(
        scale=0.1,
        n_sampling_draws=3,
        simprof=SimProfConfig(unit_size=20_000_000, snapshot_period=1_000_000),
    )
    text = generate_report(cfg, include_extensions=False)
    assert "systematic sampling" not in text
