"""Deeper tests of the sort-and-spill machinery."""

from __future__ import annotations

from collections import Counter
from typing import Any

import pytest

from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster, HadoopClusterConfig
from repro.jvm.machine import OpKind
from repro.jvm.threads import OP_KIND_CODES


class WordMapper(Mapper):
    inst_per_record = 50_000.0

    def map(self, key: Any, value: str, context: Context) -> None:
        for w in value.split():
            context.write(w, 1)


class SumReducer(Reducer):
    inst_per_record = 20_000.0

    def reduce(self, key: Any, values: Any, context: Context) -> None:
        context.write(key, sum(values))


def run_wc(sort_buffer_bytes: float, combiner: bool = True) -> HadoopCluster:
    cluster = HadoopCluster(HadoopClusterConfig(n_slots=1, seed=0))
    corpus = [f"w{i % 11} w{i % 5}" for i in range(400)]
    cluster.fs.write("/in", corpus, block_records=400)  # one map task
    conf = HadoopJobConf(
        name="wc",
        mapper=WordMapper(),
        combiner=SumReducer() if combiner else None,
        reducer=SumReducer(),
        n_reduces=2,
        sort_buffer_bytes=sort_buffer_bytes,
    )
    cluster.run_job(conf, "/in", "/out")
    return cluster


def output_counts(cluster: HadoopCluster) -> dict[str, int]:
    out: dict[str, int] = {}
    for part in cluster.fs.ls("/out/*"):
        for line in cluster.fs.read_all(part):
            k, v = line.split("\t")
            out[k] = out.get(k, 0) + int(v)
    return out


EXPECTED = Counter(
    w for line in (f"w{i % 11} w{i % 5}" for i in range(400)) for w in line.split()
)


class TestSpillPaths:
    def test_single_spill_correct(self):
        cluster = run_wc(sort_buffer_bytes=1e9)  # never spills early
        assert output_counts(cluster) == EXPECTED

    def test_many_spills_correct(self):
        cluster = run_wc(sort_buffer_bytes=200.0)  # spills constantly
        assert output_counts(cluster) == EXPECTED

    def test_many_spills_without_combiner(self):
        cluster = run_wc(sort_buffer_bytes=200.0, combiner=False)
        assert output_counts(cluster) == EXPECTED

    def test_multi_spill_emits_merge_pass(self):
        cluster = run_wc(sort_buffer_bytes=200.0)
        fqns = {ref.fqn for ref in cluster.registry.all_refs()}
        assert any("mergeParts" in f for f in fqns)

    def test_single_spill_skips_merge(self):
        cluster = run_wc(sort_buffer_bytes=1e9)
        trace = cluster.job_trace("wc")
        merge_methods = cluster.registry.find("mergeParts")
        if not merge_methods:
            return  # frame never interned: no merge happened
        # Frame may be interned by the stacks factory, but no segment
        # may reference a stack containing it.
        merge_mid = merge_methods[0]
        for t in trace.traces:
            for seg in t.segments:
                frames = cluster.stack_table.frames_of(seg.stack_id)
                assert merge_mid not in frames

    def test_spill_emits_sort_combine_io_interleaved(self):
        cluster = run_wc(sort_buffer_bytes=200.0)
        trace = cluster.job_trace("wc").traces[0]
        arr = trace.to_arrays()
        kinds = [int(k) for k in arr["op_kind"]]
        sort_code = OP_KIND_CODES[OpKind.SORT]
        io_code = OP_KIND_CODES[OpKind.IO]
        # Sort and IO alternate across spills rather than forming two
        # contiguous blocks.
        filtered = [k for k in kinds if k in (sort_code, io_code)]
        transitions = sum(1 for a, b in zip(filtered, filtered[1:]) if a != b)
        assert transitions > 4

    def test_compression_reduces_shuffle_bytes(self):
        def shuffle_bytes(compress: bool) -> int:
            cluster = HadoopCluster(HadoopClusterConfig(n_slots=1, seed=0))
            cluster.fs.write("/in", [f"w{i}" for i in range(200)],
                             block_records=200)
            conf = HadoopJobConf(
                name="wc", mapper=WordMapper(), reducer=SumReducer(),
                n_reduces=1, compress_map_output=compress,
            )
            cluster.run_job(conf, "/in", "/out")
            # Fetch cost is modelled from compressed bytes; compare the
            # reduce-stage shuffle instructions instead of raw bytes.
            total = 0
            for t in cluster.job_trace("wc").traces:
                arr = t.to_arrays()
                mask = arr["op_kind"] == OP_KIND_CODES[OpKind.SHUFFLE]
                total += int(arr["instructions"][mask].sum())
            return total

        assert shuffle_bytes(True) < shuffle_bytes(False)
