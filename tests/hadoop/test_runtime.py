"""Integration tests for the MapReduce runtime."""

from __future__ import annotations

from collections import Counter
from typing import Any

import pytest

from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster, HadoopClusterConfig
from repro.jvm.machine import OpKind
from repro.jvm.threads import OP_KIND_CODES


class WordMapper(Mapper):
    inst_per_record = 50_000.0

    def map(self, key: Any, value: str, context: Context) -> None:
        for w in value.split():
            context.write(w, 1)


class SumReducer(Reducer):
    inst_per_record = 20_000.0

    def reduce(self, key: Any, values: Any, context: Context) -> None:
        context.write(key, sum(values))


def make_cluster(**kwargs) -> HadoopCluster:
    defaults = dict(n_slots=2, seed=0)
    defaults.update(kwargs)
    return HadoopCluster(HadoopClusterConfig(**defaults))


def read_output(cluster: HadoopCluster, path: str) -> list[str]:
    lines: list[str] = []
    for part in cluster.fs.ls(f"{path}/*"):
        lines.extend(cluster.fs.read_all(part))
    return lines


def parse_counts(lines: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for line in lines:
        k, v = line.split("\t")
        out[k] = int(v)
    return out


class TestWordCountJob:
    @pytest.fixture()
    def corpus(self):
        return [f"w{i % 13} w{i % 7} w{i % 3}" for i in range(300)]

    def expected(self, corpus):
        return Counter(w for line in corpus for w in line.split())

    def test_correct_counts_with_combiner(self, corpus):
        cluster = make_cluster()
        cluster.fs.write("/in", corpus, block_records=75)
        conf = HadoopJobConf(
            name="wc",
            mapper=WordMapper(),
            combiner=SumReducer(),
            reducer=SumReducer(),
            n_reduces=3,
            sort_buffer_bytes=500.0,  # force several spills per task
        )
        cluster.run_job(conf, "/in", "/out")
        assert parse_counts(read_output(cluster, "/out")) == self.expected(corpus)

    def test_correct_counts_without_combiner(self, corpus):
        cluster = make_cluster()
        cluster.fs.write("/in", corpus, block_records=100)
        conf = HadoopJobConf(
            name="wc",
            mapper=WordMapper(),
            combiner=None,
            reducer=SumReducer(),
            n_reduces=2,
        )
        cluster.run_job(conf, "/in", "/out")
        assert parse_counts(read_output(cluster, "/out")) == self.expected(corpus)

    def test_reduce_output_sorted_within_partition(self, corpus):
        cluster = make_cluster()
        cluster.fs.write("/in", corpus, block_records=100)
        conf = HadoopJobConf(
            name="wc", mapper=WordMapper(), reducer=SumReducer(), n_reduces=2
        )
        cluster.run_job(conf, "/in", "/out")
        for part in cluster.fs.ls("/out/*"):
            keys = [l.split("\t")[0] for l in cluster.fs.read_all(part)]
            assert keys == sorted(keys)

    def test_map_only_job(self):
        cluster = make_cluster()
        cluster.fs.write("/in", ["a b", "c"], block_records=2)
        conf = HadoopJobConf(name="ident", mapper=WordMapper(), reducer=None,
                             n_reduces=0)
        cluster.run_job(conf, "/in", "/out")
        lines = read_output(cluster, "/out")
        assert sorted(l.split("\t")[0] for l in lines) == ["a", "b", "c"]

    def test_trace_merged_per_slot(self, corpus):
        cluster = make_cluster(n_slots=2)
        cluster.fs.write("/in", corpus, block_records=50)  # 6 map tasks
        conf = HadoopJobConf(
            name="wc", mapper=WordMapper(), reducer=SumReducer(), n_reduces=2
        )
        cluster.run_job(conf, "/in", "/out")
        trace = cluster.job_trace("wc")
        # Tasks ran on 2 slots -> exactly 2 merged pseudo-threads.
        assert trace.n_threads == 2
        # Merged traces are time-ordered.
        for t in trace.traces:
            assert t.total_instructions > 0

    def test_stage_metadata(self, corpus):
        cluster = make_cluster()
        cluster.fs.write("/in", corpus, block_records=150)
        conf = HadoopJobConf(
            name="wc", mapper=WordMapper(), reducer=SumReducer(), n_reduces=2
        )
        cluster.run_job(conf, "/in", "/out")
        names = [s.name for s in cluster.job_trace("wc").stages]
        assert names == ["wc:map", "wc:reduce"]

    def test_op_kinds_present(self, corpus):
        cluster = make_cluster()
        cluster.fs.write("/in", corpus, block_records=100)
        conf = HadoopJobConf(
            name="wc",
            mapper=WordMapper(),
            combiner=SumReducer(),
            reducer=SumReducer(),
            n_reduces=2,
            sort_buffer_bytes=1000.0,
        )
        cluster.run_job(conf, "/in", "/out")
        kinds = set()
        for t in cluster.job_trace("wc").traces:
            kinds.update(int(k) for k in t.to_arrays()["op_kind"])
        for expected in (OpKind.MAP, OpKind.REDUCE, OpKind.SORT, OpKind.IO,
                         OpKind.SHUFFLE):
            assert OP_KIND_CODES[expected] in kinds

    def test_chained_jobs_read_previous_output(self):
        """Iterative pattern: job 2 consumes job 1's text output."""
        cluster = make_cluster()
        cluster.fs.write("/in", ["a a b"], block_records=1)
        conf = HadoopJobConf(
            name="wc", mapper=WordMapper(), reducer=SumReducer(), n_reduces=1
        )
        cluster.run_job(conf, "/in", "/out1")
        merged = read_output(cluster, "/out1")
        cluster.fs.write("/in2", merged, block_records=2)

        class ParseCountMapper(Mapper):
            def map(self, key: Any, value: str, context: Context) -> None:
                word, count = value.split("\t")
                context.write("total", int(count))

        conf2 = HadoopJobConf(
            name="sum", mapper=ParseCountMapper(), reducer=SumReducer(),
            n_reduces=1,
        )
        cluster.run_job(conf2, "/in2", "/out2")
        assert parse_counts(read_output(cluster, "/out2")) == {"total": 3}


class TestHadoopJobConf:
    def test_validation(self):
        with pytest.raises(ValueError):
            HadoopJobConf(name="x", mapper=WordMapper(), n_reduces=-1)
        with pytest.raises(ValueError):
            HadoopJobConf(name="x", mapper=WordMapper(), sort_buffer_bytes=0)
        with pytest.raises(ValueError):
            HadoopJobConf(name="x", mapper=WordMapper(), compression_ratio=0)

    def test_is_map_only(self):
        assert HadoopJobConf(name="x", mapper=WordMapper(), reducer=None).is_map_only
        assert HadoopJobConf(
            name="x", mapper=WordMapper(), reducer=SumReducer(), n_reduces=0
        ).is_map_only

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            HadoopClusterConfig(n_slots=0)


class TestDefaultApiClasses:
    def test_identity_mapper(self):
        ctx = Context()
        Mapper().map("k", "v", ctx)
        assert ctx.drain() == [("k", "v")]

    def test_identity_reducer(self):
        ctx = Context()
        Reducer().reduce("k", [1, 2], ctx)
        assert ctx.drain() == [("k", 1), ("k", 2)]

    def test_context_drain_clears(self):
        ctx = Context()
        ctx.write("a", 1)
        assert ctx.drain() == [("a", 1)]
        assert ctx.drain() == []
