"""Unit and property tests for the simulated HDFS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hdfs.filesystem import SimulatedHDFS, estimate_record_bytes


class TestEstimateRecordBytes:
    def test_string(self):
        assert estimate_record_bytes("hello") == 6  # +newline

    def test_bytes(self):
        assert estimate_record_bytes(b"abc") == 4

    def test_numbers(self):
        assert estimate_record_bytes(7) == 8
        assert estimate_record_bytes(3.14) == 8
        assert estimate_record_bytes(np.int64(7)) == 8

    def test_ndarray_uses_nbytes(self):
        arr = np.zeros(10, dtype=np.int64)
        assert estimate_record_bytes(arr) == 80

    def test_tuple_sums_fields(self):
        assert estimate_record_bytes(("ab", 1)) == 3 + 8 + 2

    def test_dict(self):
        assert estimate_record_bytes({"a": 1}) == 2 + 8

    def test_unknown_object_positive(self):
        class Thing:
            pass

        assert estimate_record_bytes(Thing()) > 0

    @given(
        st.recursive(
            st.one_of(st.text(max_size=10), st.integers(), st.floats(allow_nan=False)),
            lambda children: st.lists(children, max_size=4).map(tuple),
            max_leaves=10,
        )
    )
    @settings(max_examples=50)
    def test_always_positive(self, record):
        assert estimate_record_bytes(record) >= 0


class TestSimulatedHDFS:
    def test_write_chops_into_blocks(self):
        fs = SimulatedHDFS(block_records=10)
        f = fs.write("/a", [f"line{i}" for i in range(25)])
        assert f.n_blocks == 3
        assert [len(b) for b in f.blocks] == [10, 10, 5]
        assert f.n_records == 25

    def test_write_block_records_override(self):
        fs = SimulatedHDFS(block_records=10)
        f = fs.write("/a", range(20), block_records=5)
        assert f.n_blocks == 4

    def test_read_block_roundtrip(self):
        fs = SimulatedHDFS(block_records=4)
        fs.write("/a", list(range(10)))
        records, nbytes = fs.read_block("/a", 1)
        assert records == [4, 5, 6, 7]
        assert nbytes == 32

    def test_read_block_out_of_range(self):
        fs = SimulatedHDFS()
        fs.write("/a", [1])
        with pytest.raises(IndexError):
            fs.read_block("/a", 5)

    def test_read_all(self):
        fs = SimulatedHDFS(block_records=3)
        fs.write("/a", list(range(7)))
        assert fs.read_all("/a") == list(range(7))

    def test_missing_file_raises(self):
        fs = SimulatedHDFS()
        with pytest.raises(FileNotFoundError):
            fs.stat("/nope")
        with pytest.raises(FileNotFoundError):
            fs.read_all("/nope")

    def test_exists_and_delete(self):
        fs = SimulatedHDFS()
        fs.write("/a", [1])
        assert fs.exists("/a")
        fs.delete("/a")
        assert not fs.exists("/a")
        fs.delete("/a")  # idempotent

    def test_ls_glob(self):
        fs = SimulatedHDFS()
        fs.write("/out/part-0", [1])
        fs.write("/out/part-1", [1])
        fs.write("/in/data", [1])
        assert fs.ls("/out/*") == ["/out/part-0", "/out/part-1"]
        assert len(fs.ls()) == 3

    def test_overwrite_replaces(self):
        fs = SimulatedHDFS()
        fs.write("/a", [1, 2, 3])
        fs.write("/a", [9])
        assert fs.read_all("/a") == [9]

    def test_append_block(self):
        fs = SimulatedHDFS()
        fs.append_block("/a", ["x"])
        fs.append_block("/a", ["y", "z"])
        assert fs.read_all("/a") == ["x", "y", "z"]
        assert fs.stat("/a").n_blocks == 2

    def test_write_blocks_preserves_layout(self):
        fs = SimulatedHDFS()
        f = fs.write_blocks("/a", [[1, 2], [3]])
        assert f.n_blocks == 2
        assert f.blocks[1] == [3]

    def test_io_accounting(self):
        fs = SimulatedHDFS(block_records=5)
        f = fs.write("/a", ["hello"] * 10)
        assert fs.bytes_written == f.total_bytes
        fs.read_all("/a")
        assert fs.bytes_read == f.total_bytes

    def test_rejects_bad_block_records(self):
        with pytest.raises(ValueError):
            SimulatedHDFS(block_records=0)

    @given(st.lists(st.text(max_size=20), max_size=60), st.integers(1, 10))
    @settings(max_examples=40)
    def test_roundtrip_property(self, records, block_records):
        fs = SimulatedHDFS(block_records=block_records)
        fs.write("/p", records)
        assert fs.read_all("/p") == records
