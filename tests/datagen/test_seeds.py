"""Unit tests for the Table II input catalog."""

from __future__ import annotations

import pytest

from repro.datagen.kronecker import degree_statistics
from repro.datagen.seeds import (
    GRAPH_INPUTS,
    REFERENCE_INPUTS,
    TRAINING_INPUT,
    get_graph_input,
)


class TestCatalog:
    def test_eight_inputs(self):
        assert len(GRAPH_INPUTS) == 8

    def test_exactly_one_training_input(self):
        training = [g for g in GRAPH_INPUTS.values() if g.role == "training"]
        assert len(training) == 1
        assert training[0] is TRAINING_INPUT
        assert TRAINING_INPUT.name == "Google"

    def test_seven_reference_inputs(self):
        assert len(REFERENCE_INPUTS) == 7
        assert all(g.role == "reference" for g in REFERENCE_INPUTS)

    def test_table2_names(self):
        expected = {
            "Google", "Facebook", "Flickr", "Wikipedia",
            "DBLP", "Stanford", "Amazon", "Road",
        }
        assert set(GRAPH_INPUTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_graph_input("google") is GRAPH_INPUTS["Google"]

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_graph_input("Twitter")


class TestTopologies:
    def test_edges_materialise(self):
        edges = TRAINING_INPUT.edges(seed=0, scale_delta=-4)
        assert len(edges) > 0
        assert edges.max() < TRAINING_INPUT.n_nodes

    def test_scale_delta_shrinks(self):
        big = TRAINING_INPUT.edges(seed=0, scale_delta=-3)
        small = TRAINING_INPUT.edges(seed=0, scale_delta=-5)
        assert len(small) < len(big)

    def test_road_flatter_than_social(self):
        """The catalog's families must differ in topology, or the
        input-sensitivity experiment has nothing to detect."""
        road = GRAPH_INPUTS["Road"]
        facebook = GRAPH_INPUTS["Facebook"]
        road_stats = degree_statistics(
            road.edges(seed=0, scale_delta=-4), road.n_nodes >> 4
        )
        fb_stats = degree_statistics(
            facebook.edges(seed=0, scale_delta=-4), facebook.n_nodes >> 4
        )
        assert fb_stats["gini"] > road_stats["gini"]

    def test_inputs_have_distinct_edge_sets(self):
        a = GRAPH_INPUTS["Google"].edges(seed=0, scale_delta=-4)
        b = GRAPH_INPUTS["Wikipedia"].edges(seed=0, scale_delta=-4)
        assert len(a) != len(b) or not (a[: len(b)] == b[: len(a)]).all()
