"""Unit tests for the Kronecker graph generator."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.datagen.kronecker import (
    KroneckerSpec,
    degree_statistics,
    generate_kronecker_edges,
)

WEB = ((0.9, 0.5), (0.5, 0.2))
ROAD = ((0.55, 0.45), (0.45, 0.55))


class TestKroneckerSpec:
    def test_n_nodes(self):
        assert KroneckerSpec(WEB, scale=10).n_nodes == 1024

    def test_n_edges_sampled(self):
        spec = KroneckerSpec(WEB, scale=8, edge_factor=4)
        assert spec.n_edges_sampled == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            KroneckerSpec(WEB, scale=0)
        with pytest.raises(ValueError):
            KroneckerSpec(WEB, scale=40)
        with pytest.raises(ValueError):
            KroneckerSpec(WEB, scale=8, edge_factor=0)
        with pytest.raises(ValueError):
            KroneckerSpec(((1.0, -0.1), (0.5, 0.2)), scale=8)
        with pytest.raises(ValueError):
            KroneckerSpec(((0.0, 0.0), (0.0, 0.0)), scale=8)


class TestGeneration:
    def test_node_ids_in_range(self):
        spec = KroneckerSpec(WEB, scale=9, edge_factor=8)
        edges = generate_kronecker_edges(spec, seed=0)
        assert edges.min() >= 0
        assert edges.max() < spec.n_nodes

    def test_deterministic_per_seed(self):
        spec = KroneckerSpec(WEB, scale=8, edge_factor=8)
        a = generate_kronecker_edges(spec, seed=3)
        b = generate_kronecker_edges(spec, seed=3)
        assert np.array_equal(a, b)
        c = generate_kronecker_edges(spec, seed=4)
        assert not np.array_equal(a, c)

    def test_no_self_loops_by_default(self):
        spec = KroneckerSpec(WEB, scale=8, edge_factor=8)
        edges = generate_kronecker_edges(spec, seed=0)
        assert (edges[:, 0] != edges[:, 1]).all()

    def test_deduplicated_by_default(self):
        spec = KroneckerSpec(WEB, scale=8, edge_factor=16)
        edges = generate_kronecker_edges(spec, seed=0)
        assert len(np.unique(edges, axis=0)) == len(edges)

    def test_keep_duplicates_when_asked(self):
        spec = KroneckerSpec(WEB, scale=6, edge_factor=32, deduplicate=False,
                             drop_self_loops=False)
        edges = generate_kronecker_edges(spec, seed=0)
        assert len(edges) == spec.n_edges_sampled

    def test_skewed_initiator_gives_heavier_tail(self):
        web = generate_kronecker_edges(
            KroneckerSpec(WEB, scale=12, edge_factor=8), seed=0
        )
        road = generate_kronecker_edges(
            KroneckerSpec(ROAD, scale=12, edge_factor=8), seed=0
        )
        web_stats = degree_statistics(web, 1 << 12)
        road_stats = degree_statistics(road, 1 << 12)
        assert web_stats["degree_cov"] > road_stats["degree_cov"]
        assert web_stats["gini"] > road_stats["gini"]

    def test_graph_is_mostly_connected_for_dense_factor(self):
        """Kronecker graphs with decent edge factors have one giant
        weakly-connected component."""
        spec = KroneckerSpec(WEB, scale=10, edge_factor=16)
        edges = generate_kronecker_edges(spec, seed=0)
        g = nx.Graph()
        g.add_edges_from(map(tuple, edges))
        giant = max(nx.connected_components(g), key=len)
        assert len(giant) > 0.5 * g.number_of_nodes()


class TestDegreeStatistics:
    def test_keys_present(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        stats = degree_statistics(edges, 4)
        for key in ("n_edges", "mean_degree", "max_degree", "degree_cov",
                    "isolated_fraction", "gini"):
            assert key in stats

    def test_simple_values(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        stats = degree_statistics(edges, 4)
        assert stats["n_edges"] == 3
        assert stats["max_degree"] == 2
        assert stats["isolated_fraction"] == pytest.approx(0.5)  # nodes 2,3

    def test_empty_graph(self):
        stats = degree_statistics(np.empty((0, 2), dtype=np.int64), 4)
        assert stats["n_edges"] == 0
        assert stats["gini"] == 0.0
