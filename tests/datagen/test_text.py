"""Unit tests for the Zipf text synthesizer."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.datagen.text import (
    TextSpec,
    make_vocabulary,
    synthesize_labeled_text,
    synthesize_text,
)


class TestTextSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TextSpec(n_lines=0)
        with pytest.raises(ValueError):
            TextSpec(n_lines=10, vocab_size=0)
        with pytest.raises(ValueError):
            TextSpec(n_lines=10, zipf_s=0)
        with pytest.raises(ValueError):
            TextSpec(n_lines=10, words_per_line=0)


class TestVocabulary:
    def test_size_and_uniqueness(self):
        rng = np.random.default_rng(0)
        vocab = make_vocabulary(500, rng)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_min_word_length(self):
        rng = np.random.default_rng(0)
        vocab = make_vocabulary(200, rng, word_len_mean=1.0)
        assert all(len(w) >= 2 for w in vocab)


class TestSynthesizeText:
    def test_line_count(self):
        lines = synthesize_text(TextSpec(n_lines=100), seed=0)
        assert len(lines) == 100

    def test_deterministic_per_seed(self):
        spec = TextSpec(n_lines=50)
        assert synthesize_text(spec, 7) == synthesize_text(spec, 7)
        assert synthesize_text(spec, 7) != synthesize_text(spec, 8)

    def test_zipf_skew(self):
        """A steeper exponent concentrates mass on fewer words."""
        flat = synthesize_text(
            TextSpec(n_lines=2000, vocab_size=1000, zipf_s=0.7, shuffle_ranks=False),
            seed=0,
        )
        steep = synthesize_text(
            TextSpec(n_lines=2000, vocab_size=1000, zipf_s=1.8, shuffle_ranks=False),
            seed=0,
        )

        def top_share(lines: list[str]) -> float:
            counts = Counter(w for l in lines for w in l.split())
            total = sum(counts.values())
            return sum(c for _w, c in counts.most_common(10)) / total

        assert top_share(steep) > top_share(flat) + 0.1

    def test_words_per_line_mean(self):
        lines = synthesize_text(
            TextSpec(n_lines=2000, words_per_line=8.0), seed=1
        )
        mean = np.mean([len(l.split()) for l in lines])
        assert 7.0 < mean < 9.0

    def test_vocab_respected(self):
        lines = synthesize_text(TextSpec(n_lines=500, vocab_size=50), seed=0)
        words = {w for l in lines for w in l.split()}
        assert len(words) <= 50


class TestSynthesizeLabeledText:
    def test_format(self):
        lines = synthesize_labeled_text(TextSpec(n_lines=50), 4, seed=0)
        for line in lines:
            label, _, text = line.partition("\t")
            assert label.startswith("class")
            assert text

    def test_all_classes_within_range(self):
        lines = synthesize_labeled_text(TextSpec(n_lines=400), 5, seed=0)
        labels = {l.partition("\t")[0] for l in lines}
        assert labels <= {f"class{i}" for i in range(5)}

    def test_classes_have_distinct_distributions(self):
        lines = synthesize_labeled_text(
            TextSpec(n_lines=3000, vocab_size=300, zipf_s=1.5), 2, seed=0
        )
        counters: dict[str, Counter] = {"class0": Counter(), "class1": Counter()}
        for line in lines:
            label, _, text = line.partition("\t")
            if label in counters:
                counters[label].update(text.split())
        top0 = {w for w, _ in counters["class0"].most_common(5)}
        top1 = {w for w, _ in counters["class1"].most_common(5)}
        assert top0 != top1

    def test_rejects_bad_classes(self):
        with pytest.raises(ValueError):
            synthesize_labeled_text(TextSpec(n_lines=10), 0, seed=0)
