"""Kill-and-restore chaos campaigns.

The chaos mode's contract: a worker killed at seeded, deterministic
stream offsets and resumed from its checkpoints yields a result
byte-identical to the uninterrupted run — for streaming profiling and
for online classification.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import SimProf
from repro.core.profiler import ProfilerSession
from repro.faults.chaos import ChaosPlan, kill_and_restore
from repro.runtime.store import ArtifactStore
from repro.workloads import run_workload_stream
from tests.conftest import TEST_SCALE, TEST_SIMPROF_CONFIG


def _make_stream(framework="spark"):
    return run_workload_stream("wc", framework, scale=TEST_SCALE, seed=0)


def _make_profiler_session(stream):
    return ProfilerSession(
        TEST_SIMPROF_CONFIG.profiler_config(), stream, collect=True
    )


class TestChaosPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(kills=-1)
        with pytest.raises(ValueError):
            ChaosPlan(checkpoint_every=0)

    def test_defaults(self):
        plan = ChaosPlan()
        assert plan.kills == 2 and plan.checkpoint_every == 1


class TestProfilingChaos:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_byte_identical_after_kills(self, tmp_path, seed):
        outcome = kill_and_restore(
            _make_stream,
            _make_profiler_session,
            ArtifactStore(tmp_path),
            f"chaos-profile-{seed}",
            ChaosPlan(seed=seed, kills=2, checkpoint_every=1),
        )
        assert outcome.byte_identical
        assert len(outcome.attempts) <= 2
        for attempt in outcome.attempts:
            assert 0 < attempt.kill_position < outcome.n_events

    def test_kill_offsets_are_seeded_and_replayable(self, tmp_path):
        runs = [
            kill_and_restore(
                _make_stream,
                _make_profiler_session,
                ArtifactStore(tmp_path / str(i)),
                "chaos-replay",
                ChaosPlan(seed=3, kills=2),
            )
            for i in range(2)
        ]
        assert [a.kill_position for a in runs[0].attempts] == [
            a.kill_position for a in runs[1].attempts
        ]
        assert runs[0].byte_identical and runs[1].byte_identical

    def test_successive_kills_make_progress(self, tmp_path):
        outcome = kill_and_restore(
            _make_stream,
            _make_profiler_session,
            ArtifactStore(tmp_path),
            "chaos-progress",
            ChaosPlan(seed=1, kills=3),
        )
        assert outcome.byte_identical
        # Each cycle's kill lands strictly after the previous resume
        # point, so resumed_from is non-decreasing across attempts.
        resumed = [a.resumed_from for a in outcome.attempts]
        assert resumed == sorted(resumed)

    def test_zero_kills_is_a_plain_checkpointed_run(self, tmp_path):
        outcome = kill_and_restore(
            _make_stream,
            _make_profiler_session,
            ArtifactStore(tmp_path),
            "chaos-none",
            ChaosPlan(seed=0, kills=0),
        )
        assert outcome.attempts == []
        assert outcome.final_resumed_from == 0
        assert outcome.byte_identical

    def test_coarse_checkpoint_interval(self, tmp_path):
        outcome = kill_and_restore(
            _make_stream,
            _make_profiler_session,
            ArtifactStore(tmp_path),
            "chaos-coarse",
            ChaosPlan(seed=2, kills=2, checkpoint_every=4),
        )
        assert outcome.byte_identical


class TestClassificationChaos:
    def test_byte_identical_including_labels(self, tmp_path, wc_spark_model):
        tool = SimProf(TEST_SIMPROF_CONFIG)

        def make_session(stream):
            return tool.classify_session(wc_spark_model, stream)

        outcome = kill_and_restore(
            _make_stream,
            make_session,
            ArtifactStore(tmp_path),
            "chaos-classify",
            ChaosPlan(seed=5, kills=2, checkpoint_every=1),
        )
        assert outcome.byte_identical
        # Classification identity covers the label sequence, not just
        # the profile digest.
        job, labels = outcome.resumed
        ref_job, ref_labels = outcome.reference
        assert list(labels) == list(ref_labels)
        assert job.content_digest() == ref_job.content_digest()
