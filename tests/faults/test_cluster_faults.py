"""Cluster fault injection: transparency, determinism, null-plan identity.

These run real (small) workloads, so the whole class carries the
``slow`` marker like the other integration drivers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.faults import FaultPlan, perturb_trace
from repro.workloads import run_workload, run_workload_stream

SCALE = 0.05
SEED = 0


def _run(framework: str, faults=None, workload: str = "grep"):
    return run_workload(
        workload, framework, scale=SCALE, seed=SEED, faults=faults
    )


def _trace_bytes(trace) -> bytes:
    """Canonical bytes: thread traces + meta (timestamps excluded)."""
    return pickle.dumps(
        (sorted(trace.traces, key=lambda t: t.thread_id), trace.meta),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


@pytest.mark.slow
@pytest.mark.parametrize("framework", ["spark", "hadoop"])
class TestClusterFaults:
    def test_null_plan_bit_identical(self, framework):
        clean = _run(framework)
        nulled = _run(framework, faults=FaultPlan(seed=5))
        assert _trace_bytes(clean) == _trace_bytes(nulled)
        assert "fault_report" not in nulled.meta

    def test_same_plan_replays_bit_identically(self, framework):
        plan = FaultPlan.uniform(0.2, seed=3)
        first = _run(framework, faults=plan)
        second = _run(framework, faults=plan)
        assert _trace_bytes(first) == _trace_bytes(second)
        assert first.meta["fault_report"]["n_events"] > 0

    def test_recoveries_leave_results_unchanged(self, framework):
        clean = _run(framework)
        faulted = _run(framework, faults=FaultPlan.uniform(0.2, seed=3))
        # The workload's outputs — bytes written to HDFS and shuffled —
        # must not move: failed attempts commit nothing.
        assert (
            faulted.meta["hdfs_bytes_written"]
            == clean.meta["hdfs_bytes_written"]
        )
        assert faulted.meta["shuffle_bytes"] == clean.meta["shuffle_bytes"]

    def test_faults_add_work_not_remove(self, framework):
        clean = _run(framework)
        faulted = _run(
            framework,
            faults=FaultPlan(
                seed=3, straggler_rate=0.5, gc_pause_rate=0.5
            ),
        )
        total = lambda tr: sum(  # noqa: E731
            seg.instructions for t in tr.traces for seg in t.segments
        )
        assert total(faulted) > total(clean)


@pytest.mark.slow
class TestStreamedClusterFaults:
    def test_streamed_run_carries_fault_report(self, simprof_tool):
        plan = FaultPlan.uniform(0.1, seed=3)
        stream = run_workload_stream(
            "grep", "spark", scale=SCALE, seed=SEED, faults=plan
        )
        profile = simprof_tool.profile_stream(stream)
        report = profile.meta.get("fault_report", {})
        # Cluster faults injected by the substrate surface in the
        # profile metadata even on the streaming path.
        assert report.get("n_events", 0) > 0


class TestPerfPerturbations:
    def test_counter_glitches_rescale_cycles_only(self, wc_spark_trace):
        plan = FaultPlan(seed=4, counter_glitch_rate=0.3)
        perturbed, report = perturb_trace(wc_spark_trace, plan)
        assert len(report) > 0
        assert perturbed.meta["fault_report"]["counts"][
            "glitch/absorbed"
        ] == len(report)
        base = wc_spark_trace.longest_thread()
        pert = perturbed.thread(base.thread_id)
        inst = lambda t: sum(s.instructions for s in t.segments)  # noqa: E731
        cyc = lambda t: sum(s.cycles for s in t.segments)  # noqa: E731
        assert inst(pert) == inst(base)  # instruction clock untouched
        assert cyc(pert) != cyc(base)

    def test_perturbation_deterministic(self, wc_spark_trace):
        plan = FaultPlan(seed=4, counter_glitch_rate=0.3)
        a, _ = perturb_trace(wc_spark_trace, plan)
        b, _ = perturb_trace(wc_spark_trace, plan)
        assert pickle.dumps(a.traces) == pickle.dumps(b.traces)

    def test_null_rate_returns_equivalent_trace(self, wc_spark_trace):
        perturbed, report = perturb_trace(
            wc_spark_trace, FaultPlan(seed=4)
        )
        assert not report
        assert np.array_equal(
            [s.cycles for s in perturbed.longest_thread().segments],
            [s.cycles for s in wc_spark_trace.longest_thread().segments],
        )
