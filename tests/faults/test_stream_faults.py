"""Stream fault injection and the EventGuard recovery state machine."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.faults import EventGuard, FaultPlan, inject_stream_faults
from repro.faults.stream import ReplayBuffer
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    ThreadStart,
    TraceStream,
    sequenced_batch,
)
from repro.jvm.threads import TraceSegment


def _segments(i: int) -> tuple[TraceSegment, ...]:
    return (
        TraceSegment(0, OpKind.MAP, 10_000 + i, 6_000 + 7 * i, 64, 8),
    )


def _batches(n: int, thread_id: int = 1) -> list[SegmentBatch]:
    return [sequenced_batch(thread_id, _segments(i), i) for i in range(n)]


def make_stream(n: int = 12) -> TraceStream:
    registry = MethodRegistry()
    table = StackTable(registry)
    table.intern(CallStack((registry.intern("t.W", "run"),)))

    def events() -> Iterator:
        yield ThreadStart(1, 0, 0)
        yield from _batches(n)
        yield JobEnd({})

    return TraceStream(
        framework="synthetic",
        workload="synth",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        events=events(),
    )


class _FakeStream(list):
    """A bare event list that can carry replay/batch_counts attributes."""


def _guarded_seqs(events) -> tuple[list[int], EventGuard]:
    guard = EventGuard(events)
    seqs = [
        e.seq for e in guard.events() if isinstance(e, SegmentBatch)
    ]
    return seqs, guard


class TestInjector:
    def test_null_plan_is_the_same_object(self):
        stream = make_stream()
        assert inject_stream_faults(stream, FaultPlan(seed=5)) is stream

    def test_injection_deterministic(self):
        plan = FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.1,
                         reorder_rate=0.15)

        def run():
            faulty = inject_stream_faults(make_stream(30), plan)
            seqs = [
                e.seq for e in faulty if isinstance(e, SegmentBatch)
            ]
            return seqs, faulty.fault_report.counts()

        assert run() == run()

    def test_injector_attaches_replay_and_counts(self):
        plan = FaultPlan(seed=3, drop_rate=0.3)
        faulty = inject_stream_faults(make_stream(10), plan)
        list(faulty)
        assert isinstance(faulty.replay, ReplayBuffer)
        assert faulty.batch_counts == {1: 10}
        assert faulty.fault_report.counts().get("drop/injected", 0) > 0

    def test_nothing_held_past_job_end(self):
        plan = FaultPlan(seed=1, reorder_rate=0.5, reorder_depth=3)
        events = list(inject_stream_faults(make_stream(20), plan))
        assert isinstance(events[-1], JobEnd)
        batches = [e for e in events if isinstance(e, SegmentBatch)]
        assert len(batches) == 20  # reorder permutes, never loses


class TestGuardRecovery:
    def test_clean_stream_untouched(self):
        seqs, guard = _guarded_seqs(_FakeStream(_batches(8)))
        assert seqs == list(range(8))
        assert not guard.report

    def test_duplicates_deduped(self):
        batches = _batches(5)
        stream = _FakeStream(batches[:3] + [batches[2]] + batches[3:])
        seqs, guard = _guarded_seqs(stream)
        assert seqs == list(range(5))
        assert guard.report.counts() == {"duplicate/deduped": 1}

    def test_reorder_restored(self):
        b = _batches(6)
        stream = _FakeStream([b[0], b[2], b[1], b[3], b[5], b[4]])
        seqs, guard = _guarded_seqs(stream)
        assert seqs == list(range(6))
        assert guard.report.counts() == {"reorder/reordered": 2}

    def test_gap_repaired_from_replay(self):
        b = _batches(6)
        replay = ReplayBuffer()
        for batch in b:
            replay.store(batch)
        stream = _FakeStream(b[:2] + b[3:])  # seq 2 lost
        stream.replay = replay
        seqs, guard = _guarded_seqs(stream)
        assert seqs == list(range(6))
        # Every batch after the gap was held back, then released in order.
        assert guard.report.counts() == {
            "gap/replayed": 1, "reorder/reordered": 3,
        }

    def test_tail_gap_detected_via_batch_counts(self):
        b = _batches(6)
        replay = ReplayBuffer()
        for batch in b:
            replay.store(batch)
        stream = _FakeStream(b[:5])  # final batch lost: no successor
        stream.replay = replay
        stream.batch_counts = {1: 6}
        seqs, guard = _guarded_seqs(stream)
        assert seqs == list(range(6))
        assert guard.report.counts() == {"gap/replayed": 1}

    def test_gap_degrades_without_replay(self):
        b = _batches(5)
        stream = _FakeStream(b[:2] + b[3:])
        seqs, guard = _guarded_seqs(stream)
        assert seqs == [0, 1, 3, 4]
        assert guard.report.counts() == {
            "gap/degraded": 1, "reorder/reordered": 2,
        }

    def test_corrupt_repaired_from_replay(self):
        b = _batches(4)
        replay = ReplayBuffer()
        for batch in b:
            replay.store(batch)
        bad = SegmentBatch(1, _segments(99), seq=2, checksum=b[2].checksum)
        stream = _FakeStream([b[0], b[1], bad, b[3]])
        stream.replay = replay
        guard = EventGuard(stream)
        delivered = [e for e in guard.events() if isinstance(e, SegmentBatch)]
        assert [e.seq for e in delivered] == [0, 1, 2, 3]
        # The repaired batch is the replay buffer's pristine copy.
        assert delivered[2].segments == b[2].segments
        assert guard.report.counts() == {"corrupt/replayed": 1}

    def test_corrupt_degrades_without_replay(self):
        b = _batches(4)
        bad = SegmentBatch(1, _segments(99), seq=2, checksum=b[2].checksum)
        seqs, guard = _guarded_seqs(_FakeStream([b[0], b[1], bad, b[3]]))
        assert seqs == [0, 1, 3]
        assert guard.report.counts() == {"corrupt/degraded": 1}

    def test_columnar_bit_flip_detected_and_replayed(self):
        # Corruption below the object layer: one byte flipped inside
        # the packed buffer itself.  The single-pass CRC over the
        # columnar payload must catch it and the replay buffer must
        # restore the pristine bytes.
        b = _batches(4)
        replay = ReplayBuffer()
        for batch in b:
            replay.store(batch)
        data = b[2].data.copy()
        raw = data.view(np.uint8)
        raw[5] ^= 0x40
        bad = SegmentBatch(1, data, seq=2, checksum=b[2].checksum)
        stream = _FakeStream([b[0], b[1], bad, b[3]])
        stream.replay = replay
        guard = EventGuard(stream)
        delivered = [e for e in guard.events() if isinstance(e, SegmentBatch)]
        assert [e.seq for e in delivered] == [0, 1, 2, 3]
        assert np.array_equal(delivered[2].data, b[2].data)
        assert guard.report.counts() == {"corrupt/replayed": 1}

    def test_columnar_cold_flip_is_not_corruption(self):
        # The cold column is metadata outside the checksummed payload;
        # flipping it must not trip the guard.
        b = _batches(3)
        data = b[1].data.copy()
        data["cold"] ^= 1
        tweaked = SegmentBatch(1, data, seq=1, checksum=b[1].checksum)
        seqs, guard = _guarded_seqs(_FakeStream([b[0], tweaked, b[2]]))
        assert seqs == [0, 1, 2]
        assert not guard.report

    def test_legacy_unsequenced_batches_pass_through(self):
        legacy = SegmentBatch(1, _segments(0))  # seq == -1, checksum 0
        seqs, guard = _guarded_seqs(_FakeStream([legacy, legacy]))
        guarded = list(EventGuard(_FakeStream([legacy, legacy])).events())
        assert len(guarded) == 2
        assert not guard.report

    def test_max_holdback_bounds_pending(self):
        # A gap never filled forces the hold-back window to overflow and
        # degrade rather than buffer unboundedly.
        b = _batches(70)
        stream = _FakeStream([b[0]] + b[2:])  # seq 1 lost, 68 pending max
        guard = EventGuard(stream, max_holdback=16)
        delivered = [
            e.seq for e in guard.events() if isinstance(e, SegmentBatch)
        ]
        assert delivered == [0] + list(range(2, 70))
        assert guard.report.counts()["gap/degraded"] == 1


class TestEndToEnd:
    def test_guard_restores_bit_identical_segments(self):
        plan = FaultPlan(seed=11, drop_rate=0.15, duplicate_rate=0.1,
                         reorder_rate=0.1)
        clean = [
            e.segments for e in make_stream(40)
            if isinstance(e, SegmentBatch)
        ]
        faulty = inject_stream_faults(make_stream(40), plan)
        guard = EventGuard(faulty)
        recovered = [
            e.segments for e in guard.events() if isinstance(e, SegmentBatch)
        ]
        assert recovered == clean
        assert guard.report  # something was actually injected
