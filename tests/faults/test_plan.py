"""FaultPlan validation, serialisation, and the per-site RNG contract."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, FaultReport, site_rng


class TestValidation:
    def test_defaults_are_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert not plan.cluster_active
        assert not plan.stream_active
        assert not plan.perf_active

    @pytest.mark.parametrize("field", [
        "task_failure_rate", "straggler_rate", "gc_pause_rate",
        "counter_glitch_rate", "drop_rate", "duplicate_rate", "reorder_rate",
    ])
    def test_rates_bounded(self, field):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(**{field: -0.1})

    def test_slowdown_floor(self):
        with pytest.raises(ValueError, match="straggler_slowdown"):
            FaultPlan(straggler_slowdown=0.5)

    def test_reorder_depth_floor(self):
        with pytest.raises(ValueError, match="reorder_depth"):
            FaultPlan(reorder_depth=0)

    def test_activity_predicates(self):
        assert FaultPlan(task_failure_rate=0.1).cluster_active
        assert FaultPlan(drop_rate=0.1).stream_active
        assert FaultPlan(counter_glitch_rate=0.1).perf_active
        assert not FaultPlan(task_failure_rate=0.1).stream_active

    def test_uniform_sets_every_injection_rate(self):
        plan = FaultPlan.uniform(0.07, seed=9)
        assert plan.seed == 9
        assert plan.cluster_active and plan.stream_active
        for name in ("task_failure_rate", "straggler_rate", "gc_pause_rate",
                     "drop_rate", "duplicate_rate", "reorder_rate"):
            assert getattr(plan, name) == 0.07


class TestSerialisation:
    def test_json_roundtrip(self):
        plan = FaultPlan.uniform(0.05, seed=3)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = FaultPlan(seed=2, drop_rate=0.2, reorder_depth=5)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"seed": 1, "typo_rate": 0.5})


class TestSiteRng:
    def test_same_site_replays(self):
        a = site_rng(7, "stream", 3, 11).random(4)
        b = site_rng(7, "stream", 3, 11).random(4)
        assert (a == b).all()

    def test_sites_independent(self):
        a = site_rng(7, "stream", 3, 11).random(4)
        b = site_rng(7, "spark.task", 3, 11).random(4)
        c = site_rng(7, "stream", 3, 12).random(4)
        d = site_rng(8, "stream", 3, 11).random(4)
        assert not (a == b).all()
        assert not (a == c).all()
        assert not (a == d).all()

    def test_negative_coords_fold(self):
        # Thread/stage ids of -1 must not crash SeedSequence.
        assert site_rng(0, "perf.glitch", -1).random() >= 0.0


class TestFaultReport:
    def test_counts_sorted_histogram(self):
        report = FaultReport()
        report.record("stream", "drop", "injected")
        report.record("stream", "drop", "injected")
        report.record("spark.task", "straggler", "absorbed")
        assert report.counts() == {
            "drop/injected": 2, "straggler/absorbed": 1,
        }
        assert "2" in report.summary() or "3 faults" in report.summary()

    def test_roundtrip_and_merge(self):
        a = FaultReport()
        a.record("stream", "gap", "replayed", thread_id=1, index=4)
        b = FaultReport.from_dict(a.to_dict())
        assert b.events == a.events
        a.merge(b)
        assert len(a) == 2

    def test_merged_meta_noop_when_empty(self):
        meta = {"k": 1}
        FaultReport.merged_meta(meta, FaultReport())
        assert meta == {"k": 1}

    def test_merged_meta_accumulates(self):
        meta: dict = {}
        r = FaultReport()
        r.record("stream", "drop", "injected")
        FaultReport.merged_meta(meta, r)
        FaultReport.merged_meta(meta, r)
        assert meta["fault_report"]["n_events"] == 2
