"""Fleet-wide disaster recovery: kill all, wipe the disk, restore from peer.

The replication plane's acceptance drill (ISSUE 9): a fleet of ≥8
streaming jobs with replication on is killed mid-stream, the local
store is destroyed, and the whole fleet is restored from the peer —
byte-identical to the uninterrupted references.  With a flaky
transport the campaign must end in either verified replication or
explicit recorded degradation, never silent loss.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import FleetPlan, fleet_wipe_and_restore
from repro.runtime.replicate import (
    FilesystemPeer,
    FlakyPeer,
    FlakyPlan,
    RetryPolicy,
    iter_inflight,
)
from repro.runtime.runner import RunSpec
from repro.runtime.store import ArtifactStore
from tests.conftest import TEST_SCALE, TEST_SIMPROF_CONFIG

NO_BACKOFF = RetryPolicy(retries=3, backoff=0.0)


def _fleet(n):
    """n streaming jobs across workloads, frameworks and seeds."""
    frameworks = ("spark", "hadoop")
    specs = []
    for i in range(n):
        specs.append(
            RunSpec(
                ("wc", "grep")[(i // 2) % 2],
                frameworks[i % 2],
                scale=TEST_SCALE,
                seed=i // 4,
                simprof=TEST_SIMPROF_CONFIG,
            )
        )
    return specs


class TestFleetPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetPlan(checkpoint_every=0)


class TestFleetWipeAndRestore:
    def test_eight_jobs_restore_byte_identical(self, tmp_path):
        """The headline drill: 8 jobs, reliable peer, total local loss."""
        store = ArtifactStore(tmp_path / "local")
        peer = FilesystemPeer(tmp_path / "peer")
        outcome = fleet_wipe_and_restore(
            _fleet(8), store, peer, FleetPlan(seed=3), retry=NO_BACKOFF
        )
        assert len(outcome.jobs) == 8
        assert outcome.byte_identical
        assert outcome.accounted_for
        assert outcome.missing == []
        # Replication drained fully: every chain write reached the peer.
        assert outcome.replication.lag == 0
        assert not outcome.replication.degraded
        assert outcome.replication.pushed + outcome.replication.present == (
            outcome.replication.submitted
        )
        # The disk really died, and recovery really came from the peer.
        assert outcome.wiped_files > 0
        assert outcome.pulled_entries > 0
        # Completed jobs retired their journal entries everywhere local.
        assert list(iter_inflight(store)) == []

    def test_flaky_transport_never_loses_silently(self, tmp_path):
        """Drops, stalls and corruption: verified replication or
        explicit recorded degradation — the accounted_for contract."""
        store = ArtifactStore(tmp_path / "local")
        flaky = FlakyPeer(
            FilesystemPeer(tmp_path / "peer"),
            FlakyPlan(
                seed=11,
                drop_rate=0.15,
                stall_rate=0.05,
                stall_seconds=0.0,
                corrupt_rate=0.1,
            ),
        )
        outcome = fleet_wipe_and_restore(
            _fleet(4),
            store,
            flaky,
            FleetPlan(seed=1),
            retry=RetryPolicy(retries=6, backoff=0.0),
        )
        assert len(outcome.jobs) == 4
        assert outcome.accounted_for
        # The transport genuinely misbehaved during the campaign.
        assert flaky.faults
        # Corrupted transfers were caught, never acknowledged: anything
        # the peer holds is digest-verified, so every restored job is
        # byte-identical even if some chain tails were lost to drops.
        for job in outcome.jobs:
            if job.restored_digest is not None:
                assert job.restored_digest == job.reference_digest

    def test_campaign_is_seeded_and_replayable(self, tmp_path):
        kills = []
        for run in range(2):
            store = ArtifactStore(tmp_path / f"local{run}")
            peer = FilesystemPeer(tmp_path / f"peer{run}")
            outcome = fleet_wipe_and_restore(
                _fleet(2), store, peer, FleetPlan(seed=9), retry=NO_BACKOFF
            )
            assert outcome.byte_identical
            kills.append([j.kill_position for j in outcome.jobs])
        assert kills[0] == kills[1]
