"""Workload correctness and registry tests.

Every workload must compute the *right answer* on its synthetic input —
the phase behaviour SimProf analyses is only meaningful if the
dataflows really run.  Graph results are validated against networkx.
"""

from __future__ import annotations

import re
from collections import Counter

import networkx as nx
import numpy as np
import pytest

from repro.datagen.seeds import GRAPH_INPUTS
from repro.workloads import (
    WORKLOADS,
    WorkloadInput,
    all_labels,
    get_workload,
    label_of,
    run_workload,
)
from repro.workloads.grep import DEFAULT_PATTERN
from repro.workloads.graph_common import (
    adjacency_lines,
    parse_adjacency_line,
    symmetrize,
)

SCALE = 0.05


class TestRegistry:
    def test_six_workloads(self):
        assert len(WORKLOADS) == 6
        assert set(WORKLOADS) == {"sort", "wc", "grep", "bayes", "cc", "rank"}

    def test_get_by_abbrev_and_name(self):
        assert get_workload("wc").name == "wordcount"
        assert get_workload("wordcount").abbrev == "wc"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("tpch")

    def test_labels(self):
        assert label_of("wc", "hadoop") == "wc_hp"
        assert label_of("cc", "spark") == "cc_sp"
        assert len(all_labels()) == 12

    def test_unknown_framework(self):
        with pytest.raises(ValueError):
            get_workload("wc").execute("flink", WorkloadInput())

    def test_workload_input_validation(self):
        with pytest.raises(ValueError):
            WorkloadInput(scale=0)


class TestGraphCommonHelpers:
    def test_symmetrize(self):
        edges = np.array([[0, 1], [2, 3]])
        sym = symmetrize(edges)
        as_set = {tuple(e) for e in sym}
        assert as_set == {(0, 1), (1, 0), (2, 3), (3, 2)}

    def test_adjacency_roundtrip(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        lines = adjacency_lines(edges, 3, "init")
        node, state, neighbors = parse_adjacency_line(lines[0])
        assert node == 0
        assert state == "init"
        assert neighbors == [1, 2]

    def test_adjacency_empty_neighbors(self):
        lines = adjacency_lines(np.empty((0, 2), dtype=np.int64), 2, "x")
        _node, _state, neighbors = parse_adjacency_line(lines[1])
        assert neighbors == []


class TestWordCountCorrectness:
    @pytest.mark.parametrize("framework", ["spark", "hadoop"])
    def test_counts_match_input(self, framework):
        wl = get_workload("wc")
        inp = WorkloadInput(scale=SCALE, seed=0)
        trace = wl.execute(framework, inp)
        fs_lines: list[str] = []
        # Re-synthesise the same input and recount it directly.
        from repro.datagen.text import TextSpec, synthesize_text
        from repro.workloads.wordcount import BASE_LINES, VOCAB, WORDS_PER_LINE

        lines = synthesize_text(
            TextSpec(
                n_lines=max(1000, int(BASE_LINES * SCALE)),
                vocab_size=VOCAB,
                words_per_line=WORDS_PER_LINE,
                zipf_s=1.02,
            ),
            0,
        )
        expected = Counter(w for l in lines for w in l.split())
        assert trace.meta["hdfs_bytes_written"] > 0
        assert sum(expected.values()) > 0  # sanity on the reference


class TestOutputsOnSharedRuns:
    """Deeper correctness checks on one shared run per workload."""

    def test_grep_spark_selects_matching_lines(self):
        from repro.spark.context import SparkConfig, SparkContext

        wl = get_workload("grep")
        ctx = SparkContext(SparkConfig(seed=0))
        meta = wl.prepare_input(ctx.fs, WorkloadInput(scale=SCALE, seed=0))
        wl.run_spark(ctx, meta)
        out = []
        for path in ctx.fs.ls("/out/grep/*"):
            out.extend(ctx.fs.read_all(path))
        regex = re.compile(DEFAULT_PATTERN)
        assert out, "grep selected nothing"
        assert all(regex.search(l) for l in out)
        total = sum(1 for l in ctx.fs.read_all(meta["path"]) if regex.search(l))
        assert len(out) == total

    def test_sort_spark_orders_globally(self):
        from repro.spark.context import SparkConfig, SparkContext

        wl = get_workload("sort")
        ctx = SparkContext(SparkConfig(seed=0))
        meta = wl.prepare_input(ctx.fs, WorkloadInput(scale=SCALE, seed=0))
        wl.run_spark(ctx, meta)
        keys = []
        for path in ctx.fs.ls("/out/sort/*"):
            for line in ctx.fs.read_all(path):
                keys.append(line.split("\t")[0])
        assert keys == sorted(keys)
        assert len(keys) == meta["n_lines"]

    def test_wordcount_hadoop_counts(self):
        from repro.hadoop.runtime import HadoopCluster, HadoopClusterConfig

        wl = get_workload("wc")
        cluster = HadoopCluster(HadoopClusterConfig(seed=0))
        meta = wl.prepare_input(cluster.fs, WorkloadInput(scale=SCALE, seed=0))
        expected = Counter(
            w for l in cluster.fs.read_all(meta["path"]) for w in l.split()
        )
        cluster.fs.bytes_read = 0
        wl.run_hadoop(cluster, meta)
        got: Counter = Counter()
        for path in cluster.fs.ls("/out/wordcount/*"):
            for line in cluster.fs.read_all(path):
                word, count = line.split("\t")
                got[word] += int(count)
        assert got == expected

    def test_bayes_spark_feature_counts(self):
        from repro.spark.context import SparkConfig, SparkContext
        from repro.workloads.bayes import parse_labeled

        wl = get_workload("bayes")
        ctx = SparkContext(SparkConfig(seed=0))
        meta = wl.prepare_input(ctx.fs, WorkloadInput(scale=SCALE, seed=0))
        wl.run_spark(ctx, meta)
        expected: Counter = Counter()
        for line in ctx.fs.read_all(meta["path"]):
            label, words = parse_labeled(line)
            for w in words:
                expected[f"{label}:{w}"] += 1
        got = {}
        for path in ctx.fs.ls("/out/bayes/features/*"):
            for line in ctx.fs.read_all(path):
                k, v = line.rsplit("\t", 1)
                got[k] = int(v)
        assert got == dict(expected)


class TestConnectedComponentsCorrectness:
    def _expected_labels(self, edges: np.ndarray, n: int) -> dict[int, int]:
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(map(tuple, edges))
        labels = {}
        for comp in nx.connected_components(g):
            root = min(comp)
            for v in comp:
                labels[v] = root
        return labels

    def test_spark_cc_matches_networkx(self):
        from repro.spark.context import SparkConfig, SparkContext

        wl = get_workload("cc")
        ctx = SparkContext(SparkConfig(seed=0))
        meta = wl.prepare_input(ctx.fs, WorkloadInput(scale=SCALE, seed=0))
        wl.run_spark(ctx, meta)
        expected = self._expected_labels(meta["edges"], meta["n_vertices"])
        got = {}
        for path in ctx.fs.ls("/out/cc/*"):
            for line in ctx.fs.read_all(path):
                v, l = line.split("\t")
                got[int(v)] = int(l)
        assert got == expected

    def test_hadoop_cc_matches_networkx(self):
        from repro.hadoop.runtime import HadoopCluster, HadoopClusterConfig
        from repro.workloads.graph_common import (
            HADOOP_SCALE_DELTA,
            resolve_graph,
        )

        wl = get_workload("cc")
        cluster = HadoopCluster(HadoopClusterConfig(seed=0))
        inp = WorkloadInput(scale=SCALE, seed=0)
        meta = wl.prepare_input(cluster.fs, inp)
        wl.run_hadoop(cluster, meta)
        _g, h_edges, h_n = resolve_graph(inp, scale_delta=HADOOP_SCALE_DELTA)
        expected = self._expected_labels(symmetrize(h_edges), h_n)
        # Read the final iteration's labels.
        final = sorted(cluster.fs.ls("/in/cc/iter*"))[-1]
        got = {}
        for line in cluster.fs.read_all(final):
            node, state, _n = parse_adjacency_line(line)
            got[node] = int(state)
        assert got == expected


class TestPageRankCorrectness:
    def test_spark_pagerank_close_to_networkx(self):
        from repro.spark.context import SparkConfig, SparkContext
        from repro.workloads.pagerank import DAMPING, ITERATIONS

        wl = get_workload("rank")
        ctx = SparkContext(SparkConfig(seed=0))
        meta = wl.prepare_input(ctx.fs, WorkloadInput(scale=SCALE, seed=0))
        wl.run_spark(ctx, meta)
        got = {}
        for path in ctx.fs.ls("/out/rank/*"):
            for line in ctx.fs.read_all(path):
                v, r = line.split("\t")
                got[int(v)] = float(r)
        # Reference: same fixed-point iteration (the classic "Spark
        # PageRank" recurrence, contributions only along real edges).
        edges = meta["edges"]
        n = meta["n_vertices"]
        outdeg = np.maximum(np.bincount(edges[:, 0], minlength=n), 1).astype(float)
        ranks = np.ones(n)
        for _ in range(ITERATIONS):
            contribs = np.zeros(n)
            np.add.at(contribs, edges[:, 1], ranks[edges[:, 0]] / outdeg[edges[:, 0]])
            ranks = (1 - DAMPING) + DAMPING * contribs
        for v in range(n):
            assert got[v] == pytest.approx(ranks[v], abs=1e-4)

    def test_ranks_sum_reasonable(self):
        trace = run_workload("rank", "spark", scale=SCALE, seed=0)
        assert trace.total_instructions > 0


class TestTraceShapes:
    @pytest.mark.parametrize("name,framework", [
        ("wc", "spark"), ("wc", "hadoop"),
        ("grep", "spark"), ("sort", "hadoop"),
    ])
    def test_run_workload_produces_units(self, name, framework):
        trace = run_workload(name, framework, scale=SCALE, seed=0)
        assert trace.framework == framework
        assert trace.n_threads >= 1
        # Enough instructions for the test-scale profiler (10M units).
        assert trace.longest_thread().total_instructions > 100_000_000

    def test_graph_input_selection_changes_trace(self):
        a = run_workload("cc", "spark", scale=SCALE, seed=0,
                         graph=GRAPH_INPUTS["Road"], input_name="Road")
        b = run_workload("cc", "spark", scale=SCALE, seed=0,
                         graph=GRAPH_INPUTS["Facebook"], input_name="Facebook")
        assert a.input_name == "Road"
        assert a.total_instructions != b.total_instructions

    def test_determinism(self):
        t1 = run_workload("wc", "spark", scale=SCALE, seed=0)
        t2 = run_workload("wc", "spark", scale=SCALE, seed=0)
        assert t1.total_instructions == t2.total_instructions
        assert t1.total_cycles == t2.total_cycles
