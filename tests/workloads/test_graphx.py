"""Unit tests for the GraphX-style layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spark.context import SparkConfig, SparkContext
from repro.workloads.graphx import (
    CHUNK_EDGES,
    GraphXGraph,
    _chunk_edges,
    pregel_step,
)


@pytest.fixture()
def ctx():
    return SparkContext(SparkConfig(n_executors=2, default_parallelism=2))


def star_graph(n: int) -> np.ndarray:
    """Node 0 points at everyone; everyone points back."""
    out_edges = np.array([[0, i] for i in range(1, n)])
    in_edges = np.array([[i, 0] for i in range(1, n)])
    return np.vstack([out_edges, in_edges])


class TestChunking:
    def test_partitions_by_src(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        chunked = _chunk_edges(edges, 2)
        assert len(chunked) == 2
        for p, chunks in enumerate(chunked):
            for chunk in chunks:
                if chunk.n_edges:
                    assert (chunk.src % 2 == p).all()

    def test_chunk_size_bound(self):
        edges = np.array([[0, 1]] * (CHUNK_EDGES * 2 + 10))
        chunked = _chunk_edges(edges, 1)
        sizes = [c.n_edges for c in chunked[0]]
        assert max(sizes) <= CHUNK_EDGES
        assert sum(sizes) == len(edges)

    def test_empty_partition_gets_placeholder(self):
        edges = np.array([[0, 1]])  # src 0 -> partition 0 only
        chunked = _chunk_edges(edges, 2)
        assert chunked[1][0].n_edges == 0


class TestGraphXGraph:
    def test_out_degree(self, ctx):
        edges = star_graph(5)
        g = GraphXGraph(ctx, edges, 5)
        assert g.out_degree[0] == 4
        assert (g.out_degree[1:] == 1).all()

    def test_edge_rdd_materialises(self, ctx):
        g = GraphXGraph(ctx, star_graph(5), 5)
        records = g.edges.collect()
        total = sum(chunk.n_edges for _pid, chunk in records)
        assert total == 8


class TestPregelStep:
    def test_min_propagation_on_star(self, ctx):
        """One min-propagation superstep on a star: everyone hears 0's
        label (0), and node 0 hears the minimum of the leaves (1)."""
        n = 6
        g = GraphXGraph(ctx, star_graph(n), n)
        labels = np.arange(n, dtype=np.float64)
        active = np.ones(n, dtype=bool)
        agg, received = pregel_step(
            g,
            labels,
            active,
            gather=lambda src, vals: vals,
            reduce_ufunc=np.minimum,
            reduce_identity=np.inf,
            frames_tag="ConnectedComponents",
        )
        assert received.all()
        assert (agg[1:] == 0).all()
        assert agg[0] == 1

    def test_inactive_sources_send_nothing(self, ctx):
        n = 4
        g = GraphXGraph(ctx, star_graph(n), n)
        labels = np.arange(n, dtype=np.float64)
        active = np.zeros(n, dtype=bool)
        active[1] = True  # only leaf 1 speaks
        agg, received = pregel_step(
            g,
            labels,
            active,
            gather=lambda src, vals: vals,
            reduce_ufunc=np.minimum,
            reduce_identity=np.inf,
            frames_tag="ConnectedComponents",
        )
        assert received[0]  # node 0 heard from leaf 1
        assert not received[2:].any()

    def test_sum_aggregation(self, ctx):
        """PageRank-style: node 0 receives the sum of leaf shares."""
        n = 4
        g = GraphXGraph(ctx, star_graph(n), n)
        ranks = np.ones(n, dtype=np.float64)
        outdeg = np.maximum(g.out_degree, 1.0)
        agg, _ = pregel_step(
            g,
            ranks,
            np.ones(n, dtype=bool),
            gather=lambda src, vals: vals / outdeg[src],
            reduce_ufunc=np.add,
            reduce_identity=0.0,
            frames_tag="PageRank",
        )
        # Each of 3 leaves has out-degree 1 and sends 1.0 to node 0.
        assert agg[0] == pytest.approx(3.0)
        # Node 0 sends 1/3 to each leaf.
        assert agg[1] == pytest.approx(1 / 3)

    def test_graphx_stacks_appear_in_trace(self, ctx):
        n = 8
        g = GraphXGraph(ctx, star_graph(n), n)
        labels = np.arange(n, dtype=np.float64)
        pregel_step(
            g,
            labels,
            np.ones(n, dtype=bool),
            gather=lambda src, vals: vals,
            reduce_ufunc=np.minimum,
            reduce_identity=np.inf,
            frames_tag="ConnectedComponents",
        )
        fqns = {ref.fqn for ref in ctx.registry.all_refs()}
        assert any("aggregateMessages" in f for f in fqns)
        assert any("aggregateUsingIndex" in f for f in fqns)
        assert any("shipVertexAttributes" in f for f in fqns)
        assert any("innerJoin" in f for f in fqns)
