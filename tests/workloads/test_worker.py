"""Worker-process streaming: transport selection and bit-identity.

``stream_in_worker`` must be indistinguishable from an in-process
``run_workload_stream`` — same units, same digest, and on faulty
streams the same fault report — whichever transport carries the
events across the process boundary.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.pipeline import SimProf
from repro.faults import FaultPlan
from repro.jvm.stream import SegmentBatch
from repro.workloads import (
    resolve_transport,
    run_workload_stream,
    shm_available,
    stream_in_worker,
)
from repro.workloads.worker import recv_stream_queued, send_stream_queued
from tests.conftest import TEST_SCALE, TEST_SIMPROF_CONFIG

FAULTY = FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.2, reorder_rate=0.1)


class _LocalQueue:
    """Duck-typed queue: send/recv of the queued transport in-process."""

    def __init__(self) -> None:
        self._items: deque = deque()

    def put(self, item) -> None:
        self._items.append(item)

    def get(self):
        return self._items.popleft()


def _profile_digest(stream):
    return SimProf(TEST_SIMPROF_CONFIG).profile_stream(stream).content_digest()


def _inproc_stream(faults=None):
    return run_workload_stream(
        "wc", "spark", scale=TEST_SCALE, seed=0, faults=faults
    )


class TestResolveTransport:
    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_explicit_choice_passes_through(self):
        assert resolve_transport("queued") == "queued"
        assert resolve_transport("shm") == "shm"
        # Even a faulty plan does not override an explicit choice.
        assert resolve_transport("queued", faults=FAULTY) == "queued"

    def test_auto_avoids_shm_on_faulty_streams(self):
        # Hold-back retention breaks shm's one-event reclamation lag,
        # so auto must fall back to the queued transport.
        assert resolve_transport("auto", faults=FAULTY) == "queued"

    def test_auto_with_clean_stream_matches_availability(self):
        expected = "shm" if shm_available() else "queued"
        assert resolve_transport("auto") == expected
        assert resolve_transport("auto", faults=FaultPlan()) == expected


class TestQueuedTransportInProcess:
    def test_clean_round_trip_is_bit_identical(self):
        want = _profile_digest(_inproc_stream())
        queue = _LocalQueue()
        send_stream_queued(_inproc_stream(), queue)
        assert _profile_digest(recv_stream_queued(queue)) == want

    def test_trailer_completes_the_registry(self):
        queue = _LocalQueue()
        producer = _inproc_stream()
        send_stream_queued(producer, queue)
        stream = recv_stream_queued(queue)
        for _ in stream:
            pass
        # After exhaustion the trailer has patched in the completed
        # context: every method interned during the run is present.
        assert len(stream.registry) == len(producer.registry)
        assert len(stream.stack_table) == len(producer.stack_table)

    def test_faulty_round_trip_repairs_identically(self):
        inproc = _inproc_stream(faults=FAULTY)
        want = _profile_digest(inproc)
        want_report = inproc.fault_report.counts()

        queue = _LocalQueue()
        send_stream_queued(_inproc_stream(faults=FAULTY), queue)
        stream = recv_stream_queued(queue)
        assert _profile_digest(stream) == want
        assert stream.fault_report.counts() == want_report

    def test_recv_rejects_headerless_queue(self):
        queue = _LocalQueue()
        queue.put(("batch", 0, None, 0, 0))
        with pytest.raises(ValueError, match="header"):
            recv_stream_queued(queue)


class TestStreamInWorker:
    @pytest.mark.parametrize("transport", ["queued", "auto"])
    def test_clean_stream_bit_identical(self, transport):
        want = _profile_digest(_inproc_stream())
        stream = stream_in_worker(
            "wc",
            "spark",
            scale=TEST_SCALE,
            seed=0,
            transport=transport,
        )
        assert stream.transport == resolve_transport(transport)
        assert _profile_digest(stream) == want

    def test_faulty_stream_bit_identical_including_report(self):
        inproc = _inproc_stream(faults=FAULTY)
        want = _profile_digest(inproc)
        want_report = inproc.fault_report.counts()

        stream = stream_in_worker(
            "wc",
            "spark",
            scale=TEST_SCALE,
            seed=0,
            faults=FAULTY,
            transport="auto",
        )
        assert stream.transport == "queued"
        assert _profile_digest(stream) == want
        assert stream.fault_report.counts() == want_report

    def test_events_match_in_process_stream(self):
        expected = [
            (event.thread_id, event.seq, event.checksum)
            for event in _inproc_stream()
            if isinstance(event, SegmentBatch)
        ]
        got = [
            (event.thread_id, event.seq, event.checksum)
            for event in stream_in_worker(
                "wc", "spark", scale=TEST_SCALE, seed=0, transport="queued"
            )
            if isinstance(event, SegmentBatch)
        ]
        assert got == expected
