"""Unit, property and statistical tests for stratified sampling
(Section III-C: Eq. 1 allocation, Eq. 4 standard error, size solver)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import (
    optimal_allocation,
    required_sample_size,
    stratified_sample,
    stratified_standard_error,
    z_for_confidence,
)


class TestZScore:
    def test_known_values(self):
        assert z_for_confidence(0.954) == pytest.approx(2.0, abs=0.01)
        assert z_for_confidence(0.997) == pytest.approx(2.97, abs=0.03)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            z_for_confidence(0.0)
        with pytest.raises(ValueError):
            z_for_confidence(1.0)


class TestOptimalAllocation:
    def test_eq1_proportions(self):
        """Allocation follows n_h ∝ N_h σ_h (Eq. 1) up to the floors."""
        N = np.array([100, 100])
        s = np.array([1.0, 3.0])
        alloc = optimal_allocation(N, s, 40)
        assert alloc.sum() == 40
        assert alloc[1] == pytest.approx(30, abs=1)

    def test_minimum_one_per_nonempty_stratum(self):
        N = np.array([1000, 5])
        s = np.array([10.0, 0.0])
        alloc = optimal_allocation(N, s, 10)
        assert alloc[1] >= 1

    def test_empty_stratum_gets_zero(self):
        N = np.array([100, 0, 100])
        s = np.array([1.0, 1.0, 1.0])
        alloc = optimal_allocation(N, s, 10)
        assert alloc[1] == 0

    def test_capped_by_stratum_size(self):
        N = np.array([3, 100])
        s = np.array([100.0, 0.1])
        alloc = optimal_allocation(N, s, 20)
        assert alloc[0] <= 3
        assert alloc.sum() == 20

    def test_zero_variances_fall_back_to_proportional(self):
        N = np.array([300, 100])
        s = np.array([0.0, 0.0])
        alloc = optimal_allocation(N, s, 40)
        assert alloc[0] > alloc[1]
        assert alloc.sum() == 40

    def test_n_exceeding_population_clamped(self):
        N = np.array([5, 5])
        s = np.array([1.0, 1.0])
        alloc = optimal_allocation(N, s, 100)
        assert alloc.sum() == 10

    def test_n_below_stratum_count_raises(self):
        with pytest.raises(ValueError):
            optimal_allocation(np.array([10, 10, 10]), np.ones(3), 2)

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            optimal_allocation(np.array([-1, 5]), np.ones(2), 3)
        with pytest.raises(ValueError):
            optimal_allocation(np.array([5, 5]), np.array([1.0, -1.0]), 3)

    @given(
        sizes=st.lists(st.integers(0, 200), min_size=1, max_size=8),
        stds=st.data(),
        n=st.integers(1, 150),
    )
    @settings(max_examples=60)
    def test_invariants(self, sizes, stds, n):
        N = np.array(sizes, dtype=np.int64)
        s = np.array(
            stds.draw(
                st.lists(
                    st.floats(0, 10, allow_nan=False),
                    min_size=len(sizes),
                    max_size=len(sizes),
                )
            )
        )
        n_min = int((N > 0).sum())
        if n < n_min:
            with pytest.raises(ValueError):
                optimal_allocation(N, s, n)
            return
        alloc = optimal_allocation(N, s, n)
        assert (alloc >= 0).all()
        assert (alloc <= N).all()
        assert alloc.sum() == min(n, N.sum())
        assert ((N > 0) <= (alloc > 0)).all()  # non-empty => sampled


class TestStandardError:
    def test_eq4_hand_computed(self):
        N = np.array([80, 20])
        n = np.array([8, 2])
        s = np.array([0.5, 1.0])
        # (1/100) * sqrt(80^2*(1-0.1)*0.25/8 + 20^2*(1-0.1)*1/2)
        expected = np.sqrt(6400 * 0.9 * 0.25 / 8 + 400 * 0.9 * 1.0 / 2) / 100
        got = stratified_standard_error(N, n, s)
        assert got == pytest.approx(expected)

    def test_census_has_zero_error(self):
        N = np.array([10, 20])
        got = stratified_standard_error(N, N, np.array([1.0, 2.0]))
        assert got == pytest.approx(0.0)

    def test_empty_population_raises(self):
        with pytest.raises(ValueError):
            stratified_standard_error(np.zeros(2), np.zeros(2), np.ones(2))

    def test_matches_monte_carlo(self):
        """The analytic SE matches the empirical spread of the
        stratified estimator over many draws."""
        rng = np.random.default_rng(0)
        cpi = np.concatenate([
            rng.normal(1.0, 0.2, 300),
            rng.normal(3.0, 0.6, 100),
        ])
        assignments = np.array([0] * 300 + [1] * 100)
        estimates = []
        for i in range(400):
            est = stratified_sample(
                assignments, cpi, 24, rng=np.random.default_rng(1000 + i)
            )
            estimates.append(est.estimate)
        analytic = stratified_sample(
            assignments, cpi, 24, rng=np.random.default_rng(5)
        ).standard_error
        empirical = np.std(estimates)
        assert empirical == pytest.approx(analytic, rel=0.3)


class TestStratifiedSample:
    @pytest.fixture()
    def population(self):
        rng = np.random.default_rng(1)
        cpi = np.concatenate([
            rng.normal(1.0, 0.05, 200),   # calm phase
            rng.normal(2.0, 0.8, 100),    # wild phase
        ])
        assignments = np.array([0] * 200 + [1] * 100)
        return assignments, cpi

    def test_high_variance_phase_gets_more_points(self, population):
        assignments, cpi = population
        est = stratified_sample(assignments, cpi, 30,
                                rng=np.random.default_rng(0))
        # Phase 1 is 1/3 of the population but much noisier.
        assert est.allocation[1] > est.allocation[0]

    def test_selected_points_belong_to_population(self, population):
        assignments, cpi = population
        est = stratified_sample(assignments, cpi, 20,
                                rng=np.random.default_rng(0))
        assert est.sample_size == 20
        assert len(np.unique(est.selected)) == 20
        assert est.selected.max() < len(cpi)

    def test_estimate_unbiased(self, population):
        assignments, cpi = population
        estimates = [
            stratified_sample(
                assignments, cpi, 30, rng=np.random.default_rng(i)
            ).estimate
            for i in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(cpi.mean(), rel=0.02)

    def test_confidence_interval_widens_with_confidence(self, population):
        assignments, cpi = population
        est = stratified_sample(assignments, cpi, 20,
                                rng=np.random.default_rng(0))
        lo95, hi95 = est.confidence_interval(0.95)
        lo997, hi997 = est.confidence_interval(0.997)
        assert hi997 - lo997 > hi95 - lo95
        assert lo95 < est.estimate < hi95

    def test_ci_coverage(self, population):
        """~99.7% of intervals cover the true mean."""
        assignments, cpi = population
        truth = cpi.mean()
        covered = 0
        trials = 300
        for i in range(trials):
            est = stratified_sample(
                assignments, cpi, 30, rng=np.random.default_rng(10_000 + i)
            )
            lo, hi = est.confidence_interval(0.997)
            covered += lo <= truth <= hi
        assert covered / trials > 0.97

    def test_mismatched_inputs_raise(self):
        with pytest.raises(ValueError):
            stratified_sample(np.zeros(5, dtype=int), np.ones(4), 2)


class TestRequiredSampleSize:
    @pytest.fixture()
    def strata(self):
        N = np.array([500, 300, 200])
        s = np.array([0.1, 0.4, 0.9])
        return N, s

    def test_solver_meets_target(self, strata):
        N, s = strata
        mean = 1.5
        for rel in (0.05, 0.02):
            n = required_sample_size(N, s, mean, relative_error=rel)
            alloc = optimal_allocation(N, s, n)
            se = stratified_standard_error(N, alloc, s)
            z = z_for_confidence(0.997)
            assert z * se <= rel * mean + 1e-12

    def test_solver_is_minimal(self, strata):
        N, s = strata
        mean = 1.5
        n = required_sample_size(N, s, mean, relative_error=0.05)
        if n > int((N > 0).sum()):
            alloc = optimal_allocation(N, s, n - 1)
            se = stratified_standard_error(N, alloc, s)
            assert z_for_confidence(0.997) * se > 0.05 * mean

    def test_tighter_error_needs_more_points(self, strata):
        N, s = strata
        n5 = required_sample_size(N, s, 1.5, relative_error=0.05)
        n2 = required_sample_size(N, s, 1.5, relative_error=0.02)
        assert n2 >= n5

    def test_zero_variance_population_needs_minimum(self):
        N = np.array([100, 50])
        s = np.zeros(2)
        n = required_sample_size(N, s, 1.0, relative_error=0.05)
        assert n == 2  # one per stratum

    def test_rejects_bad_error(self, strata):
        N, s = strata
        with pytest.raises(ValueError):
            required_sample_size(N, s, 1.0, relative_error=0.0)
