"""Tests for the SimProf × systematic-sampling extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.systematic import (
    SystematicConfig,
    SystematicSimProf,
    unit_cpi_systematic,
)
from repro.jvm.perf import PerfCounterReader
from tests.helpers import make_registry_with_stacks, make_trace


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystematicConfig(detailed_size=0)
        with pytest.raises(ValueError):
            SystematicConfig(detailed_size=100, period=50)
        with pytest.raises(ValueError):
            SystematicConfig(warmup_size=-1)
        with pytest.raises(ValueError):
            SystematicConfig(warmup_scale=0)

    def test_cold_bias_decays_with_warmup(self):
        short = SystematicConfig(warmup_size=0)
        long = SystematicConfig(warmup_size=100_000)
        assert long.cold_bias < short.cold_bias
        assert short.cold_bias == pytest.approx(short.cold_start_penalty)

    def test_budget_and_speedup(self):
        cfg = SystematicConfig(detailed_size=10_000, period=1_000_000,
                               warmup_size=50_000)
        unit = 100_000_000
        assert cfg.detailed_instructions(unit) == 100 * 60_000
        assert cfg.speedup(unit) == pytest.approx(unit / (100 * 60_000))


class TestUnitCpiSystematic:
    @pytest.fixture()
    def reader(self):
        registry, table, stacks = make_registry_with_stacks(n_stacks=2)
        # Unit 0: CPI 1.0; unit 1: CPI 3.0 (each 1M instructions).
        trace = make_trace(
            [(stacks[0], 1_000_000, 1.0), (stacks[1], 1_000_000, 3.0)], table
        )
        return PerfCounterReader(trace)

    def test_recovers_uniform_unit_cpi(self, reader):
        cfg = SystematicConfig(
            detailed_size=1_000, period=100_000, warmup_size=0,
            cold_start_penalty=0.0,
        )
        est = unit_cpi_systematic(reader, 0, 1_000_000, cfg,
                                  np.random.default_rng(0))
        assert est == pytest.approx(1.0, rel=1e-6)
        est2 = unit_cpi_systematic(reader, 1_000_000, 1_000_000, cfg,
                                   np.random.default_rng(0))
        assert est2 == pytest.approx(3.0, rel=1e-6)

    def test_cold_bias_inflates(self, reader):
        cfg = SystematicConfig(
            detailed_size=1_000, period=100_000, warmup_size=0,
            cold_start_penalty=0.2,
        )
        est = unit_cpi_systematic(reader, 0, 1_000_000, cfg,
                                  np.random.default_rng(0))
        assert est == pytest.approx(1.2, rel=1e-6)

    def test_random_offset_varies_by_rng(self, reader):
        cfg = SystematicConfig(detailed_size=1_000, period=300_000,
                               warmup_size=0, cold_start_penalty=0.0)
        a = unit_cpi_systematic(reader, 0, 1_000_000, cfg,
                                np.random.default_rng(1))
        b = unit_cpi_systematic(reader, 0, 1_000_000, cfg,
                                np.random.default_rng(2))
        # Same uniform unit => same CPI, whatever the offset.
        assert a == pytest.approx(b)


class TestSystematicSimProf:
    def test_end_to_end_on_workload(self, wc_spark_trace, simprof_tool):
        job = simprof_tool.profile(wc_spark_trace)
        model = simprof_tool.form_phases(job)
        points = simprof_tool.select_points(job, model, 12)
        reader = PerfCounterReader(
            wc_spark_trace.thread(job.profile.thread_id)
        )
        cfg = SystematicConfig(detailed_size=10_000, period=500_000)
        result = SystematicSimProf(cfg).evaluate(
            job, model, reader, points, rng=np.random.default_rng(0)
        )
        assert result.speedup > 1
        assert result.added_error < 0.10
        assert result.detailed_instructions == (
            points.sample_size * cfg.detailed_instructions(job.profile.unit_size)
        )
        # Combined error stays sane.
        assert result.error < 0.25
