"""Streaming pipeline: bit-exact parity with the batch path.

The contract the refactor promises: under one configuration and seed,
``analyze_stream`` over a live run produces byte-identical unit
vectors, phase assignments and simulation points to ``analyze`` over
the materialised trace of the same run — on every substrate.  Plus the
O(active-unit) memory guarantee and the online (approximate) mode.
"""

from __future__ import annotations

import tracemalloc
from typing import Iterator

import numpy as np
import pytest

from repro.core.clustering import OnlineKMeans
from repro.core.features import FeatureSpace, UnitFeaturizer
from repro.core.phases import PhaseModel
from repro.core.profiler import ProfilerConfig, SimProfProfiler, StreamingProfiler
from repro.jvm.job import JobTrace
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    ThreadStart,
    TraceStream,
    trace_to_stream,
)
from repro.jvm.threads import TraceSegment
from repro.workloads import run_workload_stream
from tests.conftest import TEST_SCALE, TEST_SIMPROF_CONFIG
from tests.helpers import PhaseSpec, make_synthetic_profile


def _assert_units_identical(batch_profile, stream_profile):
    assert stream_profile.thread_id == batch_profile.thread_id
    assert len(stream_profile.units) == len(batch_profile.units)
    for b, s in zip(batch_profile.units, stream_profile.units):
        assert b.index == s.index
        assert b.instructions == s.instructions  # exact float equality
        assert b.cycles == s.cycles
        assert b.l1d_misses == s.l1d_misses
        assert b.llc_misses == s.llc_misses
        assert np.array_equal(b.stack_ids, s.stack_ids)
        assert np.array_equal(b.stack_counts, s.stack_counts)


def _assert_results_identical(batch, streamed):
    _assert_units_identical(batch.job.profile, streamed.job.profile)
    assert streamed.model.space.method_fqns == batch.model.space.method_fqns
    assert np.array_equal(streamed.model.centers, batch.model.centers)
    assert np.array_equal(streamed.model.assignments, batch.model.assignments)
    assert streamed.model.silhouette_by_k == batch.model.silhouette_by_k
    assert np.array_equal(streamed.points.selected, batch.points.selected)
    assert streamed.points.estimate == batch.points.estimate


class TestAnalyzeStreamParity:
    """analyze_stream == analyze, bit for bit, per substrate."""

    @pytest.mark.parametrize(
        "workload,framework,trace_fixture",
        [
            ("wc", "spark", "wc_spark_trace"),
            ("wc", "hadoop", "wc_hadoop_trace"),
            ("grep", "spark", "grep_spark_trace"),
        ],
    )
    def test_live_substrates(
        self, request, simprof_tool, workload, framework, trace_fixture
    ):
        trace = request.getfixturevalue(trace_fixture)
        batch = simprof_tool.analyze(trace)
        stream = run_workload_stream(
            workload, framework, scale=TEST_SCALE, seed=0
        )
        streamed = simprof_tool.analyze_stream(stream)
        _assert_results_identical(batch, streamed)

    def test_synthetic_replay_substrate(self, wc_spark_trace, simprof_tool):
        """The third substrate: any materialised trace replayed as a stream."""
        batch = simprof_tool.analyze(wc_spark_trace)
        streamed = simprof_tool.analyze_stream(trace_to_stream(wc_spark_trace))
        _assert_results_identical(batch, streamed)

    def test_explicit_thread_parity(self, wc_spark_trace, simprof_tool):
        tid = wc_spark_trace.longest_thread().thread_id
        batch = simprof_tool.analyze(wc_spark_trace, thread_id=tid)
        streamed = simprof_tool.analyze_stream(
            trace_to_stream(wc_spark_trace), thread_id=tid
        )
        _assert_results_identical(batch, streamed)

    def test_substrate_stream_rebuilds_batch_trace(self, wc_spark_trace):
        """from_stream over a live run equals the batch trace exactly."""
        stream = run_workload_stream("wc", "spark", scale=TEST_SCALE, seed=0)
        rebuilt = JobTrace.from_stream(stream)
        assert rebuilt.n_threads == wc_spark_trace.n_threads
        assert rebuilt.stages == wc_spark_trace.stages
        for orig, copy in zip(wc_spark_trace.traces, rebuilt.traces):
            assert copy.thread_id == orig.thread_id
            assert copy.start_cycle == orig.start_cycle
            assert copy.segments == orig.segments


# -- streaming error paths (messages match the batch path) --------------------


def _tiny_stream(total_instructions: int) -> TraceStream:
    registry = MethodRegistry()
    table = StackTable(registry)
    sid = table.intern(CallStack((registry.intern("a.B", "c"),)))

    def events() -> Iterator:
        yield ThreadStart(5, 0, 0)
        yield SegmentBatch(
            5,
            (
                TraceSegment(
                    sid, OpKind.MAP, total_instructions,
                    total_instructions, 0, 0
                ),
            ),
        )
        yield JobEnd({})

    return TraceStream(
        framework="spark",
        workload="tiny",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        events=events(),
    )


class TestStreamingErrors:
    def test_too_short_thread_matches_batch_message(self):
        cfg = ProfilerConfig(unit_size=1_000_000, snapshot_period=1_000)
        with pytest.raises(ValueError, match="fewer than one sampling unit"):
            StreamingProfiler(cfg).consume(_tiny_stream(999))

    def test_unknown_thread_id_matches_batch_message(self):
        cfg = ProfilerConfig(
            unit_size=1_000, snapshot_period=100, thread_id=99
        )
        with pytest.raises(KeyError, match="no thread 99 in job trace"):
            StreamingProfiler(cfg).consume(_tiny_stream(10_000))

    def test_orphan_segment_batch_rejected(self):
        stream = _tiny_stream(10_000)

        def events() -> Iterator:
            yield SegmentBatch(3, ())

        stream.events = events()
        cfg = ProfilerConfig(unit_size=1_000, snapshot_period=100)
        with pytest.raises(ValueError, match="unknown thread 3"):
            StreamingProfiler(cfg).consume(stream)


# -- memory guard -------------------------------------------------------------


def _lazy_stream(n_units: int, unit_size: int = 200_000) -> TraceStream:
    """A synthetic stream whose segments materialise only when consumed."""
    registry = MethodRegistry()
    table = StackTable(registry)
    root = registry.intern("synthetic.Worker", "run")
    sids = [
        table.intern(CallStack((root, registry.intern("synthetic.Worker", n))))
        for n in ("scan", "hash", "merge")
    ]
    seg_insts = 2_000
    n_segments = n_units * (unit_size // seg_insts)

    def events() -> Iterator:
        yield ThreadStart(1, 0, 0)
        for i in range(n_segments):
            yield SegmentBatch(
                1,
                (
                    TraceSegment(
                        sids[i % 3], OpKind.MAP, seg_insts,
                        seg_insts * (60 + i % 5) // 100, 8, 1
                    ),
                ),
            )
        yield JobEnd({})

    return TraceStream(
        framework="synthetic",
        workload="synth",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        events=events(),
    )


class TestStreamingMemory:
    def test_peak_independent_of_stream_length(self):
        """O(active-unit): a 10x longer stream must not move the peak."""
        cfg = ProfilerConfig(
            unit_size=200_000, snapshot_period=10_000, seed=0
        )

        def peak_of(n_units: int) -> int:
            profiler = StreamingProfiler(cfg)
            tracemalloc.start()
            count = sum(1 for _ in profiler.units(_lazy_stream(n_units)))
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert count == n_units
            return peak

        short = peak_of(5)
        long = peak_of(50)
        assert long < 2 * short


# -- online mode (approximate, documented as non-bit-identical) ---------------


class TestOnlineKMeans:
    def test_warms_up_then_labels(self):
        rng = np.random.default_rng(0)
        okm = OnlineKMeans(2, seed=0, init_size=8)
        rows = np.vstack(
            [rng.normal(0, 0.05, (20, 3)), rng.normal(1, 0.05, (20, 3))]
        )
        rng.shuffle(rows)
        labels = [okm.learn_one(x) for x in rows]
        assert labels[:7] == [None] * 7  # buffering
        assert okm.ready
        init_labels = okm.take_init_labels()
        assert init_labels is not None and len(init_labels) == 8
        assert okm.take_init_labels() is None  # handed out once
        assert all(lb in (0, 1) for lb in labels[8:])
        # The two blobs must separate.
        pred = okm.predict(np.array([[0.0] * 3, [1.0] * 3]))
        assert pred[0] != pred[1]

    def test_centers_before_data_raises(self):
        with pytest.raises(ValueError, match="no data"):
            _ = OnlineKMeans(3).centers

    def test_caps_k_at_row_count(self):
        okm = OnlineKMeans(5, init_size=4)
        okm.partial_fit(np.eye(3))
        assert len(okm.centers) == 3

    def test_fit_stream_builds_valid_model(self):
        job = make_synthetic_profile(
            [
                PhaseSpec(30, 0.6, 0.02, 0),
                PhaseSpec(30, 1.2, 0.02, 1),
            ],
            seed=0,
        )
        space, X = FeatureSpace.fit(job, top_k=50)
        model = PhaseModel.fit_stream(space, iter(X), k=2, seed=0)
        assert model.k >= 1
        assert len(model.assignments) == len(X)
        assert model.centers.shape[1] == X.shape[1]
        # Phase structure this crisp must be recovered even online.
        cpi = job.profile.cpi()
        means = [cpi[model.assignments == p].mean() for p in range(model.k)]
        assert max(means) - min(means) > 0.3


class TestLiveClassification:
    def test_classify_stream_matches_batch_assignments(
        self, wc_spark_trace, wc_spark_profile, wc_spark_model, simprof_tool
    ):
        tid = wc_spark_profile.profile.thread_id
        live = [
            phase
            for _tid, _unit, phase in simprof_tool.classify_stream(
                wc_spark_model,
                trace_to_stream(wc_spark_trace),
                thread_id=tid,
            )
        ]
        assert np.array_equal(live, wc_spark_model.assignments)

    def test_unit_featurizer_matches_project_job(
        self, wc_spark_profile, wc_spark_model
    ):
        space = wc_spark_model.space
        X = space.project_job(wc_spark_profile)
        featurizer = UnitFeaturizer(
            space, wc_spark_profile.registry, wc_spark_profile.stack_table
        )
        for i, unit in enumerate(wc_spark_profile.profile.units):
            assert np.array_equal(featurizer.row(unit), X[i])


class TestStreamingInstrumentation:
    def test_profile_stream_records_throughput(self, wc_spark_trace):
        from repro.core.pipeline import SimProf
        from repro.runtime.instrument import get_instrumentation

        tool = SimProf(TEST_SIMPROF_CONFIG)
        with get_instrumentation().capture() as delta:
            job = tool.profile_stream(trace_to_stream(wc_spark_trace))
        stage = delta["stream-profiling"]
        assert stage.calls == 1
        # The meter ticks for every emitted unit of every thread; the
        # profile keeps only the selected thread's units.
        assert stage.counters["units"] >= job.n_units
        assert stage.counters["unit_seconds"] > 0.0

    def test_throughput_meter_accumulates(self):
        from repro.runtime.instrument import StageRecord, ThroughputMeter

        rec = StageRecord()
        meter = ThroughputMeter(rec)
        for _ in range(5):
            meter.tick()
        assert meter.items == 5
        assert rec.counters["units"] == 5
        assert rec.counters["unit_seconds"] >= 0.0
        assert meter.items_per_second >= 0.0


class TestCliStreaming:
    def test_profile_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["profile", "wc_sp", "--stream"])
        assert args.stream is True
        assert args.points == 20
        assert args.unit_size == 100_000_000
        args = build_parser().parse_args(["profile", "wc_sp"])
        assert args.stream is False
