"""Parity and property tests for the phase-formation fast path.

The fast path (shared-distance silhouette, parallel k-sweep, batched
featurization, sweep-result reuse) must be *pure acceleration*: every
test here pins its output to the straightforward pre-fast-path
implementations kept in :mod:`repro.core._reference` — bitwise for
feature matrices, phase counts, assignments and centres; ``allclose``
for silhouette scores, whose summation order legitimately changed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._reference import (
    reference_build_feature_matrix,
    reference_choose_k,
    reference_silhouette_score,
)
from repro.core.clustering import (
    SilhouetteDistances,
    choose_k,
    kmeans,
    pick_k,
    select_phases,
    silhouette_score,
    sweep_k,
)
from repro.core.features import FeatureSpace, UnitFeaturizer, build_feature_matrix
from repro.core.phases import PhaseModel
from repro.core.units import SamplingUnit, ThreadProfile
from repro.runtime.store import ArtifactStore
from tests.helpers import PhaseSpec, make_synthetic_profile


def blobs(centers, n_per, spread, seed=0):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(c, spread, size=(n_per, len(c))) for c in centers]
    )


def two_phase_job(seed=0, n=40):
    return make_synthetic_profile(
        [
            PhaseSpec(n_units=n, cpi_mean=0.6, cpi_std=0.02, stack_index=0),
            PhaseSpec(n_units=n, cpi_mean=1.6, cpi_std=0.05, stack_index=1),
        ],
        seed=seed,
    )


class TestFeaturizerParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("normalize", [True, False])
    def test_matrix_bitwise_vs_reference(self, seed, normalize):
        job = two_phase_job(seed=seed)
        fast = build_feature_matrix(job, normalize=normalize)
        ref = reference_build_feature_matrix(job, normalize=normalize)
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)

    def test_single_stack_units(self):
        job = two_phase_job()
        for i, unit in enumerate(job.profile.units):
            job.profile.units[i] = SamplingUnit(
                index=unit.index,
                stack_ids=unit.stack_ids[:1],
                stack_counts=unit.stack_counts[:1],
                instructions=unit.instructions,
                cycles=unit.cycles,
                l1d_misses=unit.l1d_misses,
                llc_misses=unit.llc_misses,
            )
        fast = build_feature_matrix(job)
        ref = reference_build_feature_matrix(job)
        assert np.array_equal(fast, ref)

    def test_empty_stack_unit_row_is_zero(self):
        job = two_phase_job()
        unit = job.profile.units[0]
        job.profile.units[0] = SamplingUnit(
            index=unit.index,
            stack_ids=np.zeros(0, dtype=np.int64),
            stack_counts=np.zeros(0, dtype=np.float64),
            instructions=unit.instructions,
            cycles=unit.cycles,
            l1d_misses=unit.l1d_misses,
            llc_misses=unit.llc_misses,
        )
        fast = build_feature_matrix(job)
        ref = reference_build_feature_matrix(job)
        assert np.array_equal(fast, ref)
        assert not fast[0].any()

    def test_empty_profile(self):
        job = two_phase_job()
        job.profile = ThreadProfile(
            thread_id=0, unit_size=1, snapshot_period=1, units=[]
        )
        fast = build_feature_matrix(job)
        assert fast.shape == (0, len(job.registry))

    def test_project_job_equals_row_loop(self):
        train = two_phase_job(seed=0)
        other = two_phase_job(seed=3)
        space, _X = FeatureSpace.fit(train, top_k=50)
        batched = space.project_job(other)
        featurizer = UnitFeaturizer(space, other.registry, other.stack_table)
        looped = np.vstack(
            [featurizer.row(u) for u in other.profile.units]
        )
        assert np.array_equal(batched, looped)


class TestSilhouetteSharing:
    def test_exact_path_ignores_seed(self):
        X = blobs([[0, 0], [6, 6]], 20, 0.3)
        labels = kmeans(X, 2, seed=0).assignments
        a = silhouette_score(X, labels, seed=0)
        b = silhouette_score(X, labels, seed=99)
        assert a == b  # exact path never draws from the seed

    def test_subsample_deterministic_per_seed(self):
        X = blobs([[0, 0], [6, 6]], 60, 0.3)
        labels = kmeans(X, 2, seed=0).assignments
        a = silhouette_score(X, labels, max_points=40, seed=7)
        b = silhouette_score(X, labels, max_points=40, seed=7)
        assert a == b
        d1 = SilhouetteDistances.build(X, max_points=40, seed=7)
        d2 = SilhouetteDistances.build(X, max_points=40, seed=7)
        assert np.array_equal(d1.idx, d2.idx)
        assert np.array_equal(d1.dist, d2.dist)
        assert not d1.exact

    def test_prebuilt_distances_match_direct_call(self):
        X = blobs([[0, 0], [6, 6], [0, 6]], 25, 0.4)
        dist = SilhouetteDistances.build(X, max_points=3000, seed=0)
        assert dist.exact
        for k in (2, 3, 4):
            labels = kmeans(X, k, seed=0).assignments
            assert silhouette_score(X, labels, distances=dist) == (
                silhouette_score(X, labels)
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_exact(self, seed):
        X = blobs([[0, 0], [6, 6], [0, 6]], 20, 0.5, seed=seed)
        labels = kmeans(X, 3, seed=seed).assignments
        fast = silhouette_score(X, labels)
        ref = reference_silhouette_score(X, labels)
        assert np.isclose(fast, ref, rtol=1e-9, atol=1e-12)

    def test_matches_reference_subsampled(self):
        X = blobs([[0, 0], [8, 8]], 100, 0.5)
        labels = kmeans(X, 2, seed=0).assignments
        # Same seed -> same subsample indices -> comparable estimates.
        fast = silhouette_score(X, labels, max_points=50, seed=3)
        ref = reference_silhouette_score(X, labels, max_points=50, seed=3)
        assert np.isclose(fast, ref, rtol=1e-9, atol=1e-12)

    def test_rejects_mismatched_assignments(self):
        X = blobs([[0, 0], [6, 6]], 10, 0.3)
        dist = SilhouetteDistances.build(X)
        with pytest.raises(ValueError):
            dist.score(np.zeros(5, dtype=np.int64))


class TestPickK:
    def test_prefers_smallest_qualifying_k(self):
        assert pick_k({2: 0.81, 3: 0.9, 4: 0.89}) == 2

    def test_fallback_is_smallest_best_k(self):
        # No k clears an above-best cutoff; among the tied best scores
        # the smallest k must win regardless of dict insertion order.
        scores = {4: 0.6, 3: 0.6, 2: 0.5}
        assert pick_k(scores, score_threshold=1.5, min_structure=0.0) == 3

    def test_below_min_structure_returns_one(self):
        assert pick_k({2: 0.2, 3: 0.3}) == 1

    def test_empty_scores_return_one(self):
        assert pick_k({}) == 1


class TestSweepParity:
    def test_serial_and_parallel_sweeps_bitwise_identical(self):
        X = blobs([[0, 0], [8, 8], [0, 8]], 40, 0.4)
        s_scores, s_results = sweep_k(X, k_max=6, seed=0, jobs=1)
        p_scores, p_results = sweep_k(X, k_max=6, seed=0, jobs=2)
        assert list(s_scores.items()) == list(p_scores.items())
        assert list(s_results) == list(p_results)
        for k in s_results:
            assert np.array_equal(s_results[k].centers, p_results[k].centers)
            assert np.array_equal(
                s_results[k].assignments, p_results[k].assignments
            )
            assert s_results[k].inertia == p_results[k].inertia

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_select_phases_matches_reference(self, seed):
        X = blobs([[0, 0], [8, 8], [0, 8]], 30, 0.5, seed=seed)
        k, scores, result = select_phases(X, k_max=6, seed=seed, jobs=1)
        k_ref, scores_ref, result_ref = reference_choose_k(
            X, k_max=6, seed=seed
        )
        assert k == k_ref
        assert sorted(scores) == sorted(scores_ref)
        for kk in scores:
            assert np.isclose(
                scores[kk], scores_ref[kk], rtol=1e-9, atol=1e-12
            )
        assert (result is None) == (result_ref is None)
        if result is not None:
            assert np.array_equal(result.centers, result_ref.centers)
            assert np.array_equal(result.assignments, result_ref.assignments)

    def test_choose_k_wrapper_matches_select_phases(self):
        X = blobs([[0, 0], [8, 8]], 30, 0.4)
        k, scores = choose_k(X, k_max=5, seed=0)
        k2, scores2, _result = select_phases(X, k_max=5, seed=0)
        assert (k, scores) == (k2, scores2)

    def test_degenerate_inputs(self):
        assert select_phases(np.zeros((2, 3))) == (1, {1: 0.0}, None)
        constant = np.ones((30, 4))
        assert select_phases(constant) == (1, {1: 0.0}, None)
        assert reference_choose_k(constant) == (1, {1: 0.0}, None)


class TestPhaseModelFastPath:
    def test_fit_matches_reference_pipeline_bitwise(self):
        job = two_phase_job()
        model = PhaseModel.fit(job, top_k=50, max_phases=5, seed=0)

        X_full = reference_build_feature_matrix(job)
        space, X_sel = FeatureSpace.fit(job, top_k=50)
        assert np.array_equal(X_sel, space.transform(X_full))
        k_ref, _scores, result_ref = reference_choose_k(
            X_sel, k_max=5, score_threshold=0.9, seed=0
        )
        assert model.k == k_ref
        assert result_ref is not None
        assert np.array_equal(model.assignments, result_ref.assignments)
        assert np.array_equal(model.centers, result_ref.centers)

    def test_fit_parallel_jobs_bitwise_identical(self):
        job = two_phase_job()
        serial = PhaseModel.fit(job, top_k=50, max_phases=5, seed=0, jobs=1)
        parallel = PhaseModel.fit(job, top_k=50, max_phases=5, seed=0, jobs=2)
        assert serial.k == parallel.k
        assert np.array_equal(serial.assignments, parallel.assignments)
        assert np.array_equal(serial.centers, parallel.centers)
        assert list(serial.silhouette_by_k.items()) == (
            list(parallel.silhouette_by_k.items())
        )

    def test_fit_with_feature_cache_bit_identical(self, tmp_path):
        job = two_phase_job()
        store = ArtifactStore(tmp_path)
        cold = PhaseModel.fit(job, top_k=50, max_phases=5, seed=0, store=store)
        misses_after_cold = store.stats.misses
        warm = PhaseModel.fit(job, top_k=50, max_phases=5, seed=0, store=store)
        assert store.stats.misses == misses_after_cold  # served from cache
        assert store.stats.memory_hits + store.stats.disk_hits > 0
        plain = PhaseModel.fit(job, top_k=50, max_phases=5, seed=0)
        for model in (warm, plain):
            assert model.k == cold.k
            assert np.array_equal(model.assignments, cold.assignments)
            assert np.array_equal(model.centers, cold.centers)
        assert tuple(warm.space.method_fqns) == tuple(cold.space.method_fqns)

    def test_feature_cache_keyed_on_profile_content(self, tmp_path):
        store = ArtifactStore(tmp_path)
        space_a, _ = FeatureSpace.fit(two_phase_job(seed=0), top_k=50, store=store)
        misses = store.stats.misses
        # A different profile must not be served the first job's matrix.
        space_b, _ = FeatureSpace.fit(two_phase_job(seed=5), top_k=50, store=store)
        assert store.stats.misses == misses + 1
        assert space_a.method_fqns  # sanity: selection kept something
        assert space_b.method_fqns


class TestContentDigest:
    def test_stable_and_reproducible(self):
        a = two_phase_job(seed=0)
        b = two_phase_job(seed=0)
        assert a.content_digest() == a.content_digest()
        assert a.content_digest() == b.content_digest()

    def test_sensitive_to_counters(self):
        a = two_phase_job(seed=0)
        b = two_phase_job(seed=0)
        unit = b.profile.units[0]
        b.profile.units[0] = SamplingUnit(
            index=unit.index,
            stack_ids=unit.stack_ids,
            stack_counts=unit.stack_counts,
            instructions=unit.instructions,
            cycles=unit.cycles + 1.0,
            l1d_misses=unit.l1d_misses,
            llc_misses=unit.llc_misses,
        )
        assert a.content_digest() != b.content_digest()

    def test_sensitive_to_identity_and_geometry(self):
        a = two_phase_job(seed=0)
        c = two_phase_job(seed=0)
        c.input_name = "other"
        assert a.content_digest() != c.content_digest()
        d = two_phase_job(seed=0)
        d.profile.unit_size += 1
        assert a.content_digest() != d.content_digest()
