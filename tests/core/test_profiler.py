"""Unit tests for the thread profiler (Section III-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler import ProfilerConfig, SimProfProfiler
from repro.jvm.job import JobTrace
from repro.jvm.machine import MachineConfig
from tests.helpers import make_registry_with_stacks, make_trace


def _make_job(trace_segments, table, registry, traces=None):
    trace = make_trace(trace_segments, table)
    return JobTrace(
        framework="spark",
        workload="t",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        traces=traces or [trace],
    )


@pytest.fixture()
def parts():
    registry, table, stacks = make_registry_with_stacks(n_stacks=3)
    return registry, table, stacks


class TestProfilerConfig:
    def test_defaults_follow_paper_unit(self):
        cfg = ProfilerConfig()
        assert cfg.unit_size == 100_000_000
        assert cfg.unit_size % cfg.snapshot_period == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProfilerConfig(unit_size=0)
        with pytest.raises(ValueError):
            ProfilerConfig(snapshot_period=0)
        with pytest.raises(ValueError):
            ProfilerConfig(unit_size=10, snapshot_period=20)
        with pytest.raises(ValueError):
            ProfilerConfig(snapshot_jitter=1.0)


class TestProfileThread:
    def test_unit_count_drops_partial_tail(self, parts):
        registry, table, stacks = parts
        # 2.5 units of 100 instructions each.
        trace = make_trace([(stacks[0], 250, 1.0)], table)
        profiler = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10, snapshot_jitter=0.0)
        )
        profile = profiler.profile_thread(trace)
        assert profile.n_units == 2

    def test_too_short_thread_raises(self, parts):
        registry, table, stacks = parts
        trace = make_trace([(stacks[0], 50, 1.0)], table)
        profiler = SimProfProfiler(ProfilerConfig(unit_size=100, snapshot_period=10))
        with pytest.raises(ValueError):
            profiler.profile_thread(trace)

    def test_unit_cpi_from_counters(self, parts):
        registry, table, stacks = parts
        trace = make_trace(
            [(stacks[0], 100, 1.0), (stacks[1], 100, 3.0)], table
        )
        profiler = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10, snapshot_jitter=0.0)
        )
        profile = profiler.profile_thread(trace)
        assert profile.units[0].cpi == pytest.approx(1.0)
        assert profile.units[1].cpi == pytest.approx(3.0)

    def test_snapshots_assigned_to_units(self, parts):
        registry, table, stacks = parts
        trace = make_trace(
            [(stacks[0], 100, 1.0), (stacks[1], 100, 1.0)], table
        )
        profiler = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10, snapshot_jitter=0.0)
        )
        profile = profiler.profile_thread(trace)
        unit0, unit1 = profile.units
        assert unit0.n_snapshots > 0
        assert unit1.n_snapshots > 0
        # Unit 0's snapshots all see stack 0; unit 1 sees stack 1.
        assert list(unit0.stack_ids) == [table.intern(stacks[0])]
        assert table.intern(stacks[1]) in list(unit1.stack_ids)

    def test_jitter_determinism_per_seed(self, parts):
        registry, table, stacks = parts
        trace = make_trace([(stacks[0], 1000, 1.0)], table)
        cfg = ProfilerConfig(unit_size=100, snapshot_period=10,
                             snapshot_jitter=0.5, seed=3)
        p1 = SimProfProfiler(cfg).profile_thread(trace)
        p2 = SimProfProfiler(cfg).profile_thread(trace)
        assert [u.n_snapshots for u in p1.units] == [
            u.n_snapshots for u in p2.units
        ]


class TestProfileJob:
    def test_profiles_longest_thread_by_default(self, parts):
        registry, table, stacks = parts
        short = make_trace([(stacks[0], 100, 1.0)], table, thread_id=0)
        long = make_trace([(stacks[1], 500, 2.0)], table, thread_id=1)
        job = JobTrace(
            framework="spark",
            workload="t",
            input_name="default",
            registry=registry,
            stack_table=table,
            machine=MachineConfig(),
            traces=[short, long],
        )
        profiler = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10)
        )
        profile = profiler.profile(job)
        assert profile.profile.thread_id == 1
        assert profile.n_units == 5

    def test_explicit_thread_selection(self, parts):
        registry, table, stacks = parts
        t0 = make_trace([(stacks[0], 300, 1.0)], table, thread_id=0)
        t1 = make_trace([(stacks[1], 500, 2.0)], table, thread_id=1)
        job = JobTrace(
            framework="spark",
            workload="t",
            input_name="default",
            registry=registry,
            stack_table=table,
            machine=MachineConfig(),
            traces=[t0, t1],
        )
        profiler = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10, thread_id=0)
        )
        assert profiler.profile(job).profile.thread_id == 0

    def test_metadata_carried_over(self, parts):
        registry, table, stacks = parts
        job = _make_job([(stacks[0], 200, 1.0)], table, registry)
        job.meta["n_executors"] = 8
        profiler = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10)
        )
        profile = profiler.profile(job)
        assert profile.workload == "t"
        assert profile.meta["n_executors"] == 8
        assert profile.label == "t_sp"


class TestThreadProfileAccessors:
    def test_oracle_cpi_is_mean_of_units(self, parts):
        registry, table, stacks = parts
        trace = make_trace(
            [(stacks[0], 100, 1.0), (stacks[1], 100, 3.0)], table
        )
        profile = SimProfProfiler(
            ProfilerConfig(unit_size=100, snapshot_period=10, snapshot_jitter=0.0)
        ).profile_thread(trace)
        assert profile.oracle_cpi() == pytest.approx(2.0)
        assert profile.cpi().tolist() == pytest.approx([1.0, 3.0])
        assert profile.ipc().tolist() == pytest.approx([1.0, 1 / 3])
        assert profile.llc_mpki().shape == (2,)
