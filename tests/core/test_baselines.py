"""Unit tests for the compared samplers (Section IV-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    CodeSampler,
    SecondSampler,
    SimProfSampler,
    SRSSampler,
)
from repro.core.phases import PhaseModel
from tests.helpers import PhaseSpec, make_synthetic_profile


@pytest.fixture(scope="module")
def job():
    return make_synthetic_profile(
        [
            PhaseSpec(n_units=120, cpi_mean=0.9, cpi_std=0.03, stack_index=0),
            PhaseSpec(n_units=60, cpi_mean=2.2, cpi_std=0.40, stack_index=1),
        ],
        seed=5,
        shuffle_units=False,  # phase 0 first, then phase 1 (staged run)
    )


@pytest.fixture(scope="module")
def model(job):
    return PhaseModel.fit(job, seed=0)


class TestSecondSampler:
    def test_selects_contiguous_window(self, job):
        result = SecondSampler(seconds=1e-5).sample(job)
        sel = result.selected
        assert (np.diff(sel) == 1).all()

    def test_covers_whole_run_when_window_huge(self, job):
        result = SecondSampler(seconds=1e9).sample(job)
        assert result.sample_size == job.n_units

    def test_misses_later_stage_with_small_window(self, job):
        """The paper's criticism: a single early interval misses the
        reduce stage entirely."""
        result = SecondSampler(seconds=1e-5, warmup_fraction=0.0).sample(job)
        assert result.selected.max() < 120  # never reaches phase 1
        oracle = job.oracle_cpi()
        assert result.error_vs(oracle) > 0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            SecondSampler(seconds=0)
        with pytest.raises(ValueError):
            SecondSampler(warmup_fraction=1.0)


class TestSRSSampler:
    def test_sample_size(self, job, rng):
        result = SRSSampler(15).sample(job, rng)
        assert result.sample_size == 15
        assert len(np.unique(result.selected)) == 15

    def test_capped_at_population(self, job, rng):
        result = SRSSampler(10_000).sample(job, rng)
        assert result.sample_size == job.n_units

    def test_unbiased_over_draws(self, job):
        oracle = job.oracle_cpi()
        estimates = [
            SRSSampler(30).sample(job, np.random.default_rng(i)).estimate
            for i in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(oracle, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            SRSSampler(0)


class TestCodeSampler:
    def test_one_point_per_phase(self, job, model):
        result = CodeSampler().sample(job, model)
        assert result.sample_size == model.k

    def test_estimate_weights_by_phase_size(self, job, model):
        result = CodeSampler().sample(job, model)
        cpi = job.profile.cpi()
        # Manually recompute from the selected representatives.
        expected = 0.0
        for rep in result.selected:
            h = model.assignments[rep]
            weight = (model.assignments == h).sum() / len(cpi)
            expected += weight * cpi[rep]
        assert result.estimate == pytest.approx(expected)


class TestSimProfSampler:
    def test_beats_srs_on_average(self, job, model):
        """The headline Figure 7 property on a controlled population."""
        oracle = job.oracle_cpi()
        srs_err = np.mean([
            SRSSampler(20).sample(job, np.random.default_rng(i)).error_vs(oracle)
            for i in range(100)
        ])
        simprof_err = np.mean([
            SimProfSampler(20)
            .sample(job, model, np.random.default_rng(i))
            .error_vs(oracle)
            for i in range(100)
        ])
        assert simprof_err < srs_err

    def test_sample_at_least_k(self, job, model):
        result = SimProfSampler(1).sample(job, model)
        assert result.sample_size >= model.k

    def test_error_vs(self, job, model):
        result = SimProfSampler(20).sample(job, model)
        oracle = job.oracle_cpi()
        assert result.error_vs(oracle) == pytest.approx(
            abs(result.estimate - oracle) / oracle
        )
