"""Columnar trace plane vs the ``_reference`` object path, bit for bit.

The columnar refactor replaced three per-segment Python loops — the
checksum pack loop, the streaming unit cutter, and the substrate flush
— with packed-array code.  These tests hold each replacement to the
``_reference`` oracle byte-for-byte: same checksums for any content
(including mixed old/new-format streams), same sampling units (stack
histograms and interpolated counters) for any batch partition of the
same segment sequence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core._reference import ReferenceUnitCutter
from repro.core.profiler import ProfilerConfig, _UnitCutter
from repro.jvm._reference import reference_segment_checksum
from repro.jvm.machine import OpKind
from repro.jvm.segments import (
    SEGMENT_DTYPE,
    array_to_segments,
    empty_segment_array,
    segment_checksum,
    segments_to_array,
)
from repro.jvm.threads import OP_KINDS_BY_CODE, TraceSegment


def _random_segments(
    rng: np.random.Generator, n: int, *, max_inst: int = 5000
) -> tuple[TraceSegment, ...]:
    """Arbitrary but reproducible segments, cold flags included."""
    return tuple(
        TraceSegment(
            stack_id=int(rng.integers(0, 40)),
            op_kind=OP_KINDS_BY_CODE[int(rng.integers(0, len(OP_KINDS_BY_CODE)))],
            instructions=int(rng.integers(0, max_inst)),
            cycles=int(rng.integers(0, 3 * max_inst)),
            l1d_misses=int(rng.integers(0, max_inst // 10 + 1)),
            llc_misses=int(rng.integers(0, max_inst // 100 + 1)),
            stage_id=int(rng.integers(-1, 4)),
            task_id=int(rng.integers(-1, 16)),
            cold=bool(rng.integers(0, 2)),
        )
        for _ in range(n)
    )


class TestChecksumParity:
    def test_matches_reference_loop(self):
        rng = np.random.default_rng(np.random.SeedSequence([2024, 1]))
        for n in (1, 2, 7, 64, 513):
            segs = _random_segments(rng, n)
            assert segment_checksum(segments_to_array(segs)) == (
                reference_segment_checksum(segs)
            )

    def test_object_sequence_input_matches(self):
        rng = np.random.default_rng(np.random.SeedSequence([2024, 2]))
        segs = _random_segments(rng, 31)
        assert segment_checksum(segs) == reference_segment_checksum(segs)

    def test_empty_batch_is_zero(self):
        assert segment_checksum(()) == 0
        assert segment_checksum(empty_segment_array()) == 0
        assert reference_segment_checksum(()) == 0

    def test_mixed_format_stream_shares_one_verdict(self):
        # An old-format (object) producer and a new-format (columnar)
        # producer emitting the same content must verify through the
        # same checksum — that is what lets one EventGuard handle both.
        rng = np.random.default_rng(np.random.SeedSequence([2024, 3]))
        segs = _random_segments(rng, 100)
        data = segments_to_array(segs)
        assert segment_checksum(data) == segment_checksum(segs)
        # Any batch split of the same content chains to the same total
        # CRC (the concatenation property the wire format relies on).
        import zlib

        whole = segment_checksum(data)
        part = zlib.crc32(
            np.ascontiguousarray(
                np.ascontiguousarray(data[37:]).view(np.int64).reshape(-1, 9)[:, :8]
            ).tobytes(),
            segment_checksum(data[:37]),
        )
        assert part == whole

    def test_cold_column_excluded_from_checksum(self):
        rng = np.random.default_rng(np.random.SeedSequence([2024, 4]))
        segs = _random_segments(rng, 16)
        flipped = tuple(
            TraceSegment(
                s.stack_id,
                s.op_kind,
                s.instructions,
                s.cycles,
                s.l1d_misses,
                s.llc_misses,
                s.stage_id,
                s.task_id,
                cold=not s.cold,
            )
            for s in segs
        )
        assert segment_checksum(segs) == segment_checksum(flipped)

    def test_round_trip_preserves_everything(self):
        rng = np.random.default_rng(np.random.SeedSequence([2024, 5]))
        segs = _random_segments(rng, 50)
        assert array_to_segments(segments_to_array(segs)) == segs

    def test_rejects_foreign_dtype(self):
        with pytest.raises(TypeError, match="SEGMENT_DTYPE"):
            segment_checksum(np.zeros(4, dtype=np.int64))


def _phase_segments(
    rng: np.random.Generator,
    *,
    n: int,
    inst: int,
    with_zero_runs: bool = False,
) -> tuple[TraceSegment, ...]:
    """A segment sequence with varied CPI and optional 0-length runs."""
    out = []
    for i in range(n):
        insts = inst if not (with_zero_runs and i % 7 == 3) else 0
        cpi = 0.5 + (i % 5) * 0.3
        out.append(
            TraceSegment(
                stack_id=i % 6,
                op_kind=OpKind.MAP,
                instructions=insts,
                cycles=max(1, int(insts * cpi)) if insts else int(rng.integers(0, 50)),
                l1d_misses=insts // 90,
                llc_misses=insts // 800,
            )
        )
    return tuple(out)


def _units_identical(a, b) -> None:
    assert len(a) == len(b)
    for ua, ub in zip(a, b):
        assert ua.index == ub.index
        assert np.array_equal(ua.stack_ids, ub.stack_ids)
        assert np.array_equal(ua.stack_counts, ub.stack_counts)
        # Bitwise, not approximate: the cutters must share every float op.
        assert ua.instructions == ub.instructions
        assert ua.cycles == ub.cycles
        assert ua.l1d_misses == ub.l1d_misses
        assert ua.llc_misses == ub.llc_misses


def _run_both(
    segments: tuple[TraceSegment, ...],
    cfg: ProfilerConfig,
    batch_sizes: tuple[int, ...],
) -> None:
    """Feed identical content through both cutters, any batch split."""
    data = segments_to_array(segments)
    for bs in batch_sizes:
        fast = _UnitCutter(0, cfg)
        ref = ReferenceUnitCutter(0, cfg)
        fast_units = []
        ref_units = []
        for i in range(0, len(data), bs):
            fast_units.extend(fast.feed_array(data[i : i + bs]))
        for seg in segments:
            ref_units.extend(ref.feed(seg))
        fast_units.extend(fast.flush())
        ref_units.extend(ref.flush())
        assert fast.total == ref.total
        _units_identical(fast_units, ref_units)


class TestCutterParity:
    CFG = ProfilerConfig(unit_size=10_000, snapshot_period=500, seed=7)

    def test_jittered_snapshots(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 1]))
        segs = _phase_segments(rng, n=400, inst=173)
        _run_both(segs, self.CFG, (1, 3, 64, 400))

    def test_jitter_disabled(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 2]))
        segs = _phase_segments(rng, n=300, inst=211)
        cfg = ProfilerConfig(
            unit_size=10_000, snapshot_period=500, snapshot_jitter=0.0, seed=7
        )
        _run_both(segs, cfg, (1, 7, 300))

    def test_exact_multiple_boundary_flush(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 3]))
        # 50 segments x 200 instructions = exactly one 10_000 unit.
        segs = _phase_segments(rng, n=50, inst=200)
        _run_both(segs, self.CFG, (1, 8, 50))

    def test_zero_instruction_segments_on_boundaries(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 4]))
        segs = _phase_segments(rng, n=420, inst=250, with_zero_runs=True)
        _run_both(segs, self.CFG, (1, 5, 420))

    def test_units_spanning_many_batches(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 5]))
        # Tiny batches vs a big unit: every unit spans dozens of
        # feed_array calls and the carry state does the bookkeeping.
        segs = _phase_segments(rng, n=600, inst=97)
        cfg = ProfilerConfig(unit_size=20_000, snapshot_period=333, seed=3)
        _run_both(segs, cfg, (2, 11))

    def test_segment_larger_than_unit(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 6]))
        # One segment streams several boundaries past at once.
        segs = _phase_segments(rng, n=30, inst=25_000)
        _run_both(segs, self.CFG, (1, 4, 30))

    def test_empty_batches_are_noops(self):
        rng = np.random.default_rng(np.random.SeedSequence([99, 7]))
        segs = _phase_segments(rng, n=120, inst=199)
        data = segments_to_array(segs)
        cfg = self.CFG
        fast = _UnitCutter(0, cfg)
        interleaved = []
        empty = empty_segment_array()
        for i in range(0, len(data), 10):
            interleaved.extend(fast.feed_array(empty))
            interleaved.extend(fast.feed_array(data[i : i + 10]))
        interleaved.extend(fast.flush())
        ref = ReferenceUnitCutter(0, cfg)
        ref_units = []
        for seg in segs:
            ref_units.extend(ref.feed(seg))
        ref_units.extend(ref.flush())
        _units_identical(interleaved, ref_units)
