"""Unit tests for the phase model (formation + classification)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phases import PhaseModel
from tests.helpers import PhaseSpec, make_synthetic_profile


@pytest.fixture()
def three_phase_job():
    return make_synthetic_profile(
        [
            PhaseSpec(n_units=60, cpi_mean=0.8, cpi_std=0.02, stack_index=0),
            PhaseSpec(n_units=30, cpi_mean=2.0, cpi_std=0.10, stack_index=1),
            PhaseSpec(n_units=20, cpi_mean=3.5, cpi_std=0.30, stack_index=2),
        ],
        seed=4,
    )


class TestFit:
    def test_recovers_planted_phases(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        assert model.k == 3
        sizes = sorted(np.bincount(model.assignments))
        assert sizes == [20, 30, 60]

    def test_assignments_align_with_cpi_structure(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        cpi = three_phase_job.profile.cpi()
        means = sorted(
            cpi[model.assignments == h].mean() for h in range(model.k)
        )
        assert means[0] == pytest.approx(0.8, abs=0.1)
        assert means[-1] == pytest.approx(3.5, abs=0.4)

    def test_single_phase_when_flat(self):
        job = make_synthetic_profile(
            [
                PhaseSpec(n_units=50, cpi_mean=1.0, cpi_std=0.0, stack_index=0),
                PhaseSpec(n_units=50, cpi_mean=1.0, cpi_std=0.0, stack_index=1),
            ],
            seed=0,
        )
        model = PhaseModel.fit(job, seed=0)
        assert model.k == 1
        assert (model.assignments == 0).all()

    def test_max_phases_respected(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, max_phases=2, seed=0)
        assert model.k <= 2

    def test_deterministic(self, three_phase_job):
        a = PhaseModel.fit(three_phase_job, seed=0)
        b = PhaseModel.fit(three_phase_job, seed=0)
        np.testing.assert_array_equal(a.assignments, b.assignments)


class TestClassify:
    def test_training_units_classify_to_own_phase(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        reassigned = model.classify_job(three_phase_job)
        agreement = (reassigned == model.assignments).mean()
        assert agreement > 0.98

    def test_reference_profile_classification(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        # A reference run with the same op structure but different
        # registry order and phase lengths.
        ref = make_synthetic_profile(
            [
                PhaseSpec(n_units=10, cpi_mean=0.85, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=2.1, cpi_std=0.10, stack_index=1),
                PhaseSpec(n_units=15, cpi_mean=3.4, cpi_std=0.30, stack_index=2),
            ],
            seed=9,
        )
        assignments = model.classify_job(ref)
        assert len(assignments) == 65
        # Same code => same set of phases (Section III-D.1).
        assert set(np.unique(assignments)) <= set(range(model.k))


class TestPhaseStats:
    def test_weights_sum_to_one(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        stats = model.phase_stats(three_phase_job.profile.cpi())
        assert sum(s.weight for s in stats) == pytest.approx(1.0)

    def test_stats_match_members(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        cpi = three_phase_job.profile.cpi()
        stats = model.phase_stats(cpi)
        for s in stats:
            members = cpi[model.assignments == s.phase_id]
            assert s.n_units == len(members)
            assert s.cpi_mean == pytest.approx(members.mean())

    def test_empty_phase_zero_stats(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        cpi = three_phase_job.profile.cpi()
        # Classify against assignments that never use the last phase.
        fake = np.zeros(len(cpi), dtype=np.int64)
        stats = model.phase_stats(cpi, fake)
        assert stats[-1].n_units == 0
        assert stats[-1].cpi_cov == 0.0

    def test_mismatched_lengths_raise(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        with pytest.raises(ValueError):
            model.phase_stats(np.ones(3))

    def test_cov_property(self):
        from repro.core.phases import PhaseStats

        s = PhaseStats(0, 10, 0.5, 2.0, 0.5)
        assert s.cpi_cov == 0.25
        z = PhaseStats(0, 10, 0.5, 0.0, 0.5)
        assert z.cpi_cov == 0.0


class TestTopMethods:
    def test_names_phase_specific_ops(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        cpi = three_phase_job.profile.cpi()
        stats = model.phase_stats(cpi)
        # The highest-CPI phase is the planted stack_index=2 phase.
        wild = max(stats, key=lambda s: s.cpi_mean)
        tops = [name for name, _lift in model.top_methods(wild.phase_id, 3)]
        assert any("Op2" in n for n in tops)

    def test_common_frames_not_top(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        for h in range(model.k):
            tops = [name for name, _ in model.top_methods(h, 2)]
            assert "java.lang.Thread.run" not in tops

    def test_out_of_range_raises(self, three_phase_job):
        model = PhaseModel.fit(three_phase_job, seed=0)
        with pytest.raises(IndexError):
            model.top_methods(99)
