"""Unit tests for the sampling-unit datatypes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.units import SamplingUnit
from tests.helpers import PhaseSpec, make_synthetic_profile


def _unit(cpi: float = 2.0, insts: float = 100.0) -> SamplingUnit:
    return SamplingUnit(
        index=0,
        stack_ids=np.array([0, 1]),
        stack_counts=np.array([3, 7]),
        instructions=insts,
        cycles=insts * cpi,
        l1d_misses=1.0,
        llc_misses=0.5,
    )


class TestSamplingUnit:
    def test_cpi_ipc(self):
        u = _unit(cpi=2.0)
        assert u.cpi == 2.0
        assert u.ipc == 0.5

    def test_zero_division_guards(self):
        u = SamplingUnit(0, np.array([]), np.array([]), 0.0, 0.0, 0.0, 0.0)
        assert u.cpi == 0.0
        assert u.ipc == 0.0

    def test_snapshot_count(self):
        assert _unit().n_snapshots == 10


class TestThreadProfile:
    @pytest.fixture()
    def job(self):
        return make_synthetic_profile(
            [
                PhaseSpec(n_units=10, cpi_mean=1.0, cpi_std=0.0, stack_index=0),
                PhaseSpec(n_units=10, cpi_mean=3.0, cpi_std=0.0, stack_index=1),
            ],
            seed=0,
            shuffle_units=False,
        )

    def test_vectors(self, job):
        p = job.profile
        assert p.n_units == 20
        assert len(p.cpi()) == 20
        np.testing.assert_allclose(p.ipc(), 1.0 / p.cpi())
        assert p.cycles().shape == (20,)
        assert p.llc_mpki().shape == (20,)

    def test_oracle_cpi(self, job):
        assert job.profile.oracle_cpi() == pytest.approx(2.0)
        assert job.oracle_cpi() == pytest.approx(2.0)

    def test_oracle_empty_raises(self, job):
        job.profile.units = []
        with pytest.raises(ValueError):
            job.profile.oracle_cpi()

    def test_label(self, job):
        assert job.label == "synthetic_sp"
