"""Unit tests for CoV reporting and phase typing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import (
    cov_report,
    method_type_of,
    phase_type_distribution,
    phase_type_of,
    phase_types,
)
from repro.core.phases import PhaseModel
from tests.helpers import PhaseSpec, make_synthetic_profile


class TestCovReport:
    def test_weighted_below_population_for_separated_phases(self):
        rng = np.random.default_rng(0)
        cpi = np.concatenate([
            rng.normal(1.0, 0.02, 100), rng.normal(3.0, 0.06, 100)
        ])
        assignments = np.array([0] * 100 + [1] * 100)
        report = cov_report(cpi, assignments)
        assert report.weighted < report.population
        assert report.maximum >= report.weighted

    def test_single_phase_weighted_equals_population(self):
        rng = np.random.default_rng(0)
        cpi = rng.normal(1.0, 0.2, 100)
        report = cov_report(cpi, np.zeros(100, dtype=int))
        assert report.weighted == pytest.approx(report.population)
        assert report.maximum == pytest.approx(report.population)

    def test_degenerate_single_unit_phase(self):
        cpi = np.array([1.0, 2.0, 3.0])
        report = cov_report(cpi, np.array([0, 0, 1]))
        assert report.maximum >= 0.0  # lone-unit phase contributes 0


class TestMethodTypeOf:
    @pytest.mark.parametrize("fqn,expected", [
        ("org.apache.hadoop.util.QuickSort.sort", "sort"),
        ("org.apache.hadoop.hdfs.DFSInputStream.read", "io"),
        ("org.apache.spark.Aggregator.combineValuesByKey", "reduce"),
        ("org.apache.spark.graphx.impl.VertexRDDImpl.aggregateUsingIndex", "reduce"),
        ("org.apache.hadoop.mapreduce.Mapper.run", "map"),
        ("org.apache.spark.graphx.impl.GraphImpl.aggregateMessages", "map"),
        ("java.lang.Thread.run", None),
    ])
    def test_patterns(self, fqn, expected):
        assert method_type_of(fqn) == expected

    def test_first_match_wins(self):
        # Contains both "Merger" (sort) and "reduce" (reduce): the
        # pattern table orders sort first.
        assert method_type_of("x.Merger.reduceMerge") == "sort"


class TestPhaseTyping:
    @pytest.fixture()
    def job_and_model(self):
        job = make_synthetic_profile(
            [
                PhaseSpec(n_units=50, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=50, cpi_mean=2.5, cpi_std=0.10, stack_index=1),
            ],
            seed=3,
        )
        model = PhaseModel.fit(job, seed=0)
        return job, model

    def test_untyped_stacks_default_to_map(self, job_and_model):
        job, model = job_and_model
        # The synthetic stacks (workload.OpN.stepM) match the generic
        # "map" pattern, so everything types as map.
        types = phase_types(job, model.assignments)
        assert set(types.values()) <= {"map", "reduce", "sort", "io"}

    def test_distribution_sums_to_one(self, job_and_model):
        job, model = job_and_model
        dist = phase_type_distribution(job, model.assignments)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_phase_type_of_single(self, job_and_model):
        job, model = job_and_model
        t = phase_type_of(job, model.assignments, 0)
        assert t in ("map", "reduce", "sort", "io")


class TestPhaseTypingOnRealTrace:
    def test_wordcount_spark_types(self, wc_spark_profile, wc_spark_model):
        types = phase_types(wc_spark_profile, wc_spark_model.assignments)
        # WordCount's dominant phase carries the map-side combine.
        assert "reduce" in types.values()
