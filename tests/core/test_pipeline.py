"""Integration tests for the SimProf facade on real workload traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import SimProf, SimProfConfig


class TestConfig:
    def test_defaults(self):
        cfg = SimProfConfig()
        assert cfg.unit_size == 100_000_000
        assert cfg.top_k_methods == 100
        assert cfg.max_phases == 20
        assert cfg.silhouette_threshold == 0.9

    def test_profiler_config_projection(self):
        cfg = SimProfConfig(unit_size=1000, snapshot_period=100, seed=7)
        pc = cfg.profiler_config(thread_id=2)
        assert pc.unit_size == 1000
        assert pc.snapshot_period == 100
        assert pc.thread_id == 2
        assert pc.seed == 7


class TestAnalyze:
    def test_end_to_end_on_wordcount(self, wc_spark_trace, simprof_tool):
        result = simprof_tool.analyze(wc_spark_trace, n_points=20)
        assert result.n_phases >= 1
        assert result.points.sample_size >= result.n_phases
        assert 0 <= result.sampling_error() < 0.5
        assert result.oracle_cpi() > 0
        lo, hi = result.points.confidence_interval(0.997)
        assert lo < result.points.estimate < hi

    def test_simulation_points_are_unit_ids(self, wc_spark_trace, simprof_tool):
        result = simprof_tool.analyze(wc_spark_trace, n_points=10)
        points = result.simulation_points
        assert len(np.unique(points)) == len(points)
        assert points.max() < result.job.n_units

    def test_phase_stats_populated(self, wc_spark_trace, simprof_tool):
        result = simprof_tool.analyze(wc_spark_trace)
        assert len(result.phase_stats) == result.n_phases
        assert sum(s.weight for s in result.phase_stats) == pytest.approx(1.0)

    def test_cov_report_shape(self, wc_spark_trace, simprof_tool):
        result = simprof_tool.analyze(wc_spark_trace)
        report = result.cov_report()
        assert report.weighted <= report.population + 1e-9

    def test_phase_type_map(self, wc_spark_trace, simprof_tool):
        result = simprof_tool.analyze(wc_spark_trace)
        types = result.phase_type_map()
        assert set(types) == set(range(result.n_phases))

    def test_deterministic_given_seed(self, wc_spark_trace, simprof_tool):
        a = simprof_tool.analyze(wc_spark_trace, n_points=20)
        b = simprof_tool.analyze(wc_spark_trace, n_points=20)
        np.testing.assert_array_equal(a.simulation_points, b.simulation_points)
        assert a.points.estimate == b.points.estimate


class TestSampleSizeFor:
    def test_tighter_error_needs_more(self, wc_spark_profile, wc_spark_model,
                                      simprof_tool):
        n5 = simprof_tool.sample_size_for(
            wc_spark_profile, wc_spark_model, relative_error=0.05
        )
        n2 = simprof_tool.sample_size_for(
            wc_spark_profile, wc_spark_model, relative_error=0.02
        )
        assert n2 >= n5 >= wc_spark_model.k

    def test_achieves_error_bound_empirically(
        self, wc_spark_profile, wc_spark_model, simprof_tool
    ):
        """Drawing the solver's sample size hits the error target in the
        vast majority of draws (the CI is 99.7%)."""
        n = simprof_tool.sample_size_for(
            wc_spark_profile, wc_spark_model, relative_error=0.05
        )
        oracle = wc_spark_profile.oracle_cpi()
        hits = 0
        trials = 60
        for i in range(trials):
            est = simprof_tool.select_points(
                wc_spark_profile,
                wc_spark_model,
                n,
                rng=np.random.default_rng(100 + i),
            )
            hits += abs(est.estimate - oracle) / oracle <= 0.05
        assert hits / trials > 0.9


class TestInputSensitivityIntegration:
    def test_cc_inputs_produce_result(self, simprof_tool, cc_spark_trace):
        from repro.datagen.seeds import GRAPH_INPUTS
        from repro.workloads import run_workload
        from tests.conftest import TEST_SCALE

        train = simprof_tool.profile(cc_spark_trace)
        model = simprof_tool.form_phases(train)
        ref_trace = run_workload(
            "cc",
            "spark",
            scale=TEST_SCALE,
            seed=0,
            graph=GRAPH_INPUTS["Road"],
            input_name="Road",
        )
        ref = simprof_tool.profile(ref_trace)
        result = simprof_tool.input_sensitivity(model, train, {"Road": ref})
        assert len(result.phases) == model.k
        assert set(result.ref_stats) == {"Road"}
