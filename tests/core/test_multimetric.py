"""Tests for the multi-metric (minimax) allocation and the random
projection option."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clustering import random_projection
from repro.core.phases import PhaseModel
from repro.core.sampling import (
    multimetric_allocation,
    optimal_allocation,
    stratified_standard_error,
)
from tests.helpers import PhaseSpec, make_synthetic_profile


class TestMultimetricAllocation:
    def test_reduces_to_neyman_for_one_metric(self):
        N = np.array([200.0, 100.0])
        stds = np.array([[1.0, 4.0]])
        means = np.array([2.0])
        mm = multimetric_allocation(N, stds, means, 30)
        ney = optimal_allocation(N, stds[0], 30)
        # Both concentrate on the high-variance stratum.
        assert mm[1] > mm[0]
        assert abs(int(mm[1]) - int(ney[1])) <= 3

    def test_balances_two_conflicting_metrics(self):
        """Metric A varies in stratum 0, metric B in stratum 1: the
        minimax allocation must serve both."""
        N = np.array([100.0, 100.0])
        stds = np.array([
            [2.0, 0.0],   # metric A
            [0.0, 2.0],   # metric B
        ])
        means = np.array([1.0, 1.0])
        alloc = multimetric_allocation(N, stds, means, 20)
        assert alloc[0] == alloc[1] == 10
        # Single-metric Neyman on A would starve stratum 1.
        ney = optimal_allocation(N, stds[0], 20)
        assert ney[1] < alloc[1]

    def test_worst_metric_error_bounded(self):
        rng = np.random.default_rng(0)
        N = np.array([300.0, 200.0, 100.0])
        stds = rng.uniform(0.1, 2.0, size=(3, 3))
        means = np.array([1.0, 5.0, 0.5])
        n = 40
        mm = multimetric_allocation(N, stds, means, n)
        ney = optimal_allocation(N, stds[0], n)

        def worst(alloc):
            return max(
                stratified_standard_error(N, alloc, stds[m]) / means[m]
                for m in range(3)
            )

        assert worst(mm) <= worst(ney) + 1e-12

    def test_invariants(self):
        N = np.array([50.0, 0.0, 30.0])
        stds = np.ones((2, 3))
        means = np.ones(2)
        alloc = multimetric_allocation(N, stds, means, 10)
        assert alloc.sum() == 10
        assert alloc[1] == 0
        assert (alloc <= N).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            multimetric_allocation(
                np.array([10.0]), np.ones((1, 2)), np.ones(1), 1
            )
        with pytest.raises(ValueError):
            multimetric_allocation(
                np.array([10.0, 10.0]), np.ones((2, 2)), np.ones(1), 2
            )
        with pytest.raises(ValueError):
            multimetric_allocation(
                np.array([10.0]), np.ones((1, 1)), np.zeros(1), 1
            )
        with pytest.raises(ValueError):
            multimetric_allocation(
                np.array([10.0, 10.0]), np.ones((1, 2)), np.ones(1), 1
            )


class TestRandomProjection:
    def test_reduces_dimensions(self):
        X = np.random.default_rng(0).normal(size=(50, 40))
        P = random_projection(X, dims=5, seed=0)
        assert P.shape == (50, 5)

    def test_identity_when_already_small(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        P = random_projection(X, dims=15, seed=0)
        np.testing.assert_array_equal(P, X)

    def test_deterministic(self):
        X = np.random.default_rng(0).normal(size=(20, 30))
        np.testing.assert_array_equal(
            random_projection(X, 5, seed=1), random_projection(X, 5, seed=1)
        )

    def test_distance_preservation_in_expectation(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 100))
        P = random_projection(X, dims=40, seed=0)
        d_orig = np.linalg.norm(X[0] - X[1])
        d_proj = np.linalg.norm(P[0] - P[1])
        assert d_proj == pytest.approx(d_orig, rel=0.5)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            random_projection(np.ones((3, 3)), dims=0)


class TestProjectedPhaseModel:
    @pytest.fixture()
    def job(self):
        return make_synthetic_profile(
            [
                PhaseSpec(n_units=40, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=3.0, cpi_std=0.10, stack_index=1),
                PhaseSpec(n_units=40, cpi_mean=5.0, cpi_std=0.20, stack_index=2),
            ],
            seed=6,
        )

    def test_projection_preserves_phase_recovery(self, job):
        plain = PhaseModel.fit(job, seed=0)
        projected = PhaseModel.fit(job, seed=0, projection_dims=2)
        assert projected.k == plain.k
        assert projected.projection is not None

    def test_classification_roundtrip_with_projection(self, job):
        model = PhaseModel.fit(job, seed=0, projection_dims=2)
        reassigned = model.classify_job(job)
        assert (reassigned == model.assignments).mean() > 0.95

    def test_top_methods_still_named(self, job):
        model = PhaseModel.fit(job, seed=0, projection_dims=2)
        for h in range(model.k):
            for name, _lift in model.top_methods(h, 2):
                assert "." in name  # real method names, not projected axes
