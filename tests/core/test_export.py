"""Tests for the SimPoint-format export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.export import SimPointFiles, export_simpoints, load_simpoints
from repro.core.phases import PhaseModel
from repro.core.sampling import stratified_sample
from tests.helpers import PhaseSpec, make_synthetic_profile


@pytest.fixture()
def job_model_points():
    job = make_synthetic_profile(
        [
            PhaseSpec(n_units=80, cpi_mean=1.0, cpi_std=0.05, stack_index=0),
            PhaseSpec(n_units=40, cpi_mean=2.5, cpi_std=0.30, stack_index=1),
        ],
        seed=8,
    )
    model = PhaseModel.fit(job, seed=0)
    points = stratified_sample(
        model.assignments, job.profile.cpi(), 16,
        rng=np.random.default_rng(0), k=model.k,
    )
    return job, model, points


class TestExport:
    def test_files_written(self, job_model_points, tmp_path):
        _job, model, points = job_model_points
        files = export_simpoints(points, model, tmp_path, basename="wc")
        assert files.simpoints.name == "wc.simpoints"
        assert files.weights.name == "wc.weights"
        assert len(files.simpoints.read_text().splitlines()) == points.sample_size

    def test_roundtrip(self, job_model_points, tmp_path):
        _job, model, points = job_model_points
        files = export_simpoints(points, model, tmp_path)
        units, weights = load_simpoints(files)
        assert sorted(units) == sorted(int(u) for u in points.selected)
        assert weights.sum() == pytest.approx(1.0)

    def test_weighted_mean_reproduces_estimator(self, job_model_points, tmp_path):
        job, model, points = job_model_points
        files = export_simpoints(points, model, tmp_path)
        units, weights = load_simpoints(files)
        cpi = job.profile.cpi()
        assert weights @ cpi[units] == pytest.approx(points.estimate)

    def test_phase_weight_split_evenly(self, job_model_points, tmp_path):
        _job, model, points = job_model_points
        files = export_simpoints(points, model, tmp_path)
        units, weights = load_simpoints(files)
        # Points of the same phase carry equal weight.
        by_phase: dict[int, set[float]] = {}
        for u, w in zip(units, weights):
            by_phase.setdefault(int(model.assignments[u]), set()).add(round(w, 9))
        for phase, weight_set in by_phase.items():
            assert len(weight_set) == 1, phase

    def test_mismatched_files_raise(self, job_model_points, tmp_path):
        _job, model, points = job_model_points
        files = export_simpoints(points, model, tmp_path)
        files.weights.write_text("0.5 99\n")
        with pytest.raises(ValueError):
            load_simpoints(
                SimPointFiles(simpoints=files.simpoints, weights=files.weights)
            )
