"""Property-based tests on the core invariants (hypothesis).

These complement the targeted unit tests with randomised structure:
arbitrary phase layouts, CPI levels, and unit counts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.features import build_feature_matrix
from repro.core.phases import PhaseModel
from repro.core.profiler import ProfilerConfig, SimProfProfiler
from repro.core.sampling import stratified_sample
from tests.helpers import PhaseSpec, make_registry_with_stacks, make_synthetic_profile, make_trace

phase_specs = st.lists(
    st.tuples(
        st.integers(min_value=5, max_value=30),        # n_units
        st.floats(min_value=0.5, max_value=5.0),       # cpi mean
        st.floats(min_value=0.0, max_value=0.5),       # cpi std
    ),
    min_size=1,
    max_size=4,
)


def build_job(spec_rows, seed=0):
    specs = [
        PhaseSpec(n_units=n, cpi_mean=m, cpi_std=s, stack_index=i)
        for i, (n, m, s) in enumerate(spec_rows)
    ]
    return make_synthetic_profile(specs, seed=seed)


class TestProfileInvariants:
    @given(spec_rows=phase_specs)
    @settings(max_examples=25, deadline=None)
    def test_feature_rows_are_distributions(self, spec_rows):
        job = build_job(spec_rows)
        X = build_feature_matrix(job)
        np.testing.assert_allclose(X.sum(axis=1), 1.0)
        assert (X >= 0).all()

    @given(spec_rows=phase_specs)
    @settings(max_examples=20, deadline=None)
    def test_phase_model_invariants(self, spec_rows):
        job = build_job(spec_rows)
        model = PhaseModel.fit(job, seed=0)
        assert 1 <= model.k <= 20
        assert len(model.assignments) == job.n_units
        stats = model.phase_stats(job.profile.cpi())
        assert sum(s.n_units for s in stats) == job.n_units
        assert abs(sum(s.weight for s in stats) - 1.0) < 1e-9

    @given(spec_rows=phase_specs, n=st.integers(4, 40))
    @settings(max_examples=20, deadline=None)
    def test_stratified_estimate_within_range(self, spec_rows, n):
        job = build_job(spec_rows)
        model = PhaseModel.fit(job, seed=0)
        cpi = job.profile.cpi()
        est = stratified_sample(
            model.assignments, cpi, max(n, model.k),
            rng=np.random.default_rng(0), k=model.k,
        )
        # A weighted mean of per-phase sample means stays within the
        # population's range.
        assert cpi.min() - 1e-9 <= est.estimate <= cpi.max() + 1e-9
        assert est.standard_error >= 0


class TestProfilerInvariants:
    @given(
        seg_cpis=st.lists(
            st.floats(min_value=0.3, max_value=6.0), min_size=1, max_size=30
        ),
        unit_size=st.integers(min_value=50, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_unit_cpis_bounded_by_segment_cpis(self, seg_cpis, unit_size):
        registry, table, stacks = make_registry_with_stacks(n_stacks=2)
        trace = make_trace(
            [(stacks[i % 2], 100, cpi) for i, cpi in enumerate(seg_cpis)],
            table,
        )
        total = trace.total_instructions
        if total < unit_size:
            return  # not one full unit
        profiler = SimProfProfiler(
            ProfilerConfig(
                unit_size=unit_size,
                snapshot_period=max(1, unit_size // 10),
                snapshot_jitter=0.0,
            )
        )
        profile = profiler.profile_thread(trace)
        # Integer rounding of segment cycles introduces ±1 cycle per
        # 100-instruction segment => up to ~1% CPI slack.
        lo = min(seg_cpis) - 0.02
        hi = max(seg_cpis) + 0.02
        for unit in profile.units:
            assert lo <= unit.cpi <= hi
        assert profile.n_units == total // unit_size
