"""Unit tests for the input sensitivity test (Section III-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phases import PhaseModel, PhaseStats
from repro.core.sensitivity import (
    classify_units,
    input_sensitivity_test,
    phase_sensitivity_test,
)
from tests.helpers import PhaseSpec, make_synthetic_profile


def _stats(n, mean, std):
    return PhaseStats(0, n, 0.5, mean, std)


class TestPhaseSensitivityTest:
    def test_mean_shift_triggers(self):
        assert phase_sensitivity_test(_stats(10, 1.0, 0.1), _stats(10, 1.2, 0.1))

    def test_std_shift_triggers(self):
        # σ moves by 0.15 CPI on a mean of 1.0 (> the 10% threshold).
        assert phase_sensitivity_test(_stats(10, 1.0, 0.10), _stats(10, 1.0, 0.25))

    def test_std_shift_relative_to_mean(self):
        # A large *relative* σ change that is negligible next to the
        # mean does not trigger (the Eq. 6 refinement).
        assert not phase_sensitivity_test(
            _stats(10, 1.0, 0.013), _stats(10, 1.0, 0.015)
        )

    def test_small_shift_does_not_trigger(self):
        assert not phase_sensitivity_test(
            _stats(10, 1.0, 0.10), _stats(10, 1.05, 0.105)
        )

    def test_just_under_ten_percent_does_not_trigger(self):
        # Eq. 6 uses a strict inequality at the 10% boundary.
        assert not phase_sensitivity_test(
            _stats(10, 1.0, 0.1), _stats(10, 1.0999, 0.1099)
        )

    def test_empty_reference_phase_insensitive(self):
        assert not phase_sensitivity_test(_stats(10, 1.0, 0.1), _stats(0, 0, 0))

    def test_empty_training_phase_insensitive(self):
        assert not phase_sensitivity_test(_stats(0, 0, 0), _stats(10, 1.0, 0.1))

    def test_zero_training_std_with_spread_triggers(self):
        assert phase_sensitivity_test(_stats(10, 1.0, 0.0), _stats(10, 1.0, 0.3))

    def test_custom_threshold(self):
        assert phase_sensitivity_test(
            _stats(10, 1.0, 0.1), _stats(10, 1.06, 0.1), threshold=0.05
        )


class TestInputSensitivityTest:
    @pytest.fixture()
    def train_job(self):
        return make_synthetic_profile(
            [
                PhaseSpec(n_units=60, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=3.0, cpi_std=0.20, stack_index=1),
            ],
            seed=10,
        )

    @pytest.fixture()
    def model(self, train_job):
        model = PhaseModel.fit(train_job, seed=0)
        assert model.k == 2
        return model

    def _phase_of_stack(self, model, train_job, stack_index):
        """Map a planted stack index to the fitted phase id."""
        cpi = train_job.profile.cpi()
        stats = model.phase_stats(cpi)
        # stack 0 planted at CPI 1.0, stack 1 at CPI 3.0
        by_mean = sorted(stats, key=lambda s: s.cpi_mean)
        return by_mean[stack_index].phase_id

    def test_shifted_phase_flagged_sensitive(self, train_job, model):
        # Reference input: phase 1 (stack 1) moved from CPI 3.0 to 4.2.
        ref = make_synthetic_profile(
            [
                PhaseSpec(n_units=50, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=50, cpi_mean=4.2, cpi_std=0.20, stack_index=1),
            ],
            seed=11,
        )
        result = input_sensitivity_test(model, train_job, {"ref": ref})
        sensitive = set(result.sensitive_phases)
        wild = self._phase_of_stack(model, train_job, 1)
        calm = self._phase_of_stack(model, train_job, 0)
        assert wild in sensitive
        assert calm not in sensitive
        assert result.phases[wild].triggered_by == ("ref",)

    def test_identical_reference_all_insensitive(self, train_job, model):
        ref = make_synthetic_profile(
            [
                PhaseSpec(n_units=60, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=3.0, cpi_std=0.20, stack_index=1),
            ],
            seed=10,  # identical generation
        )
        result = input_sensitivity_test(model, train_job, {"ref": ref})
        assert result.sensitive_phases == []
        assert len(result.insensitive_phases) == model.k

    def test_any_reference_can_flag(self, train_job, model):
        same = make_synthetic_profile(
            [
                PhaseSpec(n_units=60, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=3.0, cpi_std=0.20, stack_index=1),
            ],
            seed=10,
        )
        shifted = make_synthetic_profile(
            [
                PhaseSpec(n_units=60, cpi_mean=1.5, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=3.0, cpi_std=0.20, stack_index=1),
            ],
            seed=12,
        )
        result = input_sensitivity_test(
            model, train_job, {"same": same, "shifted": shifted}
        )
        calm = self._phase_of_stack(model, train_job, 0)
        assert calm in result.sensitive_phases
        assert "shifted" in result.phases[calm].triggered_by
        assert "same" not in result.phases[calm].triggered_by

    def test_sensitive_point_fraction(self, train_job, model):
        # Large calm phase: its sample mean/std stay within 10% of the
        # training values, so only the shifted phase is sensitive.
        ref = make_synthetic_profile(
            [
                PhaseSpec(n_units=400, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=4.5, cpi_std=0.20, stack_index=1),
            ],
            seed=13,
        )
        result = input_sensitivity_test(model, train_job, {"ref": ref})
        wild = self._phase_of_stack(model, train_job, 1)
        assert wild in result.sensitive_phases
        allocation = np.zeros(model.k, dtype=np.int64)
        allocation[wild] = 15
        allocation[1 - wild] = 5
        expected = sum(allocation[h] for h in result.sensitive_phases) / 20
        got = result.sensitive_point_fraction(allocation)
        assert got == pytest.approx(expected)
        assert got >= 0.75

    def test_zero_allocation(self, train_job, model):
        result = input_sensitivity_test(model, train_job, {})
        assert result.sensitive_point_fraction(np.zeros(model.k)) == 0.0

    def test_classify_units_exposed(self, train_job, model):
        assignments = classify_units(model, train_job)
        assert len(assignments) == train_job.n_units
