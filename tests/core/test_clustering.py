"""Unit and property tests for k-means, silhouette, and k selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import choose_k, kmeans, silhouette_score


def blobs(centers, n_per, spread, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for c in centers:
        points.append(rng.normal(c, spread, size=(n_per, len(c))))
    return np.vstack(points)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        X = blobs([[0, 0], [10, 10], [0, 10]], 30, 0.3)
        result = kmeans(X, 3, seed=0)
        assert result.k == 3
        sizes = sorted(result.cluster_sizes())
        assert sizes == [30, 30, 30]

    def test_k_capped_at_n(self):
        X = np.array([[0.0], [1.0]])
        result = kmeans(X, 5, seed=0)
        assert result.k <= 2

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 2)), 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)

    def test_deterministic_per_seed(self):
        X = blobs([[0, 0], [5, 5]], 20, 0.5)
        a = kmeans(X, 2, seed=7)
        b = kmeans(X, 2, seed=7)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_identical_points(self):
        X = np.ones((10, 3))
        result = kmeans(X, 2, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_inertia_decreases_with_k(self):
        X = blobs([[0, 0], [4, 4], [8, 0]], 25, 0.8)
        inertias = [kmeans(X, k, seed=0).inertia for k in (1, 2, 3)]
        assert inertias[0] >= inertias[1] >= inertias[2]

    @given(
        n=st.integers(min_value=3, max_value=40),
        k=st.integers(min_value=1, max_value=6),
        dim=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_assignments_always_valid(self, n, k, dim):
        rng = np.random.default_rng(n * 100 + k)
        X = rng.normal(size=(n, dim))
        result = kmeans(X, k, seed=0)
        assert len(result.assignments) == n
        assert result.assignments.min() >= 0
        assert result.assignments.max() < result.k
        assert np.isfinite(result.inertia)


class TestSilhouette:
    def test_separated_blobs_score_high(self):
        X = blobs([[0, 0], [20, 20]], 30, 0.5)
        labels = kmeans(X, 2, seed=0).assignments
        assert silhouette_score(X, labels) > 0.9

    def test_random_labels_score_low(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, 60)
        assert silhouette_score(X, labels) < 0.3

    def test_single_cluster_scores_zero(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        assert silhouette_score(X, np.zeros(10, dtype=int)) == 0.0

    def test_subsampling_close_to_exact(self):
        X = blobs([[0, 0], [6, 6]], 120, 1.0)
        labels = kmeans(X, 2, seed=0).assignments
        exact = silhouette_score(X, labels, max_points=10_000)
        sampled = silhouette_score(X, labels, max_points=100, seed=1)
        assert abs(exact - sampled) < 0.1

    def test_matches_known_value(self):
        """Tiny handcrafted case cross-checked by hand."""
        X = np.array([[0.0], [0.5], [10.0], [10.5]])
        labels = np.array([0, 0, 1, 1])
        # a = 0.5 for every point; b ≈ 9.75/10.25 average distances.
        score = silhouette_score(X, labels)
        assert 0.9 < score < 1.0


class TestChooseK:
    def test_finds_three_blobs(self):
        X = blobs([[0, 0], [10, 0], [0, 10]], 40, 0.4)
        k, scores = choose_k(X, seed=0)
        assert k == 3
        assert scores[3] == max(scores.values())

    def test_no_structure_returns_one(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 3)) * 0.01
        k, _ = choose_k(X, seed=0)
        assert k == 1

    def test_identical_rows_return_one(self):
        X = np.ones((50, 4))
        k, _ = choose_k(X, seed=0)
        assert k == 1

    def test_prefers_smallest_k_within_threshold(self):
        """With threshold 0, the smallest k (2) always wins."""
        X = blobs([[0, 0], [10, 0], [0, 10], [10, 10]], 20, 0.3)
        k, _ = choose_k(X, score_threshold=0.0, seed=0)
        assert k == 2

    def test_k_max_respected(self):
        X = blobs([[i * 10, 0] for i in range(6)], 10, 0.2)
        k, scores = choose_k(X, k_max=4, seed=0)
        assert k <= 4
        assert max(scores) <= 4

    def test_tiny_input(self):
        k, _ = choose_k(np.array([[1.0], [2.0]]), seed=0)
        assert k == 1
