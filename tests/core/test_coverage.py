"""Tests for sample stage coverage (the SECOND criticism, measured)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import SecondSampler, SimProfSampler
from repro.core.coverage import stage_coverage, unit_stage_matrix
from repro.jvm.job import JobTrace
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.methods import MethodRegistry, StackTable
from repro.jvm.threads import ThreadTrace, TraceSegment


def two_stage_trace() -> ThreadTrace:
    """Stage 0 for 300 instructions, stage 1 for 100."""
    trace = ThreadTrace(thread_id=0, core_id=0)
    trace.segments.append(TraceSegment(0, OpKind.MAP, 300, 300, 0, 0, stage_id=0))
    trace.segments.append(TraceSegment(1, OpKind.REDUCE, 100, 300, 0, 0, stage_id=1))
    return trace


def as_job(trace: ThreadTrace) -> JobTrace:
    registry = MethodRegistry()
    return JobTrace(
        framework="hadoop",
        workload="t",
        input_name="default",
        registry=registry,
        stack_table=StackTable(registry),
        machine=MachineConfig(),
        traces=[trace],
    )


class TestUnitStageMatrix:
    def test_shapes_and_mass(self):
        stage_ids, matrix = unit_stage_matrix(two_stage_trace(), unit_size=100)
        assert list(stage_ids) == [0, 1]
        assert matrix.shape == (4, 2)
        # Units 0-2 are pure stage 0; unit 3 pure stage 1.
        np.testing.assert_allclose(matrix[:3, 0], 100)
        np.testing.assert_allclose(matrix[3], [0, 100])

    def test_straddling_unit_split(self):
        trace = ThreadTrace(thread_id=0, core_id=0)
        trace.segments.append(TraceSegment(0, OpKind.MAP, 150, 150, 0, 0, stage_id=0))
        trace.segments.append(TraceSegment(1, OpKind.MAP, 50, 50, 0, 0, stage_id=1))
        _ids, matrix = unit_stage_matrix(trace, unit_size=100)
        np.testing.assert_allclose(matrix[1], [50, 50])


class TestStageCoverage:
    def test_full_sample_covers_everything(self):
        job = as_job(two_stage_trace())
        cov = stage_coverage(job, 0, np.arange(4), unit_size=100)
        assert cov.n_covered == cov.n_stages == 2
        assert cov.covered_weight == pytest.approx(1.0)
        assert cov.missed_stages == []

    def test_early_sample_misses_late_stage(self):
        """The SECOND failure mode: a contiguous early window never sees
        the reduce stage."""
        job = as_job(two_stage_trace())
        cov = stage_coverage(job, 0, np.array([0, 1]), unit_size=100)
        assert cov.missed_stages == [1]
        assert cov.covered_weight == pytest.approx(0.75)

    def test_min_fraction_filters_stray_segments(self):
        trace = ThreadTrace(thread_id=0, core_id=0)
        trace.segments.append(TraceSegment(0, OpKind.MAP, 99, 99, 0, 0, stage_id=0))
        trace.segments.append(TraceSegment(1, OpKind.MAP, 1, 1, 0, 0, stage_id=1))
        trace.segments.append(TraceSegment(1, OpKind.MAP, 100, 100, 0, 0, stage_id=1))
        job = as_job(trace)
        cov = stage_coverage(job, 0, np.array([0]), unit_size=100,
                             min_fraction=0.05)
        # The 1% sliver of stage 1 inside unit 0 does not count.
        assert cov.missed_stages == [1]

    def test_out_of_task_work_excluded(self):
        trace = two_stage_trace()
        trace.segments.append(TraceSegment(2, OpKind.GC, 100, 100, 0, 0,
                                           stage_id=-1))
        job = as_job(trace)
        cov = stage_coverage(job, 0, np.arange(5), unit_size=100)
        assert -1 not in list(cov.stage_ids)


class TestOnRealWorkload:
    def test_simprof_covers_more_stages_than_tiny_window(
        self, wc_hadoop_trace, simprof_tool
    ):
        job = simprof_tool.profile(wc_hadoop_trace)
        model = simprof_tool.form_phases(job)
        unit = job.profile.unit_size

        simprof_sel = SimProfSampler(20).sample(
            job, model, np.random.default_rng(0)
        ).selected
        # A window far too small to span the map and reduce stages.
        second_sel = SecondSampler(seconds=0.02).sample(job).selected

        cov_simprof = stage_coverage(
            wc_hadoop_trace, job.profile.thread_id, simprof_sel, unit
        )
        cov_second = stage_coverage(
            wc_hadoop_trace, job.profile.thread_id, second_sel, unit
        )
        assert cov_simprof.n_covered >= cov_second.n_covered
        assert cov_simprof.covered_weight >= 0.99
