"""Unit tests for feature vectorisation and selection (Section III-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    FeatureSpace,
    build_feature_matrix,
    select_features,
    univariate_regression_scores,
)
from tests.helpers import PhaseSpec, make_synthetic_profile


@pytest.fixture()
def two_phase_job():
    return make_synthetic_profile(
        [
            PhaseSpec(n_units=40, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
            PhaseSpec(n_units=40, cpi_mean=3.0, cpi_std=0.05, stack_index=1),
        ],
        seed=1,
    )


class TestBuildFeatureMatrix:
    def test_shape(self, two_phase_job):
        X = build_feature_matrix(two_phase_job)
        assert X.shape == (80, len(two_phase_job.registry))

    def test_rows_normalised(self, two_phase_job):
        X = build_feature_matrix(two_phase_job)
        np.testing.assert_allclose(X.sum(axis=1), 1.0)

    def test_raw_counts_mode(self, two_phase_job):
        raw = build_feature_matrix(two_phase_job, normalize=False)
        # Every unit has 20 snapshots over stacks of depth 5.
        assert raw.sum(axis=1).min() == pytest.approx(100)

    def test_shared_base_frames_in_every_unit(self, two_phase_job):
        X = build_feature_matrix(two_phase_job)
        # Thread.run (method id 0) is on every stack.
        assert (X[:, 0] > 0).all()


class TestRegressionScores:
    def test_correlated_feature_scores_high(self):
        rng = np.random.default_rng(0)
        n = 200
        y = rng.normal(1.0, 0.3, n)
        X = np.column_stack([
            y + rng.normal(0, 0.01, n),     # strongly correlated
            rng.normal(0, 1, n),            # noise
            np.full(n, 0.5),                # constant
        ])
        scores = univariate_regression_scores(X, y)
        assert scores[0] > scores[1]
        assert scores[2] == 0.0

    def test_too_few_units(self):
        scores = univariate_regression_scores(np.ones((2, 3)), np.ones(2))
        assert (scores == 0).all()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            univariate_regression_scores(np.ones((5, 2)), np.ones(4))


class TestSelectFeatures:
    def test_selects_phase_discriminating_methods(self, two_phase_job):
        X = build_feature_matrix(two_phase_job)
        ipc = two_phase_job.profile.ipc()
        ids, scores = select_features(X, ipc, top_k=10)
        assert len(ids) > 0
        # The selected methods must include the phase-specific ops,
        # whose frequency tracks the CPI split.
        names = {two_phase_job.registry.fqn(int(m)) for m in ids}
        assert any("Op0" in n or "Op1" in n for n in names)

    def test_flat_ipc_selects_nothing(self):
        job = make_synthetic_profile(
            [
                PhaseSpec(n_units=40, cpi_mean=1.0, cpi_std=0.0, stack_index=0),
                PhaseSpec(n_units=40, cpi_mean=1.0, cpi_std=0.0, stack_index=1),
            ],
            seed=0,
        )
        X = build_feature_matrix(job)
        ids, _ = select_features(X, job.profile.ipc(), top_k=10)
        assert len(ids) == 0

    def test_top_k_bounds_count(self, two_phase_job):
        X = build_feature_matrix(two_phase_job)
        ipc = two_phase_job.profile.ipc()
        ids, _ = select_features(X, ipc, top_k=2)
        assert len(ids) <= 2

    def test_min_appearances_floor(self, two_phase_job):
        X = build_feature_matrix(two_phase_job)
        raw = build_feature_matrix(two_phase_job, normalize=False)
        ipc = two_phase_job.profile.ipc()
        # An absurd floor removes everything.
        ids, _ = select_features(
            X, ipc, mean_appearances=raw.mean(axis=0), min_appearances=1e9
        )
        assert len(ids) == 0


class TestFeatureSpace:
    def test_fit_returns_selected_matrix(self, two_phase_job):
        space, X_sel = FeatureSpace.fit(two_phase_job, top_k=50)
        assert X_sel.shape == (80, space.n_features)
        assert len(space.method_fqns) == space.n_features

    def test_transform_slices_columns(self, two_phase_job):
        space, X_sel = FeatureSpace.fit(two_phase_job)
        X_full = build_feature_matrix(two_phase_job)
        np.testing.assert_allclose(space.transform(X_full), X_sel)

    def test_project_job_self_consistent(self, two_phase_job):
        """Projecting the training job reproduces the training matrix."""
        space, X_sel = FeatureSpace.fit(two_phase_job)
        X_proj = space.project_job(two_phase_job)
        np.testing.assert_allclose(X_proj, X_sel, atol=1e-12)

    def test_project_job_matches_methods_by_name(self):
        """A reference profile with a different registry projects into
        the training space through method names."""
        train = make_synthetic_profile(
            [
                PhaseSpec(n_units=30, cpi_mean=1.0, cpi_std=0.02, stack_index=0),
                PhaseSpec(n_units=30, cpi_mean=2.5, cpi_std=0.05, stack_index=1),
            ],
            seed=2,
        )
        # Same structure, independent registry (fresh intern order).
        ref = make_synthetic_profile(
            [
                PhaseSpec(n_units=20, cpi_mean=1.1, cpi_std=0.02, stack_index=1),
                PhaseSpec(n_units=20, cpi_mean=2.4, cpi_std=0.05, stack_index=0),
            ],
            seed=3,
        )
        space, _ = FeatureSpace.fit(train)
        X_ref = space.project_job(ref)
        assert X_ref.shape == (40, space.n_features)
        assert X_ref.sum() > 0  # names resolved across registries
