"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported as a module and ``main()``
called) with stdout captured — so a broken API surface in any example
fails the suite.  Marked slow: each runs a real workload.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Simulation points" in out
        assert "confidence interval" in out

    def test_simulation_budget_planning(self, capsys):
        out = run_example("simulation_budget_planning", capsys)
        assert "SimProf @ 5% CPI error" in out
        assert "Empirical error" in out

    def test_graph_input_sensitivity(self, capsys):
        out = run_example("graph_input_sensitivity", capsys)
        assert "Per-phase verdicts" in out
        assert "can be skipped" in out

    def test_custom_workload(self, capsys):
        out = run_example("custom_workload", capsys)
        assert "Phases found" in out
        assert "simulation points" in out

    def test_combined_systematic(self, capsys):
        out = run_example("combined_systematic", capsys)
        assert "speedup" in out
        assert "cold-start bias" in out
