"""Positive/negative fixture snippets for every SPA rule."""

import textwrap

import pytest

from repro.analysis import check_source, get_rule


def check(source, *, module="repro.core.example", rule=None, path=None):
    rules = [get_rule(rule)] if rule else None
    return check_source(
        textwrap.dedent(source),
        path=path or f"src/{module.replace('.', '/')}.py",
        module=module,
        rules=rules,
    )


class TestSPA001GlobalRng:
    def test_stdlib_module_functions_flagged(self):
        findings = check(
            """
            import random

            def jitter():
                random.seed(42)
                return random.random() + random.randint(0, 3)
            """,
            rule="SPA001",
        )
        assert len(findings) == 3
        assert all(f.rule == "SPA001" for f in findings)

    def test_numpy_legacy_api_flagged_through_aliases(self):
        findings = check(
            """
            import numpy as np
            import numpy.random as npr
            from numpy.random import rand

            def draw():
                np.random.seed(7)
                a = npr.random(3)
                return a + rand(3)
            """,
            rule="SPA001",
        )
        assert len(findings) == 3

    def test_explicit_generator_passes(self):
        findings = check(
            """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(np.random.SeedSequence([seed, 1]))
                return rng.normal(size=4)
            """,
            rule="SPA001",
        )
        assert findings == []

    def test_seeded_stdlib_instance_passes(self):
        findings = check(
            """
            import random

            def draw(seed):
                return random.Random(seed).random()
            """,
            rule="SPA001",
        )
        assert findings == []


class TestSPA002WallClock:
    def test_clock_in_deterministic_package_flagged(self):
        findings = check(
            """
            import time
            from datetime import datetime

            def simulate():
                start = time.perf_counter()
                stamp = datetime.now()
                return start, stamp
            """,
            module="repro.jvm.machine",
            rule="SPA002",
        )
        assert len(findings) == 2
        assert "repro.jvm.machine" in findings[0].message

    def test_clock_outside_scope_passes(self):
        source = """
            import time

            def measure():
                return time.perf_counter()
            """
        assert check(source, module="repro.cli", rule="SPA002") == []
        assert check(source, module="repro.runtime.store", rule="SPA002") == []

    def test_instrumentation_modules_exempt(self):
        findings = check(
            """
            import time

            def tick():
                return time.monotonic()
            """,
            module="repro.core.instrumentation",
            rule="SPA002",
        )
        assert findings == []


class TestSPA003SeedDiscipline:
    def test_entropy_seeding_flagged_everywhere(self):
        findings = check(
            """
            import numpy as np

            def _helper():
                return np.random.default_rng()
            """,
            rule="SPA003",
        )
        assert len(findings) == 1
        assert "OS entropy" in findings[0].message

    def test_public_function_without_seed_param_flagged(self):
        findings = check(
            """
            import numpy as np

            def select_points(job, n):
                rng = np.random.default_rng(0)
                return rng.choice(n)
            """,
            rule="SPA003",
        )
        assert len(findings) == 1
        assert "select_points" in findings[0].message

    def test_rng_parameter_fallback_idiom_passes(self):
        findings = check(
            """
            import numpy as np

            def select_points(job, n, rng=None):
                rng = rng or np.random.default_rng(0)
                return rng.choice(n)
            """,
            rule="SPA003",
        )
        assert findings == []

    def test_seed_threaded_from_config_passes(self):
        findings = check(
            """
            import numpy as np

            def run(cfg, draw):
                rng = np.random.default_rng(
                    np.random.SeedSequence([cfg.seed, draw])
                )
                return rng.normal()
            """,
            rule="SPA003",
        )
        assert findings == []

    def test_module_level_hardcoded_rng_flagged(self):
        findings = check(
            """
            import numpy as np

            RNG = np.random.default_rng(0)
            """,
            rule="SPA003",
        )
        assert len(findings) == 1
        assert "module-level" in findings[0].message

    def test_pytest_fixture_exempt(self):
        findings = check(
            """
            import numpy as np
            import pytest

            @pytest.fixture()
            def rng():
                return np.random.default_rng(12345)
            """,
            module="tests.conftest",
            rule="SPA003",
        )
        assert findings == []


class TestSPA004UnorderedIteration:
    def test_dict_view_in_hashing_function_flagged(self):
        findings = check(
            """
            def stable_hash(params):
                parts = [f"{k}={v}" for k, v in params.items()]
                return "|".join(parts)
            """,
            rule="SPA004",
        )
        assert len(findings) == 1
        assert "stable_hash" in findings[0].message

    def test_set_literal_for_loop_in_manifest_flagged(self):
        findings = check(
            """
            def write_manifest(out):
                for name in {"b", "a"}:
                    out.append(name)
            """,
            rule="SPA004",
        )
        assert len(findings) == 1

    def test_sorted_wrapper_passes(self):
        findings = check(
            """
            def stable_hash(params):
                parts = sorted(f"{k}={v}" for k, v in params.items())
                return "|".join(parts)
            """,
            rule="SPA004",
        )
        assert findings == []

    def test_non_sensitive_scope_passes(self):
        findings = check(
            """
            def tally(counts):
                return [k for k in counts.keys()]
            """,
            rule="SPA004",
        )
        assert findings == []

    def test_order_insensitive_consumer_passes(self):
        findings = check(
            """
            def feature_total(row):
                return sum(v for v in row.values())
            """,
            rule="SPA004",
        )
        assert findings == []


class TestSPA005DocstringDrift:
    def test_stale_default_flagged(self):
        findings = check(
            """
            from dataclasses import dataclass

            @dataclass
            class ProfilerConfig:
                '''Knobs.

                ``snapshot_period`` defaults to 10 M instructions.
                '''

                snapshot_period: int = 2_000_000
            """,
            rule="SPA005",
        )
        assert len(findings) == 1
        assert "1e+07" in findings[0].message or "10000000" in findings[0].message
        # Anchored at the docstring line carrying the stale claim.
        assert "10 M" in findings[0].line_text

    def test_matching_default_passes(self):
        findings = check(
            """
            from dataclasses import dataclass

            @dataclass
            class ProfilerConfig:
                '''``snapshot_period``, default 2 M (see paper).'''

                snapshot_period: int = 2_000_000
            """,
            rule="SPA005",
        )
        assert findings == []

    def test_keyword_default_checked(self):
        findings = check(
            """
            def select(X, top_k=100):
                '''Keep the ``top_k`` (default 250) best methods.'''
                return X[:top_k]
            """,
            rule="SPA005",
        )
        assert len(findings) == 1

    def test_unknown_names_ignored(self):
        findings = check(
            """
            UNIT = 100

            def run():
                '''The paper's ``other_knob`` default 7 does not exist here.'''
            """,
            rule="SPA005",
        )
        assert findings == []


class TestSPA006SilentSwallow:
    def test_bare_except_pass_flagged(self):
        findings = check(
            """
            def cleanup(path):
                try:
                    path.unlink()
                except:
                    pass
            """,
            rule="SPA006",
        )
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_broad_exception_ellipsis_flagged(self):
        findings = check(
            """
            def load(store, key):
                try:
                    return store.get(key)
                except Exception:
                    ...
            """,
            rule="SPA006",
        )
        assert len(findings) == 1
        assert "except Exception" in findings[0].message

    def test_tuple_containing_broad_type_flagged(self):
        findings = check(
            """
            def load(store, key):
                try:
                    return store.get(key)
                except (KeyError, Exception):
                    pass
            """,
            rule="SPA006",
        )
        assert len(findings) == 1

    def test_narrow_handler_allowed(self):
        findings = check(
            """
            import os

            def sweep(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            """,
            rule="SPA006",
        )
        assert findings == []

    def test_broad_handler_with_real_body_allowed(self):
        findings = check(
            """
            def load(store, key, report):
                try:
                    return store.get(key)
                except Exception as exc:
                    report.record("store", "load", "degraded")
                    return None
            """,
            rule="SPA006",
        )
        assert findings == []

    def test_out_of_tree_module_ignored(self):
        findings = check(
            """
            def cleanup():
                try:
                    risky()
                except Exception:
                    pass
            """,
            module="tests.helpers",
            path="tests/helpers.py",
            rule="SPA006",
        )
        assert findings == []


class TestSPA007QuadraticDistance:
    def test_norm_over_difference_flagged(self):
        findings = check(
            """
            import numpy as np

            def nearest(X, C):
                d = np.linalg.norm(X[:, None, :] - C[None, :, :], axis=-1)
                return d.argmin(axis=1)
            """,
            rule="SPA007",
        )
        # Both the norm-over-difference and the broadcast-subtract fire.
        assert len(findings) == 2
        assert all(f.rule == "SPA007" for f in findings)

    def test_broadcast_subtract_flagged(self):
        findings = check(
            """
            def dists(a, b):
                return ((a[:, None] - b[None, :]) ** 2).sum(axis=-1)
            """,
            rule="SPA007",
        )
        assert len(findings) == 1
        assert "broadcast-subtract" in findings[0].message

    def test_gram_matrix_expression_passes(self):
        findings = check(
            """
            def sq_dists(X, C):
                return (
                    (X**2).sum(axis=1)[:, None]
                    + (C**2).sum(axis=1)[None, :]
                    - 2.0 * X @ C.T
                )
            """,
            rule="SPA007",
        )
        assert findings == []

    def test_norm_without_difference_passes(self):
        findings = check(
            """
            import numpy as np

            def lengths(X):
                return np.linalg.norm(X, axis=1)
            """,
            rule="SPA007",
        )
        assert findings == []

    def test_clustering_module_exempt(self):
        findings = check(
            """
            def helper(a, b):
                return a[:, None] - b[None, :]
            """,
            module="repro.core.clustering",
            rule="SPA007",
        )
        assert findings == []

    def test_reference_module_exempt(self):
        findings = check(
            """
            def old(a, b):
                return a[:, None] - b[None, :]
            """,
            module="repro.core._reference",
            rule="SPA007",
        )
        assert findings == []

    def test_outside_core_ignored(self):
        findings = check(
            """
            import numpy as np

            def fine(X, C):
                return np.linalg.norm(X[:, None] - C[None, :], axis=-1)
            """,
            module="repro.workloads.synthetic",
            rule="SPA007",
        )
        assert findings == []


class TestSPA008Columnar:
    def test_for_loop_over_batch_data_flagged(self):
        findings = check(
            """
            def cut(batch):
                out = []
                for row in batch.data:
                    out.append(row["instructions"])
                return out
            """,
            module="repro.core.profiler",
            rule="SPA008",
        )
        assert len(findings) == 1
        assert "per-element for-loop" in findings[0].message

    def test_comprehension_over_packer_call_flagged(self):
        findings = check(
            """
            def ship(trace):
                return [int(r["cycles"]) for r in trace.to_structured()]
            """,
            module="repro.jvm.stream",
            rule="SPA008",
        )
        assert len(findings) == 1
        assert "comprehension" in findings[0].message

    def test_tainted_local_name_flagged(self):
        findings = check(
            """
            def ship(trace):
                packed = trace.drain_structured()
                for row in packed:
                    yield row
            """,
            module="repro.jvm.stream",
            rule="SPA008",
        )
        assert len(findings) == 1

    def test_zip_over_column_slices_flagged(self):
        findings = check(
            """
            def pairs(batch):
                for sid, n in zip(batch.data["stack_id"], batch.data["instructions"]):
                    yield sid, n
            """,
            module="repro.faults.stream",
            rule="SPA008",
        )
        assert len(findings) == 1

    def test_tolist_flagged(self):
        findings = check(
            """
            def export(arr):
                return arr.tolist()
            """,
            module="repro.core.features",
            rule="SPA008",
        )
        assert len(findings) == 1
        assert "tolist" in findings[0].message

    def test_object_dtype_flagged(self):
        findings = check(
            """
            import numpy as np

            def boxes(rows):
                a = np.empty(len(rows), dtype=object)
                b = np.array(rows, dtype="object")
                return a, b, np.dtype(object)
            """,
            module="repro.core.features",
            rule="SPA008",
        )
        assert len(findings) == 3
        assert all("object dtype" in f.message for f in findings)

    def test_column_arithmetic_passes(self):
        findings = check(
            """
            import numpy as np

            def totals(batch):
                data = batch.data
                cum = np.cumsum(data["instructions"])
                hit = np.searchsorted(cum, 100, side="right")
                return int(cum[-1]), int(data["stack_id"][hit])
            """,
            module="repro.core.profiler",
            rule="SPA008",
        )
        assert findings == []

    def test_iteration_over_plain_locals_passes(self):
        findings = check(
            """
            import numpy as np

            def boundaries(n, size):
                bs = np.arange(0, n, size)
                return [int(b) for b in bs]
            """,
            module="repro.core.profiler",
            rule="SPA008",
        )
        assert findings == []

    def test_taint_is_function_scoped(self):
        # A packer-call rebinding in one function must not taint the
        # same name in another.
        findings = check(
            """
            def a(segments):
                segments = segments_to_array(segments)
                return segments

            def b(segments):
                return [s.cycles for s in segments]
            """,
            module="repro.jvm.segments",
            rule="SPA008",
        )
        assert findings == []

    def test_reference_module_exempt(self):
        findings = check(
            """
            def old(batch):
                for row in batch.data:
                    yield row
            """,
            module="repro.jvm._reference",
            rule="SPA008",
        )
        assert findings == []

    def test_outside_trace_plane_ignored(self):
        findings = check(
            """
            def assemble(event):
                for row in event.data:
                    yield row
            """,
            module="repro.jvm.job",
            rule="SPA008",
        )
        assert findings == []

    def test_inline_suppression_with_justification(self):
        findings = check(
            """
            def adapt(data):
                return [
                    row["stack_id"]
                    for row in data  # simprof: ignore[SPA008] -- adapter
                ]
            """,
            module="repro.jvm.segments",
            rule="SPA008",
        )
        assert findings == []


class TestRegistry:
    def test_all_module_rules_registered(self):
        from repro.analysis import all_rules

        ids = [r.id for r in all_rules()]
        assert ids == [
            "SPA001", "SPA002", "SPA003", "SPA004", "SPA005", "SPA006",
            "SPA007", "SPA008",
        ]

    def test_all_project_rules_registered(self):
        from repro.analysis import all_project_rules

        ids = [r.id for r in all_project_rules()]
        assert ids == ["SPA009", "SPA010", "SPA011", "SPA012", "SPA013"]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="SPA999"):
            get_rule("SPA999")

    def test_unknown_project_rule_raises(self):
        from repro.analysis import get_project_rule

        with pytest.raises(KeyError, match="SPA999"):
            get_project_rule("SPA999")
