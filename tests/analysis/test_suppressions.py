"""Inline ``# simprof: ignore[...]`` handling."""

import textwrap

from repro.analysis import check_source
from repro.analysis.suppressions import parse_suppressions


def check(source, **kwargs):
    kwargs.setdefault("module", "repro.core.example")
    kwargs.setdefault("path", "src/repro/core/example.py")
    return check_source(textwrap.dedent(source), **kwargs)


class TestInlineSuppression:
    SOURCE = """
        import random

        def jitter():
            return random.random(){comment}
        """

    def test_unsuppressed_finding_reported(self):
        assert len(check(self.SOURCE.format(comment=""))) == 1

    def test_same_line_rule_suppression(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA001]")
        )
        assert findings == []

    def test_justification_text_allowed(self):
        findings = check(
            self.SOURCE.format(
                comment="  # simprof: ignore[SPA001] -- fuzzing helper"
            )
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA002]")
        )
        assert len(findings) == 1

    def test_bare_ignore_suppresses_all_rules(self):
        findings = check(self.SOURCE.format(comment="  # simprof: ignore"))
        assert findings == []

    def test_multiple_rules_in_one_marker(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA004, SPA001]")
        )
        assert findings == []

    def test_preceding_comment_line_suppresses(self):
        findings = check(
            """
            import random

            def jitter():
                # simprof: ignore[SPA001] -- jitter need not replay
                return random.random()
            """
        )
        assert findings == []

    def test_preceding_code_line_marker_does_not_leak_downward(self):
        # The marker suppresses its own line, but it is not a
        # standalone comment, so the *next* line stays flagged.
        findings = check(
            """
            import random

            def jitter():
                a = random.random()  # simprof: ignore[SPA001]
                b = random.random()
                return a + b
            """
        )
        assert len(findings) == 1
        assert findings[0].line == 6


class TestMultiRuleLines:
    # One line violating two different rules at once: wall-clock read
    # (SPA002) feeding a stdlib global-RNG seed (SPA001).
    SOURCE = """
        import random
        import time

        def jitter():
            random.seed(int(time.time())){comment}
        """

    def test_both_rules_fire_unsuppressed(self):
        findings = check(self.SOURCE.format(comment=""))
        assert sorted({f.rule for f in findings}) == ["SPA001", "SPA002"]

    def test_naming_one_rule_leaves_the_other(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA002]")
        )
        assert sorted({f.rule for f in findings}) == ["SPA001"]

    def test_one_marker_naming_both_silences_both(self):
        findings = check(
            self.SOURCE.format(
                comment="  # simprof: ignore[SPA001, SPA002] -- fuzz seed"
            )
        )
        assert findings == []

    def test_bare_marker_silences_both(self):
        findings = check(self.SOURCE.format(comment="  # simprof: ignore"))
        assert findings == []


class TestMarkerRecognition:
    def test_docstring_marker_is_documentation_not_suppression(self):
        findings = check(
            '''
            import random

            def jitter():
                """Example: x()  # simprof: ignore[SPA001]"""
                return random.random()
            '''
        )
        assert len(findings) == 1

    def test_string_literal_marker_not_a_suppression(self):
        idx = parse_suppressions(
            ['text = "# simprof: ignore[SPA001]"', "y = f()"]
        )
        assert len(idx) == 0


class TestParseSuppressions:
    def test_index_lookup(self):
        idx = parse_suppressions(
            [
                "x = 1",
                "y = f()  # simprof: ignore[SPA003]",
                "# simprof: ignore",
                "z = g()",
            ]
        )
        assert idx.is_suppressed("SPA003", 2)
        assert not idx.is_suppressed("SPA001", 2)
        assert idx.is_suppressed("SPA001", 3)
        assert idx.is_suppressed("SPA005", 4)  # standalone comment above
        assert not idx.is_suppressed("SPA001", 1)

    def test_case_insensitive_rule_ids(self):
        idx = parse_suppressions(["f()  # simprof: ignore[spa001]"])
        assert idx.is_suppressed("SPA001", 1)
