"""Inline ``# simprof: ignore[...]`` handling."""

import textwrap

from repro.analysis import check_source
from repro.analysis.suppressions import parse_suppressions


def check(source, **kwargs):
    kwargs.setdefault("module", "repro.core.example")
    kwargs.setdefault("path", "src/repro/core/example.py")
    return check_source(textwrap.dedent(source), **kwargs)


class TestInlineSuppression:
    SOURCE = """
        import random

        def jitter():
            return random.random(){comment}
        """

    def test_unsuppressed_finding_reported(self):
        assert len(check(self.SOURCE.format(comment=""))) == 1

    def test_same_line_rule_suppression(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA001]")
        )
        assert findings == []

    def test_justification_text_allowed(self):
        findings = check(
            self.SOURCE.format(
                comment="  # simprof: ignore[SPA001] -- fuzzing helper"
            )
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA002]")
        )
        assert len(findings) == 1

    def test_bare_ignore_suppresses_all_rules(self):
        findings = check(self.SOURCE.format(comment="  # simprof: ignore"))
        assert findings == []

    def test_multiple_rules_in_one_marker(self):
        findings = check(
            self.SOURCE.format(comment="  # simprof: ignore[SPA004, SPA001]")
        )
        assert findings == []

    def test_preceding_comment_line_suppresses(self):
        findings = check(
            """
            import random

            def jitter():
                # simprof: ignore[SPA001] -- jitter need not replay
                return random.random()
            """
        )
        assert findings == []

    def test_preceding_code_line_marker_does_not_leak_downward(self):
        # The marker suppresses its own line, but it is not a
        # standalone comment, so the *next* line stays flagged.
        findings = check(
            """
            import random

            def jitter():
                a = random.random()  # simprof: ignore[SPA001]
                b = random.random()
                return a + b
            """
        )
        assert len(findings) == 1
        assert findings[0].line == 6


class TestParseSuppressions:
    def test_index_lookup(self):
        idx = parse_suppressions(
            [
                "x = 1",
                "y = f()  # simprof: ignore[SPA003]",
                "# simprof: ignore",
                "z = g()",
            ]
        )
        assert idx.is_suppressed("SPA003", 2)
        assert not idx.is_suppressed("SPA001", 2)
        assert idx.is_suppressed("SPA001", 3)
        assert idx.is_suppressed("SPA005", 4)  # standalone comment above
        assert not idx.is_suppressed("SPA001", 1)

    def test_case_insensitive_rule_ids(self):
        idx = parse_suppressions(["f()  # simprof: ignore[spa001]"])
        assert idx.is_suppressed("SPA001", 1)
