"""Per-function CFG construction and exception-edge reachability."""

import ast
import textwrap

from repro.analysis.cfg import build_cfg


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        n
        for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn), fn


def node_at(cfg, fn, needle):
    """Node id of the first statement whose source contains ``needle``."""
    for stmt in ast.walk(fn):
        if isinstance(stmt, ast.stmt) and needle in ast.unparse(stmt).split(
            "\n"
        )[0]:
            nid = cfg.node_of(stmt)
            if nid is not None:
                return nid
    raise AssertionError(f"no CFG node for {needle!r}")


class TestReachability:
    def test_straight_line_leak(self):
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()
                work(block)
                return None
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        # Nothing releases: both the exit and (via work()'s exception
        # edge) the raise sink are reachable.
        assert cfg.reaches_without(start, set(), cfg.exit_id)
        assert cfg.reaches_without(start, set(), cfg.raise_id)
        # Blocking the only successor blocks everything.
        release = node_at(cfg, fn, "work(block)")
        assert not cfg.reaches_without(start, {release}, cfg.exit_id)

    def test_own_exception_edge_not_a_leak(self):
        # If the acquisition itself raises, the resource never existed:
        # the walk leaves the start by normal successors only.
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()
                block.close()
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        assert not cfg.reaches_without(start, {close}, cfg.raise_id)

    def test_try_finally_covers_exception_path(self):
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()
                try:
                    work(block)
                finally:
                    block.close()
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        assert not cfg.reaches_without(start, {close}, cfg.exit_id)
        assert not cfg.reaches_without(start, {close}, cfg.raise_id)

    def test_partial_handler_leaks_exception_path(self):
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()
                try:
                    work(block)
                except ValueError:
                    pass
                block.close()
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        # A TypeError from work() bypasses the ValueError handler and
        # unwinds before close() runs.
        assert cfg.reaches_without(start, {close}, cfg.raise_id)
        assert not cfg.reaches_without(start, {close}, cfg.exit_id)

    def test_catch_all_handler_stops_propagation(self):
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()
                try:
                    work(block)
                except Exception:
                    pass
                block.close()
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        assert not cfg.reaches_without(start, {close}, cfg.raise_id)

    def test_reraising_handler_must_release_first(self):
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()
                try:
                    work(block)
                except BaseException:
                    block.close()
                    raise
                done(block)
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        done = node_at(cfg, fn, "done(block)")
        # close() guards the re-raise; done() guards the happy path.
        assert not cfg.reaches_without(start, {close, done}, cfg.raise_id)
        assert not cfg.reaches_without(start, {close, done}, cfg.exit_id)
        # Without the handler's close, the raise sink is reachable.
        assert cfg.reaches_without(start, {done}, cfg.raise_id)

    def test_branch_must_release_on_both_arms(self):
        cfg, fn = cfg_of(
            """
            def f(flag):
                block = acquire()
                if flag:
                    block.close()
                return None
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        # The else arm falls through to the return without releasing.
        assert cfg.reaches_without(start, {close}, cfg.exit_id)

    def test_loop_back_edge_and_break(self):
        cfg, fn = cfg_of(
            """
            def f(items):
                block = acquire()
                for item in items:
                    if bad(item):
                        break
                    use(block, item)
                block.close()
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        assert not cfg.reaches_without(start, {close}, cfg.exit_id)

    def test_return_before_release_leaks(self):
        cfg, fn = cfg_of(
            """
            def f(flag):
                block = acquire()
                if flag:
                    return None
                block.close()
                return None
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        assert cfg.reaches_without(start, {close}, cfg.exit_id)

    def test_nested_def_is_opaque(self):
        cfg, fn = cfg_of(
            """
            def f():
                block = acquire()

                def inner():
                    return block

                block.close()
                return inner
            """
        )
        start = node_at(cfg, fn, "block = acquire()")
        close = node_at(cfg, fn, "block.close()")
        # The nested def body is not inlined: its statements have no
        # nodes in the outer graph, and flow passes straight through.
        inner_return = next(
            s
            for s in ast.walk(fn)
            if isinstance(s, ast.Return)
            and s.value is not None
            and isinstance(s.value, ast.Name)
            and s.value.id == "block"
        )
        assert cfg.node_of(inner_return) is None
        assert not cfg.reaches_without(start, {close}, cfg.exit_id)
