"""Baseline round-trip, partitioning, and fingerprint stability."""

import json
import textwrap

import pytest

from repro.analysis import Baseline, check_source
from repro.analysis.findings import Finding


def _findings(source, **kwargs):
    kwargs.setdefault("module", "repro.core.example")
    kwargs.setdefault("path", "src/repro/core/example.py")
    return check_source(textwrap.dedent(source), **kwargs)


SOURCE = """
    import random

    def jitter():
        return random.random()

    def wobble():
        return random.random()
    """


class TestFingerprint:
    def test_line_number_independent(self):
        shifted = "\n# a new leading comment\n" + textwrap.dedent(SOURCE)
        a = _findings(SOURCE)
        b = check_source(
            shifted, module="repro.core.example", path="src/repro/core/example.py"
        )
        assert [f.fingerprint() for f in a] == [f.fingerprint() for f in b]
        assert [f.line for f in a] != [f.line for f in b]

    def test_path_and_rule_dependent(self):
        f = Finding(path="a.py", line=1, col=0, rule="SPA001",
                    message="m", line_text="x = 1")
        g = Finding(path="b.py", line=1, col=0, rule="SPA001",
                    message="m", line_text="x = 1")
        assert f.fingerprint() != g.fingerprint()


class TestBaselineRoundTrip:
    def test_save_load_partition(self, tmp_path):
        findings = _findings(SOURCE)
        assert len(findings) == 2
        path = tmp_path / "baseline.json"
        Baseline().save(path, findings)

        loaded = Baseline.load(path)
        assert len(loaded) == 2
        fresh, known = loaded.partition(findings)
        assert fresh == []
        assert len(known) == 2

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0
        fresh, known = baseline.partition(_findings(SOURCE))
        assert len(fresh) == 2
        assert known == []

    def test_new_finding_not_absorbed(self, tmp_path):
        findings = _findings(SOURCE)
        path = tmp_path / "baseline.json"
        Baseline().save(path, findings[:1])

        fresh, known = Baseline.load(path).partition(findings)
        assert len(known) == 1
        assert len(fresh) == 1

    def test_identical_lines_in_distinct_functions_not_collapsed(
        self, tmp_path
    ):
        # jitter() and wobble() contain byte-identical offending lines,
        # but the v2 fingerprint keys on the enclosing qualname: two
        # entries, so baselining one can never absolve the other.
        findings = _findings(SOURCE)
        assert findings[0].fingerprint() != findings[1].fingerprint()
        path = tmp_path / "baseline.json"
        Baseline().save(path, findings)
        doc = json.loads(path.read_text())
        assert len(doc["findings"]) == 2
        assert all(e["count"] == 1 for e in doc["findings"])

    def test_identical_lines_in_one_function_counted(self, tmp_path):
        # Within a single function the qualname cannot discriminate:
        # one fingerprint, count 2, and partition() spends the budget
        # per occurrence.
        source = """
            import random

            def jitter():
                out = []
                out.append(random.random())
                out.append(random.random())
                return out
            """
        findings = _findings(source)
        assert len(findings) == 2
        assert findings[0].fingerprint() == findings[1].fingerprint()
        path = tmp_path / "baseline.json"
        Baseline().save(path, findings)
        doc = json.loads(path.read_text())
        assert len(doc["findings"]) == 1
        assert doc["findings"][0]["count"] == 2

        fresh, known = Baseline.load(path).partition(findings)
        assert fresh == [] and len(known) == 2

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_file_is_deterministic(self, tmp_path):
        findings = _findings(SOURCE)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        Baseline().save(a, findings)
        Baseline().save(b, list(reversed(findings)))
        assert a.read_text() == b.read_text()


class TestV1Migration:
    def _v1_file(self, tmp_path, findings):
        # A version-1 baseline as the previous engine wrote it: keyed
        # on (rule, path, stripped line text).
        path = tmp_path / "baseline.json"
        counts = {}
        for f in findings:
            counts[f.fingerprint_v1()] = counts.get(f.fingerprint_v1(), 0) + 1
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"fingerprint": fp, "count": n}
                        for fp, n in sorted(counts.items())
                    ],
                }
            )
        )
        return path

    def test_v1_file_still_matches(self, tmp_path):
        findings = _findings(SOURCE)
        path = self._v1_file(tmp_path, findings)
        loaded = Baseline.load(path)
        assert loaded.version == 1
        fresh, known = loaded.partition(findings)
        assert fresh == []
        assert len(known) == 2

    def test_v1_qualnames_share_one_fingerprint(self, tmp_path):
        # The v1 key cannot tell jitter() from wobble(): both spend the
        # same budget entry.  Grandfathering only one occurrence leaves
        # the other fresh — whichever sorts later.
        findings = _findings(SOURCE)
        path = self._v1_file(tmp_path, findings[:1])
        fresh, known = Baseline.load(path).partition(findings)
        assert len(fresh) == 1 and len(known) == 1

    def test_save_rewrites_as_v2(self, tmp_path):
        findings = _findings(SOURCE)
        path = self._v1_file(tmp_path, findings)
        loaded = Baseline.load(path)
        _, known = loaded.partition(findings)
        Baseline().save(path, known)
        doc = json.loads(path.read_text())
        assert doc["version"] == 2
        reloaded = Baseline.load(path)
        assert reloaded.version == 2
        fresh, known = reloaded.partition(findings)
        assert fresh == [] and len(known) == 2
