"""Positive/negative fixtures for the cross-module rules (SPA009-012)."""

import textwrap

from repro.analysis import check_project, get_project_rule


def check(rule_id, **sources):
    """Run one project rule over dedented in-memory modules.

    Module names use ``__`` for dots: ``repro__core__x`` is
    ``repro.core.x``.
    """
    return check_project(
        {
            name.replace("__", "."): textwrap.dedent(source)
            for name, source in sources.items()
        },
        get_project_rule(rule_id),
    )


class TestSPA009SnapshotDrift:
    def test_seeded_drift_a_round_trip_test_would_miss(self):
        # record() grows _events; snapshot() serializes it, restore()
        # forgets it.  A fresh-instance round-trip
        # (restore(snapshot()) right after construction) compares two
        # empty lists and passes — only a *seeded* instance drifts.
        findings = check(
            "SPA009",
            repro__core__tracker="""
            class Tracker:
                def __init__(self):
                    self._events = []
                    self._cursor = 0

                def record(self, event):
                    self._events.append(event)
                    self._cursor += 1

                def snapshot(self):
                    return {"events": list(self._events),
                            "cursor": self._cursor}

                def restore(self, payload):
                    self._cursor = payload["cursor"]
            """,
        )
        assert [f.rule for f in findings] == ["SPA009"]
        assert "'self._events'" in findings[0].message
        assert "restore() never assigns it back" in findings[0].message
        # Anchored where the mutable container is first established.
        assert findings[0].qualname == "Tracker.__init__"

    def test_state_invisible_to_both_methods(self):
        findings = check(
            "SPA009",
            repro__core__meter="""
            class Meter:
                def __init__(self):
                    self._laps = []
                    self._total = 0

                def lap(self, t):
                    self._laps.append(t)

                def snapshot(self):
                    return {"total": self._total}

                def restore(self, payload):
                    self._total = payload["total"]
            """,
        )
        assert len(findings) == 1
        assert "neither snapshot() nor restore() touches it" in findings[0].message

    def test_complete_round_trip_is_clean(self):
        findings = check(
            "SPA009",
            repro__core__meter="""
            class Meter:
                def __init__(self):
                    self._laps = []

                def lap(self, t):
                    self._laps.append(t)

                def snapshot(self):
                    return {"laps": list(self._laps)}

                def restore(self, payload):
                    self._laps = list(payload["laps"])
            """,
        )
        assert findings == []

    def test_derived_state_rebuilt_in_restore_is_exempt(self):
        # restore() never reads the payload for _cache but *rebuilds*
        # it; that is a legitimate skip, not drift.
        findings = check(
            "SPA009",
            repro__core__cache="""
            class Memo:
                def __init__(self):
                    self._cache = {}
                    self._n = 0

                def put(self, k, v):
                    self._cache[k] = v
                    self._n += 1

                def snapshot(self):
                    return {"n": self._n}

                def restore(self, payload):
                    self._n = payload["n"]
                    self._cache = {}
            """,
        )
        assert findings == []

    def test_injected_collaborator_is_exempt(self):
        # _sink is bound straight from a constructor parameter and only
        # ever mutated through method calls: the caller owns it, the
        # snapshot payload does not.
        findings = check(
            "SPA009",
            repro__core__sink="""
            class Meter:
                def __init__(self, sink):
                    self._sink = sink
                    self._n = 0

                def tick(self):
                    self._sink.add(1)

                def snapshot(self):
                    return {"n": self._n}

                def restore(self, payload):
                    self._n = payload["n"]
            """,
        )
        assert findings == []

    def test_protocol_resolved_through_cross_module_base(self):
        findings = check(
            "SPA009",
            repro__core__base="""
            class Checkpointable:
                def snapshot(self):
                    return {}

                def restore(self, payload):
                    pass
            """,
            repro__core__child="""
            from repro.core.base import Checkpointable

            class Runner(Checkpointable):
                def __init__(self):
                    self._pending = []

                def push(self, x):
                    self._pending.append(x)
            """,
        )
        assert len(findings) == 1
        assert "Runner" in findings[0].message
        assert findings[0].path == "src/repro/core/child.py"

    def test_snapshot_helpers_expanded_one_level(self):
        findings = check(
            "SPA009",
            repro__core__helper="""
            class Meter:
                def __init__(self):
                    self._laps = []

                def lap(self, t):
                    self._laps.append(t)

                def _encode(self):
                    return list(self._laps)

                def _decode(self, payload):
                    self._laps = list(payload["laps"])

                def snapshot(self):
                    return {"laps": self._encode()}

                def restore(self, payload):
                    self._decode(payload)
            """,
        )
        assert findings == []

    def test_non_product_modules_not_held_to_protocol(self):
        findings = check(
            "SPA009",
            tests__fake="""
            class StubMeter:
                def __init__(self):
                    self._laps = []

                def lap(self, t):
                    self._laps.append(t)

                def snapshot(self):
                    return {}

                def restore(self, payload):
                    pass
            """,
        )
        assert findings == []


class TestSPA010CheckpointKey:
    def test_producer_argument_missing_from_key_dict(self):
        # The shape of the real bug this rule exists for: the fault
        # plan changes the profiled stream but was left out of the
        # job-key dict, so a faulty and a clean run share checkpoints.
        findings = check(
            "SPA010",
            repro__cli="""
            from repro.runtime.checkpoint import checkpoint_job_key
            from repro.runtime.runner import run_workload_stream

            def profile(args):
                job_key = checkpoint_job_key({
                    "workload": args.workload,
                    "scale": args.scale,
                })
                return run_workload_stream(
                    args.workload, args.scale, args.faults
                )
            """,
        )
        assert [f.rule for f in findings] == ["SPA010"]
        assert "args.faults" in findings[0].message
        assert "args.scale" not in findings[0].message
        assert findings[0].qualname == "profile"

    def test_complete_key_dict_is_clean(self):
        findings = check(
            "SPA010",
            repro__cli="""
            from repro.runtime.checkpoint import checkpoint_job_key
            from repro.runtime.runner import run_workload_stream

            def profile(args):
                job_key = checkpoint_job_key({
                    "workload": args.workload,
                    "scale": args.scale,
                    "faults": args.faults,
                })
                return run_workload_stream(
                    args.workload, args.scale, args.faults
                )
            """,
        )
        assert findings == []

    def test_local_aliases_expand_to_terminal_roots(self):
        # ``plan`` is a local derived from args.faults; covering
        # args.faults in the key covers the alias too.
        findings = check(
            "SPA010",
            repro__cli="""
            from repro.runtime.checkpoint import checkpoint_job_key
            from repro.runtime.runner import run_workload_stream

            def profile(args):
                plan = load_plan(args.faults)
                job_key = checkpoint_job_key({
                    "workload": args.workload,
                    "faults": args.faults,
                })
                return run_workload_stream(args.workload, plan)
            """,
        )
        assert findings == []

    def test_spec_profile_params_coverage_via_index(self):
        # The key is spec.profile_params(); the resolved method's
        # self-reads define what the key covers.
        findings = check(
            "SPA010",
            repro__spec="""
            class JobSpec:
                def profile_params(self):
                    return {"workload": self.workload, "scale": self.scale}
            """,
            repro__run="""
            from repro.runtime.checkpoint import checkpoint_job_key
            from repro.spec import JobSpec

            def profile(spec, store):
                key = checkpoint_job_key(spec.profile_params())
                return run_workload_stream(spec.workload, spec.scale)
            """,
        )
        assert findings == []

    def test_plumbing_kwargs_and_heads_exempt(self):
        findings = check(
            "SPA010",
            repro__run="""
            from repro.runtime.checkpoint import checkpoint_job_key

            def profile(args, store, policy):
                key = checkpoint_job_key({"workload": args.workload})
                return run_workload_stream(
                    args.workload, checkpoint=policy, store=store
                )
            """,
        )
        assert findings == []


class TestSPA011EntropyTaint:
    def test_wall_clock_into_queue_put(self):
        findings = check(
            "SPA011",
            repro__worker="""
            import time

            def ship(queue, batch):
                stamp = time.time()
                queue.put((batch, stamp))
            """,
        )
        assert [f.rule for f in findings] == ["SPA011"]
        assert "'put'" in findings[0].message
        assert findings[0].qualname == "ship"

    def test_unseeded_rng_into_cache_key(self):
        findings = check(
            "SPA011",
            repro__keys="""
            from numpy.random import default_rng

            def key_of(store):
                salt = default_rng().integers(0, 2**32)
                return store.key_for("profile", {"salt": salt})
            """,
        )
        assert len(findings) == 1

    def test_seeded_rng_is_clean(self):
        findings = check(
            "SPA011",
            repro__keys="""
            from numpy.random import default_rng

            def key_of(store, seed):
                salt = default_rng(seed).integers(0, 2**32)
                return store.key_for("profile", {"salt": salt})
            """,
        )
        assert findings == []

    def test_manifest_metadata_kwargs_exempt(self):
        # Wall-clock *about* an artifact is fine; wall-clock *in* the
        # payload is not.
        findings = check(
            "SPA011",
            repro__store_use="""
            import time

            def record(store, key, payload):
                t0 = time.perf_counter()
                store.put(key, payload, compute_seconds=time.perf_counter() - t0)
            """,
        )
        assert findings == []

    def test_taint_crosses_one_call_level(self):
        # persist() sinks its ``value`` parameter; passing a tainted
        # local into it is flagged at the caller.
        findings = check(
            "SPA011",
            repro__sinks="""
            def persist(store, value):
                store.put("k", value)
            """,
            repro__caller="""
            import time
            from repro.sinks import persist

            def run(store):
                stamp = time.time()
                persist(store, stamp)
            """,
        )
        paths = sorted(f.path for f in findings)
        assert paths == ["src/repro/caller.py"]
        assert findings[0].qualname == "run"

    def test_non_product_modules_out_of_scope(self):
        findings = check(
            "SPA011",
            benchmarks__timing="""
            import time

            def ship(queue):
                queue.put(time.time())
            """,
        )
        assert findings == []


class TestSPA012ResourceLifecycle:
    def test_exception_between_acquire_and_handoff_leaks(self):
        # The pre-fix send_stream shape: the block is written and a ref
        # built before queue.put, but an error in between unwinds past
        # both the close and the hand-off.
        findings = check(
            "SPA012",
            repro__transport="""
            from multiprocessing import shared_memory

            def ship(queue, data):
                block = shared_memory.SharedMemory(create=True, size=data.nbytes)
                view = make_view(block.buf)
                view[:] = data
                ref = make_ref(block.name, len(data))
                block.close()
                queue.put(ref)
            """,
        )
        assert [f.rule for f in findings] == ["SPA012"]
        assert "shared-memory block 'block'" in findings[0].message
        assert "exception path" in findings[0].message

    def test_reclaiming_handler_before_reraise_is_clean(self):
        findings = check(
            "SPA012",
            repro__transport="""
            from multiprocessing import shared_memory

            def ship(queue, data):
                block = shared_memory.SharedMemory(create=True, size=data.nbytes)
                try:
                    view = make_view(block.buf)
                    view[:] = data
                    ref = make_ref(block.name, len(data))
                except BaseException:
                    block.close()
                    block.unlink()
                    raise
                block.close()
                queue.put(ref)
            """,
        )
        assert findings == []

    def test_normal_path_without_release_or_escape_leaks(self):
        findings = check(
            "SPA012",
            repro__transport="""
            from multiprocessing import shared_memory

            def probe():
                block = shared_memory.SharedMemory(create=True, size=1)
                return block.name
            """,
        )
        # ``block.name`` is an attribute read, not an ownership
        # transfer: the mapping and the kernel object both leak.
        assert len(findings) == 1
        assert "normal path" in findings[0].message

    def test_bare_handoff_to_container_is_an_escape(self):
        findings = check(
            "SPA012",
            repro__transport="""
            from multiprocessing import shared_memory

            def attach(open_blocks, name):
                block = shared_memory.SharedMemory(name=name)
                open_blocks.append(block)
                return block.buf
            """,
        )
        assert findings == []

    def test_with_statement_owns_the_lifecycle(self):
        findings = check(
            "SPA012",
            repro__transport="""
            import tempfile

            def spill(data):
                with tempfile.NamedTemporaryFile(delete=False) as tmp:
                    tmp.write(data)
                    return tmp.name
            """,
        )
        assert findings == []

    def test_delete_false_tempfile_needs_unlink(self):
        findings = check(
            "SPA012",
            repro__spill="""
            import os
            import tempfile

            def leaky(data):
                tmp = tempfile.NamedTemporaryFile(delete=False)
                tmp.write(data)
                tmp.close()

            def clean(data, target):
                tmp = tempfile.NamedTemporaryFile(delete=False)
                try:
                    tmp.write(data)
                    tmp.close()
                    os.replace(tmp.name, target)
                except BaseException:
                    tmp.close()
                    os.unlink(tmp.name)
                    raise
            """,
        )
        assert [f.qualname for f in findings] == ["leaky"]
        assert "delete=False temp file" in findings[0].message

    def test_delete_true_tempfile_cleans_itself(self):
        findings = check(
            "SPA012",
            repro__spill="""
            import tempfile

            def scratch(data):
                tmp = tempfile.NamedTemporaryFile()
                tmp.write(data)
                tmp.close()
            """,
        )
        assert findings == []

    def test_replay_buffer_dropped_on_normal_path_leaks(self):
        findings = check(
            "SPA012",
            repro__faults__wrap="""
            def wrap(stream, window):
                replay = ReplayBuffer(window)
                for event in stream:
                    replay.store(event)
                return stream
            """,
        )
        assert len(findings) == 1
        assert "replay buffer" in findings[0].message

    def test_replay_buffer_exception_before_escape_is_gc_safe(self):
        # The inject_stream_faults shape: raising constructors sit
        # between the acquisition and the attribute hand-off.  An
        # exception there drops a still-empty pure-Python buffer — only
        # the *normal* path must transfer ownership.
        findings = check(
            "SPA012",
            repro__faults__wrap="""
            def wrap(stream, window):
                replay = ReplayBuffer(window)
                out = make_stream(stream)
                out.replay = replay
                return out
            """,
        )
        assert findings == []

    def test_replay_buffer_outside_product_code_unchecked(self):
        findings = check(
            "SPA012",
            tests__helpers="""
            def wrap(stream, window):
                replay = ReplayBuffer(window)
                return stream
            """,
        )
        assert findings == []


class TestSPA013UndeclaredStageInput:
    def test_undeclared_module_global_read(self):
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            from repro.runtime.provenance import stage_fn

            LIMITS = {"wc": 10}

            @stage_fn("trace-gen")
            def stage_run(inputs, params):
                return LIMITS[params["workload"]]
            """,
        )
        assert [f.rule for f in findings] == ["SPA013"]
        assert "repro.pipeline.stages.LIMITS" in findings[0].message
        assert findings[0].qualname == "stage_run"

    def test_function_local_import_of_constant(self):
        # The stage_trace_gen shape: a lazy ``from m import CONST``
        # inside the stage body is still an ambient input.
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            from repro.runtime.provenance import stage_fn

            @stage_fn("trace-gen")
            def stage_run(inputs, params):
                from repro.datagen.seeds import GRAPH_INPUTS
                return GRAPH_INPUTS[params["graph"]]
            """,
        )
        assert len(findings) == 1
        assert "repro.datagen.seeds.GRAPH_INPUTS" in findings[0].message

    def test_declared_global_is_clean(self):
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            from repro.runtime.provenance import stage_fn

            @stage_fn(
                "trace-gen",
                reads=("global:repro.datagen.seeds.GRAPH_INPUTS",),
            )
            def stage_run(inputs, params):
                from repro.datagen.seeds import GRAPH_INPUTS
                return GRAPH_INPUTS[params["graph"]]
            """,
        )
        assert findings == []

    def test_env_var_read(self):
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            import os

            from repro.runtime.provenance import stage_fn

            @stage_fn("profile")
            def stage_run(inputs, params):
                return os.environ.get("SIMPROF_JOBS", "1")
            """,
        )
        assert len(findings) == 1
        assert "'SIMPROF_JOBS'" in findings[0].message
        assert 'reads=("env:SIMPROF_JOBS",)' in findings[0].message

    def test_declared_env_var_is_clean(self):
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            import os

            from repro.runtime.provenance import stage_fn

            @stage_fn("profile", reads=("env:SIMPROF_JOBS",))
            def stage_run(inputs, params):
                return os.getenv("SIMPROF_JOBS")
            """,
        )
        assert findings == []

    def test_file_read_needs_declaration(self):
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            from repro.runtime.provenance import stage_fn

            @stage_fn("trace-gen")
            def stage_run(inputs, params):
                with open(params["path"]) as fh:
                    return fh.read()
            """,
        )
        assert len(findings) == 1
        assert "reads a file" in findings[0].message

    def test_file_write_is_an_output_not_an_input(self):
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            from repro.runtime.provenance import stage_fn

            @stage_fn("report")
            def stage_run(inputs, params):
                with open(params["path"], "w") as fh:
                    fh.write("done")
                return 1
            """,
        )
        assert findings == []

    def test_lowercase_imports_and_classes_are_code_not_inputs(self):
        # Functions/classes are fingerprinted by the import closure;
        # only ALL_CAPS data constants need a reads= declaration.
        findings = check(
            "SPA013",
            repro__pipeline__stages="""
            import numpy as np

            from repro.core.profiler import SimProfProfiler
            from repro.runtime.provenance import stage_fn

            @stage_fn("profile")
            def stage_run(inputs, params):
                profiler = SimProfProfiler(params["profiler"])
                return profiler.profile(np.asarray(inputs["trace"]))
            """,
        )
        assert findings == []

    def test_undecorated_functions_ignored(self):
        findings = check(
            "SPA013",
            repro__pipeline__helpers="""
            LIMITS = {"wc": 10}

            def helper(workload):
                return LIMITS[workload]
            """,
        )
        assert findings == []
