"""Pass-1 module indexes and the assembled :class:`ProjectIndex`."""

import textwrap

import pytest

from repro.analysis.base import ModuleContext
from repro.analysis.index import (
    INDEX_VERSION,
    ModuleIndex,
    ProjectIndex,
    build_module_index,
)


def index_of(source, module="repro.core.example"):
    ctx = ModuleContext(
        textwrap.dedent(source),
        path="src/" + module.replace(".", "/") + ".py",
        module=module,
    )
    return build_module_index(ctx, digest="d" * 64)


def project_of(**sources):
    index = ProjectIndex()
    for module, source in sources.items():
        index.add(index_of(source, module=module.replace("__", ".")))
    return index


class TestModuleExtraction:
    SOURCE = """
        from collections import deque

        class Meter:
            def __init__(self, record, limit):
                self._record = record
                self._limit = limit
                self._items = deque()
                self._seen = {}

            def tick(self, value):
                self._items.append(value)
                self._record.add(value)
                self._seen[value] = True
                self._total += value
                return self._limit

            def flush(self):
                self._drain()

            def _drain(self):
                self._items = deque()
    """

    def test_self_attribute_maps(self):
        mi = index_of(self.SOURCE)
        cls = mi.classes["Meter"]
        init = cls.methods["__init__"]
        assert set(init.self_assign) == {"_record", "_limit", "_items", "_seen"}
        assert set(init.self_mutable_assign) == {"_items", "_seen"}
        # Bound straight from constructor parameters:
        assert set(init.self_param_assign) == {"_record", "_limit"}

        tick = cls.methods["tick"]
        assert set(tick.self_mutate) == {"_items", "_record", "_seen", "_total"}
        assert "_limit" in tick.self_read

    def test_self_calls_and_params(self):
        mi = index_of(self.SOURCE)
        cls = mi.classes["Meter"]
        assert cls.methods["flush"].self_calls == frozenset({"_drain"})
        assert cls.methods["tick"].params == ("self", "value")

    def test_call_sites_record_bare_param_flow(self):
        mi = index_of(
            """
            import numpy as np

            def run(seed, data):
                rng = np.random.default_rng(seed)
                return rng.choice(data, size=3), np.cumsum(x=data)
            """
        )
        calls = {c.dotted or c.attr: c for c in mi.functions["run"].calls}
        assert calls["numpy.random.default_rng"].arg_params == ("seed",)
        assert calls["rng.choice"].attr == "choice"
        assert calls["rng.choice"].arg_params == ("data",)
        assert calls["numpy.cumsum"].kw_params == (("x", "data"),)

    def test_round_trip_through_dict(self):
        mi = index_of(self.SOURCE)
        restored = ModuleIndex.from_dict(mi.to_dict())
        assert restored.to_dict() == mi.to_dict()
        assert restored.classes["Meter"].methods["tick"].self_mutate == (
            mi.classes["Meter"].methods["tick"].self_mutate
        )

    def test_version_mismatch_rejected(self):
        data = index_of(self.SOURCE).to_dict()
        data["version"] = INDEX_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ModuleIndex.from_dict(data)


class TestProjectIndex:
    BASE = """
        class Checkpointable:
            def __init__(self):
                self._log = []

            def snapshot(self):
                return {"log": list(self._log)}
    """

    CHILD = """
        from repro.core.base import Checkpointable

        class Runner(Checkpointable):
            def restore(self, payload):
                self._log = list(payload["log"])
    """

    def test_cross_module_base_chain_and_method(self):
        project = project_of(
            repro__core__base=self.BASE, repro__core__child=self.CHILD
        )
        mi = project.modules["repro.core.child"]
        cls = mi.classes["Runner"]
        chain = [c.name for _, c in project.base_chain(mi, cls)]
        assert chain == ["Runner", "Checkpointable"]
        # snapshot() resolves through the base, restore() locally.
        assert project.method(mi, cls, "snapshot").qualname == (
            "Checkpointable.snapshot"
        )
        assert project.method(mi, cls, "restore").qualname == "Runner.restore"
        assert project.method(mi, cls, "missing") is None

    def test_same_module_unqualified_base(self):
        project = project_of(
            repro__core__one=self.BASE
            + """

        class Local(Checkpointable):
            def restore(self, payload):
                self._log = payload["log"]
            """
        )
        mi = project.modules["repro.core.one"]
        chain = [c.name for _, c in project.base_chain(mi, mi.classes["Local"])]
        assert chain == ["Local", "Checkpointable"]

    def test_cyclic_bases_terminate(self):
        project = project_of(
            repro__core__loop="""
            class A(B):
                pass

            class B(A):
                pass
            """
        )
        mi = project.modules["repro.core.loop"]
        chain = [c.name for _, c in project.base_chain(mi, mi.classes["A"])]
        assert chain == ["A", "B"]

    def test_import_graph_and_reverse_closure(self):
        project = project_of(
            repro__core__base=self.BASE,
            repro__core__child=self.CHILD,
            repro__cli="""
            from repro.core.child import Runner

            def main():
                return Runner()
            """,
            repro__io="""
            import json

            def dump(x):
                return json.dumps(x)
            """,
        )
        graph = project.import_graph()
        assert graph["repro.core.child"] == {"repro.core.base"}
        assert graph["repro.cli"] == {"repro.core.child"}
        assert graph["repro.io"] == set()  # stdlib edges are not project edges

        closure = project.reverse_closure({"repro.core.base"})
        assert closure == {"repro.core.base", "repro.core.child", "repro.cli"}
        assert project.reverse_closure({"repro.io"}) == {"repro.io"}

    def test_functions_named_and_dotted_lookup(self):
        project = project_of(
            repro__a="""
            def helper():
                return 1
            """,
            repro__b="""
            class Box:
                def helper(self):
                    return 2
            """,
        )
        assert [f.qualname for f in project.functions_named("helper")] == [
            "helper",
            "Box.helper",
        ]
        assert project.function_by_dotted("repro.a.helper").qualname == "helper"
        assert project.function_by_dotted("repro.zzz.helper") is None
