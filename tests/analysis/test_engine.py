"""Two-pass engine behaviour: caching, parallelism, ``--changed``.

The acceptance bar for the engine is *byte-identity*: serial, parallel
and warm-cache runs of the same tree must render the exact same JSON
report, and a warm re-run must serve every module from the
ArtifactStore instead of re-analyzing it.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, render_json, render_sarif, run_check
from repro.cli import main
from repro.runtime.store import ArtifactStore

BASE = """\
class Checkpointable:
    def snapshot(self):
        return {}

    def restore(self, payload):
        pass
"""

CHILD = """\
from repro.core.base import Checkpointable


class Runner(Checkpointable):
    def __init__(self):
        self._pending = []

    def push(self, x):
        self._pending.append(x)
"""

OTHER = """\
import random


def jitter():
    return random.random()
"""


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "base.py").write_text(BASE)
    (pkg / "child.py").write_text(CHILD)  # SPA009: _pending never restored
    (pkg / "other.py").write_text(OTHER)  # SPA001, no project imports
    return tmp_path


def render(result):
    return render_json(result)


class TestByteIdentity:
    def test_serial_parallel_and_warm_render_identically(self, tree, tmp_path):
        serial = render(run_check([tree]))
        parallel = render(run_check([tree], jobs=2))
        store = ArtifactStore(tmp_path / "cache")
        cold = render(run_check([tree], store=store))
        warm = render(run_check([tree], store=store))
        assert serial == parallel == cold == warm
        doc = json.loads(serial)
        assert sorted({f["rule"] for f in doc["new"]}) == ["SPA001", "SPA009"]

    def test_parallel_warm_combination(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = render(run_check([tree], jobs=2, store=store))
        warm = render(run_check([tree], jobs=2, store=store))
        assert cold == warm


class TestCacheHits:
    def test_warm_run_hits_store_for_every_module(self, tree, tmp_path):
        root = tmp_path / "cache"
        cold = run_check([tree], store=ArtifactStore(root))
        assert cold.n_cached == 0

        # A *fresh* store instance has an empty memory tier: every
        # pass-1 payload and every pass-2 rule result must come off
        # disk.
        fresh = ArtifactStore(root)
        warm = run_check([tree], store=fresh)
        assert warm.n_cached == warm.n_files == 3
        assert warm.n_project_cached == 5  # SPA009-SPA013
        assert fresh.stats.disk_hits >= warm.n_files + warm.n_project_cached

    def test_editing_one_file_reanalyzes_only_it(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_check([tree], store=store)
        target = tree / "src" / "repro" / "core" / "other.py"
        target.write_text(OTHER + "\n# trailing comment\n")
        result = run_check([tree], store=store)
        assert result.n_cached == 2  # base + child unchanged
        # The project digest changed with the file, so pass 2 re-ran.
        assert result.n_project_cached == 0

    def test_rule_selection_keys_the_cache(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        full = run_check([tree], store=store)
        subset = run_check([tree], rule_ids=["SPA001"], store=store)
        assert subset.n_cached == 0  # different signature, no reuse
        assert [f.rule for f in subset.findings] == ["SPA001"]
        assert len(full.findings) == 2


class TestChangedOnly:
    def test_closure_over_reverse_imports(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_check([tree], store=store)

        # Touch the base module: child imports it, other does not.
        base = tree / "src" / "repro" / "core" / "base.py"
        base.write_text(BASE + "\n# touched\n")
        result = run_check([tree], store=store, changed_only=True)
        reported = {Path(p).name for p in (result.skipped or [])}
        assert reported == {"other.py"}
        rules = sorted({f.rule for f in result.findings})
        assert rules == ["SPA009"]  # other.py's SPA001 filtered out

    def test_unchanged_tree_skips_everything(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        run_check([tree], store=store)
        result = run_check([tree], store=store, changed_only=True)
        assert len(result.skipped) == 3
        assert result.findings == []
        assert result.exit_code() == 0


class TestProjectFindingsThroughChecker:
    def test_project_finding_suppressed_at_anchor(self, tree):
        child = tree / "src" / "repro" / "core" / "child.py"
        child.write_text(
            CHILD.replace(
                "        self._pending = []",
                "        # simprof: ignore[SPA009] -- rebuilt by scheduler\n"
                "        self._pending = []",
            )
        )
        result = run_check([tree])
        assert sorted({f.rule for f in result.findings}) == ["SPA001"]
        assert result.suppressed == 1

    def test_unused_suppression_reported(self, tree):
        other = tree / "src" / "repro" / "core" / "other.py"
        other.write_text(
            "def quiet():\n"
            "    return 1  # simprof: ignore[SPA001]\n"
        )
        result = run_check([tree])
        assert len(result.unused_suppressions) == 1
        path, line, rules = result.unused_suppressions[0]
        assert Path(path).name == "other.py"
        assert line == 2
        assert rules == ("SPA001",)

    def test_used_suppression_not_reported_on_warm_run(self, tree, tmp_path):
        other = tree / "src" / "repro" / "core" / "other.py"
        other.write_text(OTHER.replace(
            "return random.random()",
            "return random.random()  # simprof: ignore[SPA001] -- fuzz",
        ))
        store = ArtifactStore(tmp_path / "cache")
        cold = run_check([tree], store=store)
        warm = run_check([tree], store=store)
        assert cold.unused_suppressions == warm.unused_suppressions == []
        assert cold.suppressed == warm.suppressed == 1


class TestCliEngineOptions:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path / "cli-cache"))

    def test_jobs_auto_and_explicit(self, tree, capsys, monkeypatch):
        monkeypatch.chdir(tree)
        assert main(["check", "--jobs", "auto", "src"]) == 1
        auto_out = capsys.readouterr().out
        assert main(["check", "--jobs", "2", "--no-cache", "src"]) == 1
        two_out = capsys.readouterr().out
        assert auto_out == two_out

    def test_jobs_rejects_garbage(self, tree, capsys, monkeypatch):
        monkeypatch.chdir(tree)
        assert main(["check", "--jobs", "many", "src"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_changed_requires_cache(self, tree, capsys, monkeypatch):
        monkeypatch.chdir(tree)
        assert main(["check", "--changed", "--no-cache", "src"]) == 2
        assert "--changed" in capsys.readouterr().err

    def test_changed_skips_unchanged_files(self, tree, capsys, monkeypatch):
        monkeypatch.chdir(tree)
        assert main(["check", "src"]) == 1
        capsys.readouterr()
        assert main(["check", "--changed", "src"]) == 0
        out = capsys.readouterr().out
        assert out.count("skipped (unchanged)") == 3

    def test_sarif_format(self, tree, capsys, monkeypatch):
        monkeypatch.chdir(tree)
        assert main(["check", "--format", "sarif", "src"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == [f"SPA{n:03d}" for n in range(1, 14)]
        by_rule = {r["ruleId"] for r in run["results"]}
        assert by_rule == {"SPA001", "SPA009"}
        spa9 = next(
            r for r in run["tool"]["driver"]["rules"] if r["id"] == "SPA009"
        )
        assert spa9["helpUri"].endswith("#spa009--snapshot-state-drift")
        assert all(
            "simprofFingerprint/v2" in r["partialFingerprints"]
            for r in run["results"]
        )

    def test_v1_baseline_migrated_in_place(self, tree, capsys, monkeypatch):
        monkeypatch.chdir(tree)
        result = run_check(["src"])  # relative, like the CLI run below
        v1 = {
            "version": 1,
            "findings": [
                {"fingerprint": f.fingerprint_v1(), "count": 1}
                for f in result.findings
            ],
        }
        baseline_path = tree / ".simprof-baseline.json"
        baseline_path.write_text(json.dumps(v1))
        assert main(["check", "src"]) == 0
        err = capsys.readouterr().err
        assert "migrated" in err
        doc = json.loads(baseline_path.read_text())
        assert doc["version"] == 2
        # Re-keyed entries keep absorbing the same findings.
        assert main(["check", "src"]) == 0
        assert Baseline.load(baseline_path).version == 2


class TestSarifRenderer:
    def test_parse_errors_become_results(self, tmp_path):
        (tmp_path / "broken.py").write_text("def (:\n")
        result = run_check([tmp_path])
        doc = json.loads(render_sarif(result))
        rows = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in rows] == ["parse-error"]
        assert doc["runs"][0]["results"][0]["locations"]
