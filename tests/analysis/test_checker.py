"""Checker orchestration + ``simprof check`` CLI integration."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, run_check
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = """\
import random


def jitter():
    return random.random()
"""

CLEAN = """\
import numpy as np


def draw(seed):
    return np.random.default_rng(seed).normal()
"""


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text(CLEAN)
    pycache = pkg / "__pycache__"
    pycache.mkdir()
    (pycache / "stale.py").write_text(DIRTY)  # must be skipped
    return tmp_path


class TestRunCheck:
    def test_findings_and_skip_dirs(self, tree):
        result = run_check([tree])
        assert result.n_files == 2  # __pycache__ skipped
        assert [f.rule for f in result.findings] == ["SPA001"]
        assert result.exit_code() == 1
        assert result.exit_code(strict=True) == 1

    def test_rule_subset(self, tree):
        result = run_check([tree], rule_ids=["SPA002"])
        assert result.findings == []
        assert result.exit_code() == 0

    def test_baseline_partition(self, tree):
        found = run_check([tree]).findings
        baseline = Baseline.from_findings(found)
        result = run_check([tree], baseline=baseline)
        assert result.findings == []
        assert len(result.baselined) == 1
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_parse_error_reported(self, tree):
        (tree / "src" / "repro" / "core" / "broken.py").write_text("def (:\n")
        result = run_check([tree])
        assert result.exit_code() == 2
        assert "broken.py" in result.parse_errors[0][0]


class TestCheckCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text(CLEAN)
        assert main(["check", "clean.py"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_findings_exit_one_with_hint(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(DIRTY)
        assert main(["check", "dirty.py"]) == 1
        out = capsys.readouterr().out
        assert "dirty.py:5" in out
        assert "SPA001" in out
        assert "hint:" in out

    def test_json_format(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(DIRTY)
        assert main(["check", "--format", "json", "dirty.py"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 1
        assert doc["new"][0]["rule"] == "SPA001"
        assert doc["new"][0]["fingerprint"]

    def test_write_baseline_then_tolerate_then_strict(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(DIRTY)
        assert main(["check", "--write-baseline", "dirty.py"]) == 0
        assert (tmp_path / ".simprof-baseline.json").exists()
        # Default run tolerates the grandfathered finding ...
        assert main(["check", "dirty.py"]) == 0
        # ... --strict does not ...
        assert main(["check", "--strict", "dirty.py"]) == 1
        # ... and a *new* finding still fails the default run.
        (tmp_path / "dirty.py").write_text(DIRTY + "\nrandom.shuffle([])\n")
        assert main(["check", "dirty.py"]) == 1

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SPA001", "SPA002", "SPA003", "SPA004", "SPA005"):
            assert rule_id in out

    def test_rules_option(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(DIRTY)
        assert main(["check", "--rules", "spa002,spa005", "dirty.py"]) == 0

    def test_unknown_rule_id_is_clean_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(DIRTY)
        assert main(["check", "--rules", "SPA999", "dirty.py"]) == 2
        assert "unknown rule 'SPA999'" in capsys.readouterr().err


class TestSelfCheck:
    """The repo must stay clean under its own checker (CI runs this too)."""

    def test_repo_tree_is_clean_strict(self):
        targets = [
            REPO_ROOT / "src",
            REPO_ROOT / "tests",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ]
        result = run_check([t for t in targets if t.exists()])
        assert result.parse_errors == []
        locations = [f"{f.location} {f.rule} {f.message}" for f in result.findings]
        assert locations == [], "\n".join(locations)

    def test_checked_in_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / ".simprof-baseline.json")
        assert len(baseline) == 0
