"""Unit and property tests for the instrumented quicksort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algos.quicksort import instrumented_quicksort


def _sort(keys, leaf_size=4):
    passes = []

    def emit(n, ws, is_leaf):
        passes.append((n, ws, is_leaf))

    order = instrumented_quicksort(
        np.asarray(keys), emit, leaf_size=leaf_size
    )
    return order, passes


class TestCorrectness:
    def test_sorts_integers(self):
        keys = np.array([5, 3, 8, 1, 9, 2, 7])
        order, _ = _sort(keys, leaf_size=2)
        assert list(keys[order]) == sorted(keys)

    def test_sorts_strings(self):
        keys = np.array(["pear", "apple", "fig", "date", "cherry"])
        order, _ = _sort(keys, leaf_size=2)
        assert list(keys[order]) == sorted(keys)

    def test_empty(self):
        order, passes = _sort(np.array([], dtype=np.int64))
        assert len(order) == 0
        assert passes == []

    def test_single_element(self):
        order, _ = _sort(np.array([42]))
        assert list(order) == [0]

    def test_all_equal_keys(self):
        keys = np.array([7] * 100)
        order, _ = _sort(keys, leaf_size=4)
        assert sorted(order) == list(range(100))

    def test_already_sorted(self):
        keys = np.arange(1000)
        order, _ = _sort(keys, leaf_size=16)
        assert (keys[order] == keys).all()

    def test_reverse_sorted(self):
        keys = np.arange(1000)[::-1].copy()
        order, _ = _sort(keys, leaf_size=16)
        assert (keys[order] == np.sort(keys)).all()

    def test_order_is_permutation(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, size=500)
        order, _ = _sort(keys, leaf_size=8)
        assert sorted(order) == list(range(500))

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300)
    )
    @settings(max_examples=60)
    def test_matches_numpy_sort(self, values):
        keys = np.array(values, dtype=np.int64)
        order, _ = _sort(keys, leaf_size=8)
        assert (keys[order] == np.sort(keys)).all()

    # NUL bytes excluded: NumPy's fixed-width unicode dtype truncates
    # trailing NULs, so '\x00' cannot round-trip through np.array.
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=1), max_size=6
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40)
    def test_string_keys_property(self, values):
        keys = np.array(values)
        order, _ = _sort(keys, leaf_size=4)
        assert list(keys[order]) == sorted(values)


class TestInstrumentation:
    def test_first_pass_covers_whole_array(self):
        keys = np.random.default_rng(0).permutation(1000)
        _, passes = _sort(keys, leaf_size=16)
        assert passes[0] == (1000, 1000, False)

    def test_leaf_passes_marked(self):
        keys = np.random.default_rng(0).permutation(100)
        _, passes = _sort(keys, leaf_size=50)
        assert any(is_leaf for _n, _ws, is_leaf in passes)

    def test_partition_sizes_shrink_overall(self):
        keys = np.random.default_rng(1).permutation(4096)
        _, passes = _sort(keys, leaf_size=64)
        sizes = [n for n, _ws, _leaf in passes]
        # Total emitted work is ~n log(n / leaf): well below n^2 but
        # above a single pass.
        assert sum(sizes) > 4096
        assert sum(sizes) < 4096 * 15

    def test_small_input_single_leaf_pass(self):
        keys = np.array([3, 1, 2])
        _, passes = _sort(keys, leaf_size=10)
        assert passes == [(3, 3, True)]
