"""The snapshot codec and the ``restore(snapshot())`` fixed point.

Two properties carry the whole checkpoint design:

* the codec round-trips every state byte-stably (canonical JSON with
  tagged ndarrays/bytes, versioned, digest-stable);
* for every stateful pipeline component, ``restore(snapshot())`` is a
  fixed point — snapshotting again yields identical bytes, and a
  restored component continues bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clustering import OnlineKMeans
from repro.core.features import FeatureSpace, UnitFeaturizer
from repro.core.phases import PhaseModel
from repro.core.profiler import ProfilerSession
from repro.faults.stream import EventGuard
from repro.runtime.instrument import ThroughputMeter
from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    Snapshotable,
    SnapshotError,
    decode_state,
    encode_state,
    restore_rng,
    rng_state,
    state_digest,
)
from tests.conftest import TEST_SIMPROF_CONFIG
from tests.helpers import PhaseSpec, make_synthetic_profile


class TestCodec:
    def test_round_trip_scalars_and_arrays(self):
        state = {
            "kind": "x",
            "n": 3,
            "f": 0.25,
            "s": "name",
            "none": None,
            "flag": True,
            "vec": np.arange(5, dtype=np.float64),
            "ints": np.array([1, 2], dtype=np.int64),
            "raw": b"\x00\x01\xff",
            "nested": {"inner": [1, 2.5, "x", None]},
        }
        out = decode_state(encode_state(state))
        assert out["n"] == 3 and out["f"] == 0.25 and out["s"] == "name"
        assert out["none"] is None and out["flag"] is True
        assert out["raw"] == b"\x00\x01\xff"
        np.testing.assert_array_equal(out["vec"], state["vec"])
        assert out["vec"].dtype == np.float64
        assert out["ints"].dtype == np.int64
        assert out["nested"] == {"inner": [1, 2.5, "x", None]}

    def test_structured_dtype_round_trips(self):
        from repro.jvm.segments import SEGMENT_DTYPE

        arr = np.zeros(3, dtype=SEGMENT_DTYPE)
        arr["instructions"] = [10, 20, 30]
        out = decode_state(encode_state({"seg": arr}))["seg"]
        assert out.dtype == SEGMENT_DTYPE
        np.testing.assert_array_equal(out, arr)

    def test_encoding_is_byte_stable(self):
        state = {"b": np.arange(4), "a": 1, "c": {"y": 2, "x": 1}}
        assert encode_state(state) == encode_state(
            {"c": {"x": 1, "y": 2}, "a": 1, "b": np.arange(4)}
        )
        assert state_digest(state) == state_digest(encode_state(state))

    def test_version_embedded_and_enforced(self):
        payload = encode_state({"a": 1})
        assert SNAPSHOT_VERSION.encode() in payload
        tampered = payload.replace(
            SNAPSHOT_VERSION.encode(), b"v0-bogus"
        )
        with pytest.raises(SnapshotError):
            decode_state(tampered)

    def test_nan_rejected(self):
        with pytest.raises((SnapshotError, ValueError)):
            encode_state({"x": float("nan")})

    def test_rng_state_round_trip_continues_identically(self):
        gen = np.random.default_rng(99)
        gen.random(7)
        clone = restore_rng(rng_state(gen))
        np.testing.assert_array_equal(gen.random(16), clone.random(16))
        np.testing.assert_array_equal(
            gen.integers(0, 1 << 62, 8), clone.integers(0, 1 << 62, 8)
        )


def _synthetic_job(seed=0):
    return make_synthetic_profile(
        [
            PhaseSpec(n_units=14, cpi_mean=1.0, cpi_std=0.05, stack_index=0),
            PhaseSpec(n_units=11, cpi_mean=2.2, cpi_std=0.10, stack_index=1),
        ],
        seed=seed,
    )


def _roundtrip(component):
    """restore(snapshot()) then assert the re-snapshot is byte-equal."""
    before = component.snapshot()
    payload = encode_state(before)
    component.restore(decode_state(payload))
    after = component.snapshot()
    assert encode_state(after) == payload
    return component


class TestFixedPoints:
    def test_protocol_runtime_checkable(self):
        meter = ThroughputMeter(None)
        assert isinstance(meter, Snapshotable)
        assert isinstance(OnlineKMeans(k=2), Snapshotable)

    @given(ticks=st.lists(st.integers(1, 50), max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_meter_fixed_point(self, ticks):
        meter = ThroughputMeter(None)
        for n in ticks:
            meter.tick(n)
        items = meter.items
        _roundtrip(meter)
        assert meter.items == items

    @given(
        seed=st.integers(0, 2**32 - 1),
        n_feed=st.integers(0, 40),
    )
    @settings(max_examples=15, deadline=None)
    def test_online_kmeans_fixed_point_and_continuation(self, seed, n_feed):
        rng = np.random.default_rng(seed)
        X = rng.random((60, 4))
        a = OnlineKMeans(k=3, init_size=16, seed=seed)
        b = OnlineKMeans(k=3, init_size=16, seed=seed)
        for row in X[:n_feed]:
            a.partial_fit(row[None, :])
            b.partial_fit(row[None, :])
        b.restore(decode_state(encode_state(a.snapshot())))
        assert encode_state(b.snapshot()) == encode_state(a.snapshot())
        for row in X[n_feed:]:
            a.partial_fit(row[None, :])
            b.partial_fit(row[None, :])
        assert encode_state(a.snapshot()) == encode_state(b.snapshot())

    def test_featurizer_fixed_point(self):
        job = _synthetic_job()
        space, _ = FeatureSpace.fit(job, top_k=20)
        feat = UnitFeaturizer(space, job.registry, job.stack_table)
        feat.row(job.profile.units[0])
        _roundtrip(feat)
        row_before = feat.row(job.profile.units[1]).copy()
        feat.restore(decode_state(encode_state(feat.snapshot())))
        np.testing.assert_array_equal(
            feat.row(job.profile.units[1]), row_before
        )

    def test_feature_space_round_trip(self):
        job = _synthetic_job()
        space, _ = FeatureSpace.fit(job, top_k=20)
        clone = FeatureSpace.from_snapshot(
            decode_state(encode_state(space.snapshot()))
        )
        assert clone.method_fqns == space.method_fqns
        np.testing.assert_array_equal(clone.method_ids, space.method_ids)

    def test_phase_model_fixed_point(self):
        job = _synthetic_job()
        model = PhaseModel.fit(job, seed=0, max_phases=6)
        state = model.snapshot()
        clone = PhaseModel.from_snapshot(decode_state(encode_state(state)))
        assert encode_state(clone.snapshot()) == encode_state(state)
        np.testing.assert_array_equal(clone.assignments, model.assignments)
        np.testing.assert_array_equal(clone.centers, model.centers)

    def test_event_guard_fixed_point(self):
        _roundtrip(EventGuard())

    @given(cut_at=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_profiler_session_fixed_point_mid_stream(self, cut_at):
        from repro.workloads import run_workload_stream
        from tests.conftest import TEST_SCALE

        stream = run_workload_stream(
            "wc", "spark", scale=TEST_SCALE, seed=0
        )
        session = ProfilerSession(
            TEST_SIMPROF_CONFIG.profiler_config(), stream, collect=True
        )
        for i, event in enumerate(stream):
            if i >= cut_at:
                break
            session.feed(event)
        state = session.snapshot()
        payload = encode_state(state)
        session.restore(decode_state(payload))
        assert encode_state(session.snapshot()) == payload
