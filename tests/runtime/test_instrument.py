"""Tests for the per-stage instrumentation registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.instrument import (
    Instrumentation,
    StageStats,
    get_instrumentation,
)


class TestStageStats:
    def test_add_accumulates(self):
        stats = StageStats()
        stats.add(0.5, {"units": 10})
        stats.add(0.25, {"units": 5, "other": 1})
        assert stats.calls == 2
        assert stats.seconds == pytest.approx(0.75)
        assert stats.counters == {"units": 15.0, "other": 1.0}

    def test_copy_is_independent(self):
        stats = StageStats(calls=1, seconds=1.0, counters={"x": 1.0})
        clone = stats.copy()
        clone.add(1.0, {"x": 1.0})
        assert stats.calls == 1
        assert stats.counters == {"x": 1.0}


class TestInstrumentation:
    def test_stage_context_records_time_and_counters(self):
        inst = Instrumentation()
        with inst.stage("profiling") as rec:
            rec.add(units=7)
        snap = inst.snapshot()
        assert snap["profiling"].calls == 1
        assert snap["profiling"].seconds >= 0.0
        assert snap["profiling"].counters == {"units": 7.0}

    def test_stage_records_on_exception(self):
        inst = Instrumentation()
        with pytest.raises(ValueError):
            with inst.stage("k-means"):
                raise ValueError("boom")
        assert inst.snapshot()["k-means"].calls == 1

    def test_reset(self):
        inst = Instrumentation()
        inst.record("sampling", 0.1)
        inst.reset()
        assert inst.snapshot() == {}

    def test_capture_yields_delta_only(self):
        inst = Instrumentation()
        inst.record("profiling", 1.0, {"units": 5})
        with inst.capture() as delta:
            inst.record("profiling", 0.5, {"units": 2})
            inst.record("k-means", 0.25)
        assert set(delta) == {"profiling", "k-means"}
        assert delta["profiling"].calls == 1
        assert delta["profiling"].seconds == pytest.approx(0.5)
        assert delta["profiling"].counters == {"units": 2.0}
        assert delta["k-means"].seconds == pytest.approx(0.25)
        # The block did not disturb the running totals.
        assert inst.snapshot()["profiling"].seconds == pytest.approx(1.5)

    def test_global_singleton(self):
        assert get_instrumentation() is get_instrumentation()


class TestPipelineHooks:
    """The core pipeline must fire the documented stage hooks."""

    def test_analyze_fires_all_stages(self, wc_spark_trace, simprof_tool):
        inst = get_instrumentation()
        inst.reset()
        result = simprof_tool.analyze(wc_spark_trace, n_points=10)
        snap = inst.snapshot()
        for stage in ("profiling", "feature-selection", "k-means", "sampling"):
            assert stage in snap, f"stage {stage!r} never fired"
            assert snap[stage].calls >= 1
        assert snap["profiling"].counters["units"] == result.job.n_units
        assert snap["k-means"].counters["phases"] == result.model.k
        assert snap["sampling"].counters["points"] == len(
            np.asarray(result.points.selected)
        )
