"""Tests for the content-addressed artifact store."""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.runtime.instrument import stage_timer
from repro.runtime.store import (
    STORE_VERSION,
    ArtifactStore,
    canonical_repr,
    default_store,
    reset_default_stores,
    stable_hash,
)


@dataclass(frozen=True)
class _Knobs:
    a: int = 1
    b: float = 0.5


class TestStableHash:
    def test_nested_dict_order_insensitive(self):
        """Regression: ``repr(sorted(...))`` only sorted the top level."""
        left = {"outer": {"b": 1, "a": 2}, "x": [1, 2]}
        right = {"x": [1, 2], "outer": {"a": 2, "b": 1}}
        assert stable_hash(left) == stable_hash(right)

    def test_deep_nesting(self):
        left = {"p": {"q": {"z": 1, "y": {"n": 2, "m": 3}}}}
        right = {"p": {"q": {"y": {"m": 3, "n": 2}, "z": 1}}}
        assert stable_hash(left) == stable_hash(right)

    def test_values_distinguish(self):
        assert stable_hash({"a": {"b": 1}}) != stable_hash({"a": {"b": 2}})

    def test_type_distinctions(self):
        # 1 vs 1.0 vs "1" must not collide; bool is not int 1.
        hashes = {stable_hash(v) for v in (1, 1.0, "1", True)}
        assert len(hashes) == 4

    def test_dataclass_and_numpy(self):
        assert stable_hash(_Knobs()) == stable_hash(_Knobs(a=1, b=0.5))
        assert stable_hash(_Knobs()) != stable_hash(_Knobs(a=2))
        assert stable_hash(np.int64(3)) == stable_hash(3)
        assert stable_hash(np.array([1, 2])) == stable_hash(np.array([1, 2]))

    def test_list_vs_tuple_equivalent_but_sets_sorted(self):
        assert canonical_repr([1, 2]) == canonical_repr((1, 2))
        assert stable_hash({2, 1}) == stable_hash({1, 2})

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(object())


class TestStoreRoundtrip:
    def test_put_get(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key_for("profile", {"w": "wc"})
        store.put(key, {"value": 42}, kind="profile", params={"w": "wc"})
        assert store.get(key) == {"value": 42}
        # Fresh store instance: comes back from disk, not memory.
        other = ArtifactStore(tmp_path)
        assert other.get(key) == {"value": 42}
        assert other.stats.disk_hits == 1

    def test_key_carries_kind_and_version(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.key_for("model", {"x": 1})
        assert key.startswith(f"model-{STORE_VERSION}-")

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError):
            ArtifactStore(tmp_path).get("profile-v0-deadbeef")

    def test_manifest_contents(self, tmp_path):
        store = ArtifactStore(tmp_path)
        value = store.get_or_compute("profile", {"w": "wc", "n": 3}, lambda: [1, 2])
        assert value == [1, 2]
        key = store.key_for("profile", {"w": "wc", "n": 3})
        manifest = store.manifest(key)
        assert manifest is not None
        assert manifest.kind == "profile"
        assert manifest.version == STORE_VERSION
        assert manifest.params == {"w": "wc", "n": 3}
        assert manifest.size_bytes == len(
            pickle.dumps([1, 2], protocol=pickle.HIGHEST_PROTOCOL)
        )
        assert manifest.hits == 0

    def test_disk_hit_bumps_manifest_counter(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compute("profile", {"w": "wc"}, lambda: "v")
        key = store.key_for("profile", {"w": "wc"})
        for expected_hits in (1, 2):
            reader = ArtifactStore(tmp_path)
            assert reader.get(key) == "v"
            assert reader.manifest(key).hits == expected_hits

    def test_stage_timings_captured_in_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)

        def compute():
            with stage_timer("trace-gen"):
                time.sleep(0.01)
            return "x"

        store.get_or_compute("profile", {"w": "wc"}, compute)
        manifest = store.manifest(store.key_for("profile", {"w": "wc"}))
        assert manifest.stages.get("trace-gen", 0.0) > 0.0
        assert manifest.compute_seconds >= manifest.stages["trace-gen"]


class TestCorruptionRecovery:
    def test_corrupt_value_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "fresh"

        store.get_or_compute("profile", {"w": "wc"}, compute)
        key = store.key_for("profile", {"w": "wc"})
        (tmp_path / f"{key}.pkl").write_bytes(b"garbage")
        store.clear_memory()
        assert store.get_or_compute("profile", {"w": "wc"}, compute) == "fresh"
        assert len(calls) == 2

    def test_corrupt_manifest_tolerated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("profile-v7-abc", "v", kind="profile")
        (tmp_path / "profile-v7-abc.json").write_text("{not json")
        store.clear_memory()
        assert store.get("profile-v7-abc") == "v"
        # entries() synthesises a manifest rather than crashing.
        assert any(m.key == "profile-v7-abc" for m in store.entries())


class TestIntegrity:
    def _put_one(self, store: ArtifactStore) -> str:
        key = store.key_for("profile", {"w": "wc"})
        store.put(key, {"payload": list(range(50))}, kind="profile")
        return key

    def test_put_records_payload_digest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = self._put_one(store)
        manifest = store.manifest(key)
        assert len(manifest.payload_sha256) == 64

    def test_corrupt_payload_quarantined_on_get(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = self._put_one(store)
        # Still a valid pickle, so only the digest can catch it.
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps({"evil": 1}))
        store.clear_memory()
        with pytest.raises(KeyError):
            store.get(key)
        assert not store.contains(key)
        assert (tmp_path / "quarantine" / f"{key}.pkl").exists()
        assert (tmp_path / "quarantine" / f"{key}.json").exists()

    def test_verify_classifies_entries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        ok_key = self._put_one(store)
        bad_key = store.key_for("profile", {"w": "bad"})
        store.put(bad_key, "value", kind="profile")
        (tmp_path / f"{bad_key}.pkl").write_bytes(b"flipped bits")
        legacy_key = store.key_for("profile", {"w": "legacy"})
        store.put(legacy_key, "old", kind="profile")
        manifest = store.manifest(legacy_key)
        manifest.payload_sha256 = ""
        (tmp_path / f"{legacy_key}.json").write_text(manifest.to_json())

        report = store.verify()
        assert report["ok"] == [ok_key]
        assert report["corrupt"] == [bad_key]
        assert report["unverified"] == [legacy_key]
        # verify() alone leaves the bad entry in place...
        assert (tmp_path / f"{bad_key}.pkl").exists()

        # ...repair=True quarantines it.
        report = store.verify(repair=True)
        assert report["corrupt"] == [bad_key]
        assert not (tmp_path / f"{bad_key}.pkl").exists()
        assert (tmp_path / "quarantine" / f"{bad_key}.pkl").exists()
        assert ArtifactStore(tmp_path).verify()["corrupt"] == []

    def test_get_or_compute_recovers_from_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return "fresh"

        store.get_or_compute("profile", {"w": "wc"}, compute)
        key = store.key_for("profile", {"w": "wc"})
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps("tampered"))
        store.clear_memory()
        assert store.get_or_compute("profile", {"w": "wc"}, compute) == "fresh"
        assert len(calls) == 2

    def test_manifest_status(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = self._put_one(store)
        assert store.manifest_status(key) == "ok"
        assert store.manifest_status("profile-v7-nope") == "missing"
        (tmp_path / f"{key}.json").write_text("{torn", encoding="utf-8")
        assert store.manifest_status(key) == "corrupt"


class TestConcurrency:
    def test_concurrent_writers_same_key(self, tmp_path):
        """Many writers racing on one key leave a valid entry behind.

        Regression for the old shared ``.tmp`` path: two processes used
        the same temporary file and could tear each other's writes.
        """
        store = ArtifactStore(tmp_path)
        key = store.key_for("profile", {"w": "race"})
        errors = []
        payload = list(range(2000))

        def writer(i: int) -> None:
            try:
                local = ArtifactStore(tmp_path)
                local.put(key, payload, kind="profile")
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert ArtifactStore(tmp_path).get(key) == payload
        assert not list(tmp_path.glob("*.tmp"))


class TestGC:
    def _populate(self, store: ArtifactStore) -> None:
        store.put(store.key_for("profile", {"i": 1}), "a", kind="profile")
        store.put(store.key_for("model", {"i": 1}), "b", kind="model")
        # An entry from an older store version.
        old = ArtifactStore(store.root)
        old.put("profile-v6-0123456789abcdef0123", "stale", kind="profile")
        manifest = old.manifest("profile-v6-0123456789abcdef0123")
        manifest.version = "v6"
        (store.root / "profile-v6-0123456789abcdef0123.json").write_text(
            manifest.to_json()
        )

    def test_gc_stale_only(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store)
        removed, _ = store.gc(stale_only=True)
        assert removed == 1
        assert len(list(tmp_path.glob("*.pkl"))) == 2

    def test_gc_by_age(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store)
        removed, _ = store.gc(max_age_days=1.0)
        assert removed == 0
        removed, reclaimed = store.gc(max_age_days=-1.0)  # everything is "old"
        assert removed == 3
        assert reclaimed > 0
        assert not list(tmp_path.glob("*.pkl"))

    def test_gc_spares_young_tmp_files(self, tmp_path):
        """Regression: the sweep used to reap a live writer's tempfile."""
        import os as _os

        store = ArtifactStore(tmp_path)
        young = tmp_path / ".profile-v7-abc.pkl.1234.tmp"
        young.write_bytes(b"half-written")
        old = tmp_path / ".profile-v7-def.pkl.5678.tmp"
        old.write_bytes(b"orphaned")
        stale = time.time() - 2 * ArtifactStore.TMP_GRACE_SECONDS
        _os.utime(old, (stale, stale))

        store.gc(everything=True)
        assert young.exists()  # inside the grace period
        assert not old.exists()  # past it

        store.gc(everything=True, tmp_grace_seconds=0.0)
        assert not young.exists()

    def test_gc_dry_run_leaves_tmp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tmp = tmp_path / ".profile-v7-abc.pkl.1.tmp"
        tmp.write_bytes(b"x")
        store.gc(everything=True, dry_run=True, tmp_grace_seconds=0.0)
        assert tmp.exists()

    def test_gc_kind_filter_and_dry_run(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store)
        removed, _ = store.gc(everything=True, kind="model", dry_run=True)
        assert removed == 1
        assert len(list(tmp_path.glob("*.pkl"))) == 3  # dry run deleted nothing
        removed, _ = store.gc(everything=True, kind="model")
        assert removed == 1
        assert len(list(tmp_path.glob("*.pkl"))) == 2


class TestDefaultStore:
    def test_per_root_instances(self, tmp_path, monkeypatch):
        reset_default_stores()
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path / "a"))
        store_a = default_store()
        assert default_store() is store_a
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path / "b"))
        store_b = default_store()
        assert store_b is not store_a
        assert store_b.root != store_a.root
        reset_default_stores()
