"""CLI surface of the checkpoint layer.

``simprof profile --stream --checkpoint-every N [--resume]`` and the
``simprof cache checkpoints`` maintenance subcommand.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.store import default_store, reset_default_stores

PROFILE_ARGS = [
    "profile",
    "wc_sp",
    "--stream",
    "--scale",
    "0.08",
    "--unit-size",
    "10000000",
    "--snapshot-period",
    "500000",
]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
    reset_default_stores()
    yield
    reset_default_stores()


class TestProfileFlagValidation:
    @pytest.mark.parametrize(
        "extra",
        [
            ["--checkpoint-every", "2"],
            ["--resume"],
            ["--worker"],
        ],
    )
    def test_stream_only_flags_rejected_in_batch_mode(self, extra):
        with pytest.raises(SystemExit, match="require --stream"):
            main(["profile", "wc_sp", *extra])

    def test_resume_requires_interval(self):
        with pytest.raises(SystemExit, match="requires --checkpoint-every"):
            main([*PROFILE_ARGS, "--resume"])

    def test_interval_must_be_positive(self):
        with pytest.raises(SystemExit, match=">= 1"):
            main([*PROFILE_ARGS, "--checkpoint-every", "0"])


class TestProfileCheckpointing:
    def test_completed_run_retires_its_snapshots(self, capsys):
        assert main([*PROFILE_ARGS, "--checkpoint-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "checkpointing: job" in out
        assert "retired on completion" in out
        # Nothing left behind for the maintenance command to show.
        assert main(["cache", "checkpoints"]) == 0
        assert "0 across 0 job(s)" in capsys.readouterr().out


class TestCacheCheckpoints:
    def _seed_chain(self, job_key="job-under-test"):
        manager = CheckpointManager(default_store(), job_key)
        manager.save(4, {"position": 4, "session": {"kind": "x"}})
        manager.save(9, {"position": 9, "session": {"kind": "x"}})
        return manager

    def test_empty_store(self, capsys):
        assert main(["cache", "checkpoints"]) == 0
        assert "0 across 0 job(s)" in capsys.readouterr().out

    def test_lists_positions_per_job(self, capsys):
        self._seed_chain()
        assert main(["cache", "checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "2 across 1 job(s)" in out
        assert "job-under-test" in out

    def test_job_filter(self, capsys):
        self._seed_chain("job-a")
        self._seed_chain("job-b")
        assert main(["cache", "checkpoints", "--job", "job-a"]) == 0
        out = capsys.readouterr().out
        assert "job-a" in out and "job-b" not in out

    def test_inspect_decodes_the_snapshot(self, capsys):
        manager = self._seed_chain()
        key = manager.manifests()[0].key
        assert main(["cache", "checkpoints", "--inspect", key]) == 0
        out = capsys.readouterr().out
        assert '"position": 4' in out
        assert "snapshot components" in out

    def test_gc_removes_chains(self, capsys):
        self._seed_chain("job-a")
        self._seed_chain("job-b")
        assert main(["cache", "checkpoints", "--gc", "--job", "job-a"]) == 0
        assert "removed 2 checkpoint(s)" in capsys.readouterr().out
        assert main(["cache", "checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "job-b" in out and "2 across 1 job(s)" in out


class TestCacheReplicate:
    def _seed_chain(self, job_key="job-rep"):
        manager = CheckpointManager(default_store(), job_key)
        manager.save(4, {"position": 4, "session": {"kind": "x"}})
        manager.save(9, {"position": 9, "session": {"kind": "x"}})
        return manager

    def test_push_then_pull_roundtrip(self, tmp_path, capsys):
        self._seed_chain()
        peer = tmp_path / "peer"
        assert main(["cache", "replicate", str(peer)]) == 0
        out = capsys.readouterr().out
        assert "pushed to" in out and "2 transferred" in out
        # Second sweep: everything already digest-acknowledged.
        assert main(["cache", "replicate", str(peer)]) == 0
        assert "2 already present" in capsys.readouterr().out
        # The disk dies; pull the chains back.
        default_store().wipe()
        assert main(["cache", "replicate", str(peer), "--pull"]) == 0
        assert "pulled from" in capsys.readouterr().out
        assert main(["cache", "checkpoints"]) == 0
        assert "2 across 1 job(s)" in capsys.readouterr().out

    def test_watch_bounded_by_rounds(self, tmp_path, capsys):
        self._seed_chain()
        peer = tmp_path / "peer"
        assert main([
            "cache", "replicate", str(peer),
            "--watch", "--interval", "0.01", "--rounds", "2",
        ]) == 0
        assert capsys.readouterr().out.count("pushed to") == 2


class TestGcPeerAckGuard:
    """--gc must not collect entries the peer has not acknowledged."""

    def _seed_chain(self, job_key="job-gc"):
        manager = CheckpointManager(default_store(), job_key)
        manager.save(4, {"position": 4, "session": {"kind": "x"}})
        manager.save(9, {"position": 9, "session": {"kind": "x"}})
        return manager

    def test_unacked_entries_survive_gc(self, tmp_path, capsys):
        self._seed_chain()
        peer = tmp_path / "peer"  # configured but empty: nothing acked
        assert main([
            "cache", "checkpoints", "--gc", "--peer", str(peer),
        ]) == 0
        out = capsys.readouterr().out
        assert "removed 0 checkpoint(s)" in out
        assert "retained 2 checkpoint(s)" in out
        assert "bounded-lag safety" in out
        # Still listed — nothing was lost.
        assert main(["cache", "checkpoints"]) == 0
        assert "2 across 1 job(s)" in capsys.readouterr().out

    def test_acked_entries_collect_normally(self, tmp_path, capsys):
        self._seed_chain()
        peer = tmp_path / "peer"
        assert main(["cache", "replicate", str(peer)]) == 0
        capsys.readouterr()
        assert main([
            "cache", "checkpoints", "--gc", "--peer", str(peer),
        ]) == 0
        out = capsys.readouterr().out
        assert "removed 2 checkpoint(s)" in out
        assert "retained" not in out

    def test_env_configured_peer_guards_too(self, tmp_path, capsys, monkeypatch):
        self._seed_chain()
        monkeypatch.setenv("SIMPROF_REPLICA_PEER", str(tmp_path / "peer"))
        assert main(["cache", "checkpoints", "--gc"]) == 0
        assert "retained 2 checkpoint(s)" in capsys.readouterr().out

    def test_force_overrides_the_guard(self, tmp_path, capsys):
        self._seed_chain()
        assert main([
            "cache", "checkpoints", "--gc",
            "--peer", str(tmp_path / "peer"), "--force",
        ]) == 0
        assert "removed 2 checkpoint(s)" in capsys.readouterr().out


class TestFleetListing:
    def test_fleet_rows_with_peer_ack(self, tmp_path, capsys):
        from repro.runtime.replicate import register_inflight

        store = default_store()
        manager = CheckpointManager(store, "job-f")
        manager.save(4, {"position": 4, "session": {"kind": "x"}})
        manager.save(9, {"position": 9, "session": {"kind": "x"}})
        register_inflight(
            store, "job-f",
            {"spec": {"workload": "wc"}, "checkpoint_every": 2, "label": "wc_sp"},
        )
        assert main(["cache", "checkpoints", "--fleet"]) == 0
        out = capsys.readouterr().out
        assert "1 journalled job(s)" in out
        assert "wc_sp" in out and "job-f" in out
        peer = tmp_path / "peer"
        assert main(["cache", "replicate", str(peer)]) == 0
        capsys.readouterr()
        assert main([
            "cache", "checkpoints", "--fleet", "--peer", str(peer),
        ]) == 0
        assert "2/2" in capsys.readouterr().out

    def test_empty_journal(self, capsys):
        assert main(["cache", "checkpoints", "--fleet"]) == 0
        assert "0 journalled job(s)" in capsys.readouterr().out


class TestVerifyDeepCheckpoints:
    def test_digest_consistent_garbage_is_reported_and_repaired(
        self, capsys
    ):
        from repro.runtime.checkpoint import CHECKPOINT_KIND
        from repro.runtime.snapshot import (
            SNAPSHOT_VERSION,
            encode_state,
            state_digest,
        )

        store = default_store()
        manager = CheckpointManager(store, "job-v")
        manager.save(4, {"position": 4, "session": {"kind": "x"}})
        key9 = manager.save(9, {"position": 9, "session": {"kind": "x"}})
        # Torn before storage: the byte digest faithfully records
        # garbage, so only the deep (snapshot-level) pass can catch it.
        torn = encode_state({"position": 9, "session": {"kind": "x"}})[:-7]
        store.put(
            key9, torn, kind=CHECKPOINT_KIND,
            params={
                "job": "job-v", "position": 9,
                "snapshot": SNAPSHOT_VERSION,
                "state_digest": state_digest(torn),
            },
        )
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert f"CORRUPT: {key9}" in out
        assert "1 checkpoint(s) deep-verified" in out
        assert main(["cache", "verify", "--repair"]) == 0
        out = capsys.readouterr().out
        assert f"quarantined: {key9}" in out
        # The quarantined entry no longer resumes; the chain fell back.
        store.clear_memory()
        position, _state = CheckpointManager(store, "job-v").latest()
        assert position == 4


class TestProfileFromPeer:
    def test_from_peer_requires_resume(self):
        with pytest.raises(SystemExit, match="requires --resume"):
            main([*PROFILE_ARGS, "--checkpoint-every", "2",
                  "--from-peer", "/tmp/nowhere"])

    def test_disaster_recovery_resume_from_peer(self, tmp_path, capsys):
        """Cut a genuine chain via the CLI's own entry point, replicate,
        lose the local store, resume with --resume --from-peer."""
        from repro.core.pipeline import SimProf, SimProfConfig
        from repro.runtime.checkpoint import (
            CheckpointPolicy,
            WorkerKilled,
            checkpoint_job_key,
        )
        from repro.workloads import run_workload_stream

        config = SimProfConfig(
            unit_size=10_000_000, snapshot_period=500_000, seed=0
        )
        job_key = checkpoint_job_key({
            "workload": "wc", "framework": "spark", "scale": 0.08,
            "seed": 0, "graph": "", "faults": "",
            "profiler": config.profiler_config(),
        })
        manager = CheckpointManager(default_store(), job_key)
        stream = run_workload_stream("wc", "spark", scale=0.08, seed=0)
        with pytest.raises(WorkerKilled):
            SimProf(config).analyze_stream(
                stream,
                checkpoint=CheckpointPolicy(manager, every=2, kill_after=15),
            )
        assert manager.latest() is not None
        peer = tmp_path / "peer"
        assert main(["cache", "replicate", str(peer)]) == 0
        capsys.readouterr()
        default_store().wipe()

        assert main([
            *PROFILE_ARGS, "--checkpoint-every", "2",
            "--resume", "--from-peer", str(peer),
        ]) == 0
        out = capsys.readouterr().out
        assert f"pulled job {job_key}" in out
        assert "retired on completion" in out

    def test_env_peer_replicates_during_profile(
        self, tmp_path, capsys, monkeypatch
    ):
        peer = tmp_path / "peer"
        monkeypatch.setenv("SIMPROF_REPLICA_PEER", str(peer))
        monkeypatch.setenv("SIMPROF_REPLICA_SYNC", "1")
        assert main([*PROFILE_ARGS, "--checkpoint-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "replication:" in out
        assert "DEGRADED" not in out

    def test_no_peer_no_replication_output(self, capsys):
        assert main([*PROFILE_ARGS, "--checkpoint-every", "2"]) == 0
        assert "replication:" not in capsys.readouterr().out
