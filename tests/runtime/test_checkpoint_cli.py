"""CLI surface of the checkpoint layer.

``simprof profile --stream --checkpoint-every N [--resume]`` and the
``simprof cache checkpoints`` maintenance subcommand.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.store import default_store, reset_default_stores

PROFILE_ARGS = [
    "profile",
    "wc_sp",
    "--stream",
    "--scale",
    "0.08",
    "--unit-size",
    "10000000",
    "--snapshot-period",
    "500000",
]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
    reset_default_stores()
    yield
    reset_default_stores()


class TestProfileFlagValidation:
    @pytest.mark.parametrize(
        "extra",
        [
            ["--checkpoint-every", "2"],
            ["--resume"],
            ["--worker"],
        ],
    )
    def test_stream_only_flags_rejected_in_batch_mode(self, extra):
        with pytest.raises(SystemExit, match="require --stream"):
            main(["profile", "wc_sp", *extra])

    def test_resume_requires_interval(self):
        with pytest.raises(SystemExit, match="requires --checkpoint-every"):
            main([*PROFILE_ARGS, "--resume"])

    def test_interval_must_be_positive(self):
        with pytest.raises(SystemExit, match=">= 1"):
            main([*PROFILE_ARGS, "--checkpoint-every", "0"])


class TestProfileCheckpointing:
    def test_completed_run_retires_its_snapshots(self, capsys):
        assert main([*PROFILE_ARGS, "--checkpoint-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "checkpointing: job" in out
        assert "retired on completion" in out
        # Nothing left behind for the maintenance command to show.
        assert main(["cache", "checkpoints"]) == 0
        assert "0 across 0 job(s)" in capsys.readouterr().out


class TestCacheCheckpoints:
    def _seed_chain(self, job_key="job-under-test"):
        manager = CheckpointManager(default_store(), job_key)
        manager.save(4, {"position": 4, "session": {"kind": "x"}})
        manager.save(9, {"position": 9, "session": {"kind": "x"}})
        return manager

    def test_empty_store(self, capsys):
        assert main(["cache", "checkpoints"]) == 0
        assert "0 across 0 job(s)" in capsys.readouterr().out

    def test_lists_positions_per_job(self, capsys):
        self._seed_chain()
        assert main(["cache", "checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "2 across 1 job(s)" in out
        assert "job-under-test" in out

    def test_job_filter(self, capsys):
        self._seed_chain("job-a")
        self._seed_chain("job-b")
        assert main(["cache", "checkpoints", "--job", "job-a"]) == 0
        out = capsys.readouterr().out
        assert "job-a" in out and "job-b" not in out

    def test_inspect_decodes_the_snapshot(self, capsys):
        manager = self._seed_chain()
        key = manager.manifests()[0].key
        assert main(["cache", "checkpoints", "--inspect", key]) == 0
        out = capsys.readouterr().out
        assert '"position": 4' in out
        assert "snapshot components" in out

    def test_gc_removes_chains(self, capsys):
        self._seed_chain("job-a")
        self._seed_chain("job-b")
        assert main(["cache", "checkpoints", "--gc", "--job", "job-a"]) == 0
        assert "removed 2 checkpoint(s)" in capsys.readouterr().out
        assert main(["cache", "checkpoints"]) == 0
        out = capsys.readouterr().out
        assert "job-b" in out and "2 across 1 job(s)" in out
