"""Replication plane: peers, transfers, policy, journal, fleet restore.

The contract under test (ISSUE 9): checkpoint chains migrate between
stores with digest verification at every hop, transfers resume and
quarantine rather than trust, replication never fails a job (it
degrades and records), and a fleet of in-flight jobs restores in
parallel byte-identically to a serial restore.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.pipeline import SimProf
from repro.runtime.checkpoint import (
    CheckpointManager,
    WorkerKilled,
    checkpoint_job_key,
)
from repro.runtime.replicate import (
    INFLIGHT_KIND,
    FilesystemPeer,
    FlakyPeer,
    FlakyPlan,
    PeerPayloadMismatch,
    ReplicationPolicy,
    RetryPolicy,
    clear_inflight,
    inflight_store_key,
    iter_inflight,
    pull_fleet,
    pull_job,
    pull_key,
    push_key,
    register_inflight,
    replicate_store,
    restore_fleet,
)
from repro.runtime.runner import RunSpec, _compute_profile_stream, spec_stream
from repro.runtime.store import ArtifactStore
from tests.conftest import TEST_SCALE, TEST_SIMPROF_CONFIG


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "local")


@pytest.fixture()
def peer(tmp_path):
    return FilesystemPeer(tmp_path / "peer")


def _seed_entry(store, job="jobA", position=5, payload=b"x" * 200_000):
    """One checkpoint-shaped entry with a verified payload digest."""
    params = {"job": job, "position": position}
    key = store.key_for("checkpoint", params)
    store.put(key, payload, kind="checkpoint", params=params)
    return key


NO_BACKOFF = RetryPolicy(retries=3, backoff=0.0)


class TestFilesystemPeerTransfers:
    def test_push_is_byte_identical_and_idempotent(self, store, peer):
        key = _seed_entry(store)
        out = push_key(store, peer, key, retry=NO_BACKOFF)
        assert out.action == "pushed" and out.ok
        # Peer holds the exact same payload + manifest bytes.
        assert (peer.root / f"{key}.pkl").read_bytes() == store.read_payload(key)
        local_manifest = store.manifest(key)
        assert peer.manifest(key).payload_sha256 == local_manifest.payload_sha256
        assert peer.has(key, local_manifest.payload_sha256)
        # Second push is a digest-verified no-op.
        assert push_key(store, peer, key, retry=NO_BACKOFF).action == "present"

    def test_pull_roundtrip_byte_identical(self, store, peer, tmp_path):
        key = _seed_entry(store)
        push_key(store, peer, key, retry=NO_BACKOFF)
        other = ArtifactStore(tmp_path / "other")
        out = pull_key(peer, other, key, retry=NO_BACKOFF)
        assert out.action == "pulled"
        assert other.read_payload(key) == store.read_payload(key)
        assert other.get(key) == store.get(key)
        assert pull_key(peer, other, key, retry=NO_BACKOFF).action == "present"

    def test_push_resumes_partial_transfer(self, store, peer):
        key = _seed_entry(store)
        payload = store.read_payload(key)
        # A previous attempt died after the first chunk.
        head = payload[: peer.CHUNK]
        peer.send_chunk(key, 0, head)
        assert peer.transfer_offset(key) == len(head)
        out = push_key(store, peer, key, retry=NO_BACKOFF)
        assert out.action == "pushed"
        # Only the remainder crossed the wire this time.
        assert out.bytes_moved == len(payload) - len(head)
        assert (peer.root / f"{key}.pkl").read_bytes() == payload

    def test_commit_quarantines_mismatched_payload(self, store, peer):
        key = _seed_entry(store)
        manifest = store.manifest(key)
        peer.send_chunk(key, 0, b"not the payload at all")
        with pytest.raises(PeerPayloadMismatch):
            peer.commit(key, manifest)
        # Evidence parked on the peer, transfer slate wiped clean.
        assert list((peer.root / "quarantine").iterdir())
        assert peer.transfer_offset(key) == 0
        assert peer.manifest(key) is None

    def test_corrupt_local_entry_never_ships(self, store, peer):
        key = _seed_entry(store)
        # Rot the local payload behind the manifest's back.
        path = store.root / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:-10] + b"0123456789")
        out = push_key(store, peer, key, retry=NO_BACKOFF)
        assert out.action == "corrupt-local"
        assert not (peer.root / f"{key}.pkl").exists()
        # And the local entry went to quarantine, not back into service.
        assert not store.contains(key)

    def test_unverified_entry_refused(self, store, peer):
        key = _seed_entry(store)
        manifest = store.manifest(key)
        manifest.payload_sha256 = ""
        (store.root / f"{key}.json").write_text(manifest.to_json())
        out = push_key(store, peer, key, retry=NO_BACKOFF)
        assert out.action == "unverified"

    def test_pull_missing_key(self, store, peer):
        out = pull_key(peer, store, "checkpoint-v7-deadbeef", retry=NO_BACKOFF)
        assert out.action == "missing"

    def test_unreachable_peer_fails_without_raising(self, store):
        key = _seed_entry(store)
        bad = FilesystemPeer("/proc/nonexistent/peer")
        out = push_key(store, bad, key, retry=RetryPolicy(retries=1, backoff=0.0))
        assert out.action == "failed"
        assert out.attempts == 2
        assert out.error


class TestFlakyPeer:
    PLAN = FlakyPlan(
        seed=5, drop_rate=0.2, stall_rate=0.05,
        stall_seconds=0.0, corrupt_rate=0.15,
    )

    def test_fault_sequence_is_deterministic(self, store, tmp_path):
        logs = []
        for run in range(2):
            flaky = FlakyPeer(
                FilesystemPeer(tmp_path / f"peer{run}"), self.PLAN
            )
            key = _seed_entry(store)
            out = push_key(
                store, flaky, key, retry=RetryPolicy(retries=10, backoff=0.0)
            )
            assert out.ok
            logs.append(flaky.faults)
        assert logs[0] == logs[1]

    def test_corruption_is_caught_and_retried(self, store, tmp_path):
        # corrupt_rate=1: every chunk is damaged in flight, so every
        # commit must quarantine — the push can never falsely succeed.
        flaky = FlakyPeer(
            FilesystemPeer(tmp_path / "p"),
            FlakyPlan(seed=1, corrupt_rate=1.0),
        )
        key = _seed_entry(store, payload=b"y" * 1000)
        out = push_key(store, flaky, key, retry=RetryPolicy(retries=2, backoff=0.0))
        assert out.action == "failed"
        assert not flaky.inner.has(key, store.manifest(key).payload_sha256)
        assert list((flaky.inner.root / "quarantine").iterdir())

    def test_total_drop_reports_failure(self, store, tmp_path):
        flaky = FlakyPeer(
            FilesystemPeer(tmp_path / "p"), FlakyPlan(seed=2, drop_rate=1.0)
        )
        key = _seed_entry(store, payload=b"z" * 100)
        out = push_key(store, flaky, key, retry=RetryPolicy(retries=1, backoff=0.0))
        assert out.action == "failed"
        assert "injected drop" in out.error


class TestRetryPolicy:
    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(retries=3, backoff=0.5, seed=7)
        b = RetryPolicy(retries=3, backoff=0.5, seed=7)
        for attempt in range(4):
            base = 0.5 * 2.0**attempt
            s = a.sleep_seconds(attempt, 99)
            assert s == b.sleep_seconds(attempt, 99)
            assert base <= s <= base * 1.5
        # Different seed, different jitter.
        c = RetryPolicy(retries=3, backoff=0.5, seed=8)
        assert c.sleep_seconds(0, 99) != a.sleep_seconds(0, 99)

    def test_zero_backoff_never_sleeps(self):
        assert RetryPolicy(backoff=0.0).sleep_seconds(5) == 0.0


class _GatedPeer(FilesystemPeer):
    """A peer whose data plane blocks until the test releases it."""

    def __init__(self, root):
        super().__init__(root)
        self.gate = threading.Event()

    def send_chunk(self, key, offset, data):
        self.gate.wait(timeout=30.0)
        super().send_chunk(key, offset, data)


class TestReplicationPolicy:
    def test_async_push_accounts_for_everything(self, store, peer):
        keys = [_seed_entry(store, position=i, payload=bytes([i]) * 50) for i in range(6)]
        policy = ReplicationPolicy(peer, retry=NO_BACKOFF)
        for key in keys:
            policy.submit(store, key)
        status = policy.close()
        assert status.submitted == 6
        assert status.pushed == 6
        assert status.lag == 0 and not status.degraded
        assert (
            status.pushed + status.present + status.gone
            + status.failed + status.superseded + status.pending
        ) == status.submitted

    def test_unreachable_peer_degrades_without_raising(self, store):
        key = _seed_entry(store)
        policy = ReplicationPolicy(
            FilesystemPeer("/proc/nonexistent/peer"),
            retry=RetryPolicy(retries=1, backoff=0.0),
        )
        policy.submit(store, key)  # must not raise
        status = policy.close()
        assert status.failed == 1
        assert status.degraded
        assert status.last_error

    def test_bounded_lag_supersedes_oldest(self, store, tmp_path):
        gated = _GatedPeer(tmp_path / "gated")
        keys = [
            _seed_entry(store, position=i, payload=bytes([i]) * 50)
            for i in range(6)
        ]
        policy = ReplicationPolicy(gated, retry=NO_BACKOFF, max_lag=2)
        try:
            for key in keys:
                policy.submit(store, key)
        finally:
            gated.gate.set()
        status = policy.close()
        assert status.submitted == 6
        assert status.superseded > 0
        assert status.degraded  # recorded, never silent
        assert status.pushed + status.superseded == 6

    def test_synchronous_mode_pushes_inline(self, store, peer):
        key = _seed_entry(store)
        policy = ReplicationPolicy(peer, retry=NO_BACKOFF, synchronous=True)
        policy.submit(store, key)
        assert peer.has(key, store.manifest(key).payload_sha256)
        assert policy.status().pushed == 1


class TestCheckpointManagerHook:
    def test_save_replicates_and_clear_retires(self, store, peer):
        policy = ReplicationPolicy(peer, retry=NO_BACKOFF, synchronous=True)
        manager = CheckpointManager(store, "jobR", replicate=policy)
        key = manager.save(3, {"position": 3, "session": {"kind": "t"}})
        assert peer.has(key, store.manifest(key).payload_sha256)
        # Idempotent re-save submits nothing new.
        manager.save(3, {"position": 3, "session": {"kind": "t"}})
        assert policy.status().submitted == 1
        manager.clear()
        assert peer.manifest(key) is None

    def test_no_policy_is_a_no_op(self, store, peer):
        manager = CheckpointManager(store, "jobR")
        manager.save(3, {"position": 3, "session": {"kind": "t"}})
        assert peer.keys() == []


class TestInflightJournal:
    def test_register_iter_clear_roundtrip(self, store):
        payload = {"spec": {"workload": "wc"}, "checkpoint_every": 2, "label": "wc_sp"}
        key = register_inflight(store, "jobJ", payload)
        assert key == inflight_store_key(store, "jobJ")
        assert list(iter_inflight(store)) == [("jobJ", payload)]
        register_inflight(store, "jobJ", payload)  # idempotent
        assert len(list(iter_inflight(store))) == 1
        clear_inflight(store, "jobJ")
        assert list(iter_inflight(store)) == []

    def test_journal_replicates_with_chains(self, store, peer, tmp_path):
        register_inflight(
            store, "jobJ",
            {"spec": {"workload": "wc"}, "checkpoint_every": 1, "label": "l"},
        )
        _seed_entry(store, job="jobJ")
        report = replicate_store(store, peer, retry=NO_BACKOFF)
        assert report.ok and len(report.moved) == 2
        other = ArtifactStore(tmp_path / "recovered")
        assert pull_fleet(peer, other, retry=NO_BACKOFF).ok
        assert [j for j, _ in iter_inflight(other)] == ["jobJ"]

    def test_pull_job_filters_by_job_key(self, store, peer, tmp_path):
        _seed_entry(store, job="jobA", position=1)
        _seed_entry(store, job="jobB", position=1)
        register_inflight(store, "jobA", {"spec": {}, "label": "a"})
        replicate_store(store, peer, retry=NO_BACKOFF)
        other = ArtifactStore(tmp_path / "other")
        report = pull_job(peer, other, "jobA", retry=NO_BACKOFF)
        assert report.ok
        pulled_kinds = sorted(m.kind for m in other.entries())
        assert pulled_kinds == ["checkpoint", INFLIGHT_KIND]


def _fleet_specs(n=2):
    frameworks = ("spark", "hadoop")
    return [
        RunSpec(
            "wc",
            frameworks[i % 2],
            scale=TEST_SCALE,
            seed=i // 2,
            simprof=TEST_SIMPROF_CONFIG,
        )
        for i in range(n)
    ]


class TestRestoreFleet:
    def test_empty_journal_returns_nothing(self, store):
        assert restore_fleet(store) == []

    def test_parallel_restore_byte_identical_to_serial(self, store, tmp_path):
        specs = _fleet_specs(2)
        references = {}
        for spec in specs:
            job = SimProf(spec.simprof).profile_stream(spec_stream(spec))
            references[checkpoint_job_key(spec.profile_params())] = (
                job.content_digest()
            )
        # Kill both jobs mid-stream to leave chains + journal entries.
        for i, spec in enumerate(specs):
            with pytest.raises(WorkerKilled):
                _compute_profile_stream(
                    spec, store, checkpoint_every=1, kill_after=15 + i
                )
        # Snapshot the inflight state so serial and parallel restores
        # start from identical stores.
        mirror = ArtifactStore(tmp_path / "mirror")
        peer = FilesystemPeer(tmp_path / "mirror")
        replicate_store(store, peer, retry=NO_BACKOFF)

        serial = restore_fleet(store, jobs=1)
        assert [r.job_key for r in serial] == sorted(references)
        # At least one job was past its first batch boundary when
        # killed, so the restore genuinely resumed mid-chain.
        assert any(r.resumed_from > 0 for r in serial)
        parallel = restore_fleet(mirror, jobs=2)
        assert [(r.job_key, r.digest) for r in serial] == [
            (r.job_key, r.digest) for r in parallel
        ]
        for r in serial:
            assert r.digest == references[r.job_key]
        # Both stores end fully retired: no chains, no journal.
        assert list(iter_inflight(store)) == []
        assert list(iter_inflight(mirror)) == []


class TestStageReplication:
    """Provenance manifests ride the disaster-recovery contract: a
    restored fleet answers ``cache graph --why`` without recomputing."""

    def _populate_stage_chain(self, store):
        from repro.runtime.runner import ExperimentRunner

        from tests.runtime.test_provenance import _chain

        runner = ExperimentRunner(store=store)
        runner.run_graph(_chain(bias=0))
        return runner.run_graph(_chain(bias=1))

    def test_stage_kind_is_replicated(self):
        from repro.runtime.replicate import REPLICATION_KINDS

        assert "stage" in REPLICATION_KINDS

    def test_stage_entries_survive_wipe_and_pull(self, store, peer, tmp_path):
        result = self._populate_stage_chain(store)
        report = replicate_store(store, peer, retry=NO_BACKOFF)
        assert report.ok
        # 4 stage entries (3 cold + 1 re-biased report), nothing else.
        assert sum(o.action == "pushed" for o in report.outcomes) == 4

        restored = ArtifactStore(tmp_path / "restored")
        assert pull_fleet(peer, restored, retry=NO_BACKOFF).ok

        # Lineage and recompute causes answer from manifests alone.
        from repro.runtime.provenance import explain_key, lineage

        walk = [
            (dist, m.provenance["node"])
            for dist, m in lineage(restored, result.key("total"))
        ]
        assert walk == [(0, "t/total"), (1, "t/scale"), (2, "t/seq")]
        why = explain_key(restored, result.key("total"))
        assert why["predecessor"] is not None
        assert {c["what"] for c in why["changed"]} == {"params"}

        # Values came over byte-identically too.
        for name in ("seq", "scale", "total"):
            key = result.key(name)
            assert restored.read_payload(key) == store.read_payload(key)
