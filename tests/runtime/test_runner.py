"""Tests for the batch experiment runner."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.pipeline import SimProfConfig
from repro.runtime import runner as runner_module
from repro.runtime.runner import (
    ExperimentRunner,
    RunnerError,
    RunSpec,
    resolve_jobs,
)
from repro.runtime.store import ArtifactStore

# Small, fast settings: grep finishes in about a second at this scale.
SMALL_SIMPROF = SimProfConfig(unit_size=10_000_000, snapshot_period=500_000)


def _spec(workload: str = "grep", framework: str = "spark", **kw) -> RunSpec:
    kw.setdefault("scale", 0.05)
    kw.setdefault("simprof", SMALL_SIMPROF)
    return RunSpec(workload=workload, framework=framework, **kw)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("SIMPROF_JOBS", "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("SIMPROF_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("SIMPROF_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_garbage_env_is_serial(self, monkeypatch):
        monkeypatch.setenv("SIMPROF_JOBS", "many")
        assert resolve_jobs(None) == 1

    def test_floor_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestKeys:
    def test_simprof_seed_changes_both_keys(self, tmp_path):
        """Regression: ``simprof.seed`` was missing from the old keys."""
        store = ArtifactStore(tmp_path)
        s0 = _spec()
        s1 = _spec(
            simprof=SimProfConfig(
                unit_size=10_000_000, snapshot_period=500_000, seed=1
            )
        )
        assert store.key_for("profile", s0.profile_params()) != store.key_for(
            "profile", s1.profile_params()
        )
        assert store.key_for("model", s0.model_params()) != store.key_for(
            "model", s1.model_params()
        )

    def test_phase_knobs_not_in_profile_key(self, tmp_path):
        """Clustering-only knobs must not fragment the profile cache."""
        store = ArtifactStore(tmp_path)
        s0 = _spec()
        s1 = _spec(
            simprof=SimProfConfig(
                unit_size=10_000_000, snapshot_period=500_000, top_k_methods=5
            )
        )
        assert store.key_for("profile", s0.profile_params()) == store.key_for(
            "profile", s1.profile_params()
        )
        assert store.key_for("model", s0.model_params()) != store.key_for(
            "model", s1.model_params()
        )

    def test_payload_roundtrip(self):
        spec = _spec(graph_name=None, params={"zipf_s": 1.2}, seed=3)
        clone = RunSpec.from_payload(spec.to_payload())
        assert clone == spec

    def test_payload_roundtrip_ignores_unknown_keys(self):
        """Forward compatibility: a payload written by a newer schema
        (extra top-level fields, unknown simprof knobs) still loads."""
        spec = _spec(seed=7)
        payload = spec.to_payload()
        payload["future_field"] = {"nested": True}
        payload["simprof"] = {
            **dict(payload["simprof"]),
            "future_knob": 99,
        }
        clone = RunSpec.from_payload(payload)
        assert clone == spec
        # The reconstructed spec derives the same cache keys as an
        # engine that never had the unknown knob — no silent aliasing.
        assert clone.profile_params() == spec.profile_params()

    def test_payload_missing_optionals_take_defaults(self):
        clone = RunSpec.from_payload({"workload": "wc", "framework": "spark"})
        assert clone.scale == 1.0
        assert clone.seed == 0
        assert clone.graph_name is None
        assert clone.params is None

    def test_dedupe_key_distinguishes_want_kinds(self, tmp_path):
        """The same spec dedupes separately per ``want``: a profile-only
        run must not satisfy a model request (and vice versa)."""
        runner = ExperimentRunner(store=ArtifactStore(tmp_path))
        spec = _spec()
        assert runner._dedupe_key(spec, "profile") != runner._dedupe_key(
            spec, "model"
        )

    def test_dedupe_key_collapses_equivalent_specs(self, tmp_path):
        """Specs differing only in model-layer knobs share a profile
        dedupe key (one workload simulation serves both) but get
        distinct model keys."""
        runner = ExperimentRunner(store=ArtifactStore(tmp_path))
        s0 = _spec()
        s1 = _spec(
            simprof=SimProfConfig(
                unit_size=10_000_000, snapshot_period=500_000, top_k_methods=5
            )
        )
        assert runner._dedupe_key(s0, "profile") == runner._dedupe_key(
            s1, "profile"
        )
        assert runner._dedupe_key(s0, "model") != runner._dedupe_key(
            s1, "model"
        )


class TestRunnerSerial:
    def test_run_returns_input_order_and_dedupes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        specs = [_spec(), _spec("wc"), _spec()]  # first == third
        results = ExperimentRunner(store, jobs=1).run(specs, want="profile")
        assert [r.spec.workload for r in results] == ["grep", "wc", "grep"]
        assert results[0].profile_key == results[2].profile_key
        # Two unique computations, not three.
        assert store.stats.misses == 2
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 2

    def test_want_model_produces_both_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        [result] = ExperimentRunner(store, jobs=1).run([_spec()], want="model")
        assert result.model is not None
        assert result.model.k >= 1
        assert result.job.n_units > 0
        assert len(list(tmp_path.glob("profile-*.pkl"))) == 1
        assert len(list(tmp_path.glob("model-*.pkl"))) == 1

    def test_cached_flag(self, tmp_path):
        store = ArtifactStore(tmp_path)
        runner = ExperimentRunner(store, jobs=1)
        [first] = runner.run([_spec()], want="profile")
        [second] = runner.run([_spec()], want="profile")
        assert not first.cached
        assert second.cached

    def test_invalid_want_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentRunner(ArtifactStore(tmp_path)).run([], want="banana")

    def test_bounded_retries_then_success(self, tmp_path, monkeypatch):
        real = runner_module._materialise
        failures = {"left": 2}

        def flaky(spec, want, store, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient worker failure")
            return real(spec, want, store, **kwargs)

        monkeypatch.setattr(runner_module, "_materialise", flaky)
        store = ArtifactStore(tmp_path)
        [result] = ExperimentRunner(store, jobs=1, retries=2).run(
            [_spec()], want="profile"
        )
        assert result.job.n_units > 0
        assert failures["left"] == 0

    def test_retries_exhausted_raise_runner_error(self, tmp_path, monkeypatch):
        calls = []

        def always_fails(spec, want, store, **kwargs):
            calls.append(1)
            raise OSError("persistent failure")

        monkeypatch.setattr(runner_module, "_materialise", always_fails)
        with pytest.raises(RunnerError, match="after 2 attempts"):
            ExperimentRunner(ArtifactStore(tmp_path), jobs=1, retries=1).run(
                [_spec()], want="profile"
            )
        assert len(calls) == 2


@pytest.mark.slow
class TestRunnerParallel:
    def test_parallel_matches_serial_bytes(self, tmp_path, monkeypatch):
        """SIMPROF_JOBS fan-out must be invisible in the artifacts."""
        specs = [_spec("grep", "spark"), _spec("grep", "hadoop")]

        serial_root = tmp_path / "serial"
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(serial_root))
        serial = ExperimentRunner(ArtifactStore(serial_root), jobs=1).run(
            specs, want="model"
        )

        parallel_root = tmp_path / "parallel"
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(parallel_root))
        parallel = ExperimentRunner(ArtifactStore(parallel_root), jobs=2).run(
            specs, want="model"
        )

        for s_res, p_res in zip(serial, parallel):
            assert s_res.profile_key == p_res.profile_key
            assert s_res.model_key == p_res.model_key
            np.testing.assert_array_equal(
                s_res.job.profile.cpi(), p_res.job.profile.cpi()
            )
            np.testing.assert_array_equal(
                s_res.model.assignments, p_res.model.assignments
            )
        for pkl in sorted(serial_root.glob("*.pkl")):
            assert (
                pkl.read_bytes() == (parallel_root / pkl.name).read_bytes()
            ), f"artifact {pkl.name} differs between serial and parallel runs"

    def test_parallel_failure_surfaces_as_runner_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
        bad = [_spec("no-such-workload"), _spec("also-missing")]
        with pytest.raises(RunnerError):
            ExperimentRunner(
                ArtifactStore(tmp_path), jobs=2, retries=0
            ).run(bad, want="profile")


def _crash_worker(payload):
    """Pool entry that dies like an OOM-killed worker (no exception path)."""
    os._exit(1)


@pytest.mark.slow
class TestBrokenPoolDegradation:
    def test_broken_pool_degrades_inline_byte_identical(
        self, tmp_path, monkeypatch
    ):
        """A hard worker death must finish in-process, bytes unchanged."""
        specs = [_spec("grep", "spark"), _spec("grep", "hadoop")]

        serial_root = tmp_path / "serial"
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(serial_root))
        serial = ExperimentRunner(ArtifactStore(serial_root), jobs=1).run(
            specs, want="profile"
        )

        broken_root = tmp_path / "broken"
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(broken_root))
        monkeypatch.setattr(runner_module, "_pool_worker", _crash_worker)
        degraded = ExperimentRunner(ArtifactStore(broken_root), jobs=2).run(
            specs, want="profile"
        )

        for s_res, d_res in zip(serial, degraded):
            assert s_res.profile_key == d_res.profile_key
            np.testing.assert_array_equal(
                s_res.job.profile.cpi(), d_res.job.profile.cpi()
            )
        pkls = sorted(serial_root.glob("*.pkl"))
        assert pkls, "serial run produced no artifacts"
        for pkl in pkls:
            assert (
                pkl.read_bytes() == (broken_root / pkl.name).read_bytes()
            ), f"artifact {pkl.name} differs after broken-pool degradation"


class TestBackoff:
    def _capture_sleeps(self, tmp_path, monkeypatch, seed=0):
        sleeps: list[float] = []
        monkeypatch.setattr(
            runner_module.time, "sleep", lambda s: sleeps.append(s)
        )

        def always_fails(spec, want, store, **kwargs):
            raise OSError("persistent failure")

        monkeypatch.setattr(runner_module, "_materialise", always_fails)
        with pytest.raises(RunnerError, match="after 3 attempts"):
            ExperimentRunner(
                ArtifactStore(tmp_path), jobs=1, retries=2, backoff=0.5,
                seed=seed,
            ).run([_spec()], want="profile")
        return sleeps

    def test_exponential_backoff_with_bounded_jitter(
        self, tmp_path, monkeypatch
    ):
        # Jittered exponential backoff: each sleep lands in
        # [base, 1.5 * base] where base doubles per attempt.
        sleeps = self._capture_sleeps(tmp_path, monkeypatch)
        assert len(sleeps) == 2
        for attempt, s in enumerate(sleeps):
            base = 0.5 * 2.0**attempt
            assert base <= s <= base * 1.5

    def test_backoff_jitter_is_seeded(self, tmp_path, monkeypatch):
        # Same runner seed → identical sleep schedule (replayable);
        # different seed → desynchronised jitter.
        a = self._capture_sleeps(tmp_path / "a", monkeypatch, seed=3)
        b = self._capture_sleeps(tmp_path / "b", monkeypatch, seed=3)
        c = self._capture_sleeps(tmp_path / "c", monkeypatch, seed=4)
        assert a == b
        assert a != c

    def test_zero_backoff_never_sleeps(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            runner_module.time,
            "sleep",
            lambda s: pytest.fail("sleep called with backoff=0"),
        )

        def always_fails(spec, want, store, **kwargs):
            raise OSError("persistent failure")

        monkeypatch.setattr(runner_module, "_materialise", always_fails)
        with pytest.raises(RunnerError):
            ExperimentRunner(
                ArtifactStore(tmp_path), jobs=1, retries=1
            ).run([_spec()], want="profile")

    def test_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="timeout"):
            ExperimentRunner(ArtifactStore(tmp_path), timeout=0)
        with pytest.raises(ValueError, match="timeout"):
            ExperimentRunner(ArtifactStore(tmp_path), timeout=-1.0)


class TestCheckpoint:
    def test_journal_class_roundtrip(self, tmp_path):
        path = tmp_path / "ck.json"
        journal = runner_module._Checkpoint(path)
        journal.mark("k1")
        journal.mark("k2")
        journal.mark("k1")  # idempotent
        assert json.loads(path.read_text())["done"] == ["k1", "k2"]
        assert runner_module._Checkpoint(path).done == {"k1", "k2"}

    def test_corrupt_journal_treated_as_empty(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json", encoding="utf-8")
        assert runner_module._Checkpoint(path).done == set()

    def test_run_journals_completed_keys(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        ck = tmp_path / "ck.json"
        runner = ExperimentRunner(store, jobs=1, checkpoint=ck)
        [result] = runner.run([_spec()], want="profile")
        done = json.loads(ck.read_text())["done"]
        assert done == [result.profile_key]

    def test_resume_after_store_sweep_heals(self, tmp_path):
        """Checkpointed keys the store lost are recomputed lazily."""
        root = tmp_path / "store"
        ck = tmp_path / "ck.json"
        store = ArtifactStore(root)
        [first] = ExperimentRunner(store, jobs=1, checkpoint=ck).run(
            [_spec()], want="profile"
        )
        for pkl in root.glob("*.pkl"):
            pkl.unlink()
        for manifest in root.glob("*.json"):
            manifest.unlink()

        fresh = ArtifactStore(root)
        [second] = ExperimentRunner(fresh, jobs=1, checkpoint=ck).run(
            [_spec()], want="profile"
        )
        assert second.profile_key == first.profile_key
        assert second.job.n_units == first.job.n_units

    def test_corrupt_checkpoint_does_not_break_run(self, tmp_path):
        ck = tmp_path / "ck.json"
        ck.write_text("garbage!!", encoding="utf-8")
        store = ArtifactStore(tmp_path / "store")
        [result] = ExperimentRunner(store, jobs=1, checkpoint=ck).run(
            [_spec()], want="profile"
        )
        assert result.job.n_units > 0
        assert json.loads(ck.read_text())["done"] == [result.profile_key]


# -- map_tasks ----------------------------------------------------------------

_MAP_STATE: dict[str, int] = {}


def _double(x: int) -> int:
    return 2 * x


def _scaled(x: int) -> int:
    return _MAP_STATE["factor"] * x


def _map_init(factor: int) -> None:
    _MAP_STATE["factor"] = factor


def _flaky(x: int) -> int:
    _MAP_STATE.setdefault("calls", 0)
    _MAP_STATE["calls"] += 1
    if _MAP_STATE["calls"] < 3:
        raise RuntimeError("transient")
    return x


def _always_fails(x: int) -> int:
    raise RuntimeError("permanent")


class TestMapTasks:
    def test_serial_preserves_order(self):
        assert runner_module.map_tasks(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_preserves_order(self):
        out = runner_module.map_tasks(_double, list(range(8)), jobs=2)
        assert out == [2 * i for i in range(8)]

    def test_serial_and_parallel_agree(self):
        items = list(range(6))
        assert runner_module.map_tasks(_double, items, jobs=1) == (
            runner_module.map_tasks(_double, items, jobs=3)
        )

    def test_initializer_runs_serially(self):
        _MAP_STATE.clear()
        out = runner_module.map_tasks(
            _scaled, [1, 2, 3], jobs=1, initializer=_map_init, initargs=(10,)
        )
        assert out == [10, 20, 30]

    def test_initializer_runs_in_workers(self):
        out = runner_module.map_tasks(
            _scaled, [1, 2, 3], jobs=2, initializer=_map_init, initargs=(7,)
        )
        assert out == [7, 14, 21]

    def test_serial_retries_transient_failures(self):
        _MAP_STATE.clear()
        assert runner_module.map_tasks(_flaky, [42], jobs=1, retries=2) == [42]
        assert _MAP_STATE["calls"] == 3

    def test_exhausted_retries_raise_runner_error(self):
        with pytest.raises(RunnerError, match="permanent"):
            runner_module.map_tasks(_always_fails, [1], jobs=1, retries=1)

    def test_parallel_failure_raises_runner_error(self):
        with pytest.raises(RunnerError, match="permanent"):
            runner_module.map_tasks(
                _always_fails, [1, 2], jobs=2, retries=0
            )

    def test_empty_items(self):
        assert runner_module.map_tasks(_double, [], jobs=4) == []

    def test_runner_method_uses_configured_jobs(self, tmp_path):
        runner = ExperimentRunner(ArtifactStore(tmp_path), jobs=1)
        assert runner.map_tasks(_double, [5]) == [10]


class TestStreamingCheckpoint:
    """The runner's checkpoint_every path: resumable cache-miss profiles."""

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            ExperimentRunner(ArtifactStore(tmp_path), checkpoint_every=0)

    def test_streaming_compute_matches_batch(self, tmp_path):
        spec = _spec()
        batch = ExperimentRunner(
            ArtifactStore(tmp_path / "batch"), jobs=1
        ).run([spec], want="profile")[0]
        streaming = ExperimentRunner(
            ArtifactStore(tmp_path / "stream"), jobs=1, checkpoint_every=2
        ).run([spec], want="profile")[0]
        assert (
            streaming.job.content_digest() == batch.job.content_digest()
        )
        assert streaming.profile_key == batch.profile_key

    def test_killed_worker_resumes_bit_identically(self, tmp_path):
        from repro.runtime.checkpoint import (
            CheckpointManager,
            WorkerKilled,
            checkpoint_job_key,
        )

        spec = _spec()
        want = ExperimentRunner(
            ArtifactStore(tmp_path / "ref"), jobs=1
        ).run([spec], want="profile")[0].job.content_digest()

        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(WorkerKilled):
            runner_module._compute_profile_stream(
                spec, store, checkpoint_every=1, kill_after=14
            )
        manager = CheckpointManager(
            store, checkpoint_job_key(spec.profile_params())
        )
        assert manager.latest() is not None

        # The "replacement worker": a plain run over the same store
        # resumes from the dead worker's snapshots and retires them.
        [result] = ExperimentRunner(store, jobs=1, checkpoint_every=1).run(
            [spec], want="profile"
        )
        assert result.job.content_digest() == want
        assert manager.latest() is None

    def test_journal_tracks_inflight_jobs(self, tmp_path):
        from repro.runtime.checkpoint import checkpoint_job_key

        spec = _spec()
        ck = tmp_path / "ck.json"
        store = ArtifactStore(tmp_path / "store")
        runner = ExperimentRunner(
            store, jobs=1, checkpoint=ck, checkpoint_every=2
        )
        [result] = runner.run([spec], want="profile")
        data = json.loads(ck.read_text())
        # Completion retires the inflight entry into "done".
        assert data["done"] == [result.profile_key]
        assert "inflight" not in data

    def test_mark_inflight_roundtrip(self, tmp_path):
        path = tmp_path / "ck.json"
        journal = runner_module._Checkpoint(path)
        journal.mark_inflight("k1", {"job_key": "abc", "label": "wc_sp"})
        reloaded = runner_module._Checkpoint(path)
        assert reloaded.inflight == {"k1": {"job_key": "abc", "label": "wc_sp"}}
        journal.mark("k1")
        assert runner_module._Checkpoint(path).inflight == {}
