"""Checkpoint chains and kill/resume bit-identity.

The acceptance property of the checkpoint layer: a streaming job killed
mid-stream and resumed from its latest checkpoint — possibly on another
worker, against a freshly recreated stream — produces a result
byte-identical (``content_digest``) to the uninterrupted run.  Checked
across all three stream substrates: wc/spark, wc/hadoop, and
``trace_to_stream`` over a recorded trace.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import SimProf
from repro.core.profiler import ProfilerSession
from repro.jvm.stream import trace_to_stream
from repro.runtime.checkpoint import (
    CHECKPOINT_KIND,
    CheckpointManager,
    CheckpointPolicy,
    WorkerKilled,
    checkpoint_job_key,
    drive_session,
    iter_checkpoint_manifests,
    verify_checkpoints,
)
from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    decode_state,
    encode_state,
    state_digest,
)
from repro.runtime.store import ArtifactStore
from repro.workloads import run_workload_stream
from tests.conftest import TEST_SCALE, TEST_SIMPROF_CONFIG


def _session(stream):
    return ProfilerSession(
        TEST_SIMPROF_CONFIG.profiler_config(), stream, collect=True
    )


def _stream(framework):
    return run_workload_stream("wc", framework, scale=TEST_SCALE, seed=0)


class TestJobKey:
    def test_stable_and_order_insensitive(self):
        a = checkpoint_job_key({"workload": "wc", "scale": 0.1})
        b = checkpoint_job_key({"scale": 0.1, "workload": "wc"})
        assert a == b and len(a) == 20

    def test_distinct_jobs_distinct_keys(self):
        assert checkpoint_job_key({"seed": 0}) != checkpoint_job_key({"seed": 1})


class TestManager:
    def test_save_latest_clear(self, tmp_path):
        manager = CheckpointManager(ArtifactStore(tmp_path), "job-a")
        manager.save(5, {"position": 5, "x": 1})
        manager.save(9, {"position": 9, "x": 2})
        position, state = manager.latest()
        assert position == 9 and state["x"] == 2
        assert [int(m.params["position"]) for m in manager.manifests()] == [5, 9]
        assert manager.clear() == 2
        assert manager.latest() is None

    def test_save_is_idempotent(self, tmp_path):
        manager = CheckpointManager(ArtifactStore(tmp_path), "job-a")
        key = manager.save(5, {"position": 5})
        assert manager.save(5, {"position": 5}) == key
        assert len(manager.manifests()) == 1

    def test_jobs_are_isolated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = CheckpointManager(store, "job-a")
        b = CheckpointManager(store, "job-b")
        a.save(3, {"position": 3})
        b.save(7, {"position": 7})
        assert a.latest()[0] == 3
        assert b.latest()[0] == 7
        assert a.clear() == 1
        assert b.latest()[0] == 7
        assert sum(1 for _ in iter_checkpoint_manifests(store)) == 1
        assert next(iter_checkpoint_manifests(store)).kind == CHECKPOINT_KIND


class TestPolicy:
    def test_validation(self, tmp_path):
        manager = CheckpointManager(ArtifactStore(tmp_path), "job")
        with pytest.raises(ValueError):
            CheckpointPolicy(manager, every=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(manager, kill_after=-1)


class TestDriveSession:
    def test_uninterrupted_matches_plain_consume(self, tmp_path):
        manager = CheckpointManager(ArtifactStore(tmp_path), "job")
        policy = CheckpointPolicy(manager, every=1)
        stream = _stream("spark")
        session = _session(stream)
        drive_session(session, stream, policy)
        checkpointed = session.result()

        plain_stream = _stream("spark")
        plain = _session(plain_stream)
        for event in plain_stream:
            plain.feed(event)
        plain.finish()
        assert checkpointed.content_digest() == plain.result().content_digest()
        assert len(manager.manifests()) > 0

    @pytest.mark.parametrize(
        "substrate", ["wc/spark", "wc/hadoop", "trace_to_stream"]
    )
    @pytest.mark.parametrize("kill_after", [6, 13])
    def test_kill_and_resume_bit_identical(
        self, tmp_path, substrate, kill_after, wc_spark_trace
    ):
        """Checkpoint at every batch; kill; resume; compare digests."""
        if substrate == "trace_to_stream":
            def make_stream():
                return trace_to_stream(wc_spark_trace, batch_size=256)
        else:
            framework = substrate.split("/")[1]

            def make_stream():
                return _stream(framework)

        reference_stream = make_stream()
        reference = _session(reference_stream)
        for event in reference_stream:
            reference.feed(event)
        reference.finish()
        want = reference.result().content_digest()

        manager = CheckpointManager(ArtifactStore(tmp_path), "job")
        stream = make_stream()
        session = _session(stream)
        with pytest.raises(WorkerKilled):
            drive_session(
                session,
                stream,
                CheckpointPolicy(manager, every=1, kill_after=kill_after),
            )
        # A kill that lands before the first batch leaves no checkpoint
        # (nothing worth saving yet); the resume then simply starts over.
        saved = manager.manifests()
        assert all(int(m.params["position"]) <= kill_after for m in saved)

        # The killed session object is dead; a fresh worker resumes.
        resumed_stream = make_stream()
        resumed = _session(resumed_stream)
        drive_session(
            resumed, resumed_stream, CheckpointPolicy(manager, every=1)
        )
        assert resumed.result().content_digest() == want

    def test_resume_skips_kill_already_passed(self, tmp_path):
        manager = CheckpointManager(ArtifactStore(tmp_path), "job")
        stream = _stream("spark")
        session = _session(stream)
        with pytest.raises(WorkerKilled):
            drive_session(
                session,
                stream,
                CheckpointPolicy(manager, every=1, kill_after=10),
            )
        resumed_from = manager.latest()[0]
        resumed_stream = _stream("spark")
        resumed = _session(resumed_stream)
        # kill_after at a position the resume fast-forwards over: the
        # kill must not re-fire, the run completes.
        drive_session(
            resumed,
            resumed_stream,
            CheckpointPolicy(manager, every=1, kill_after=resumed_from),
        )
        assert resumed.result() is not None

    def test_coarse_interval_checkpoints_less(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fine = CheckpointManager(store, "fine")
        coarse = CheckpointManager(store, "coarse")
        for manager, every in ((fine, 1), (coarse, 5)):
            stream = _stream("spark")
            session = _session(stream)
            drive_session(session, stream, CheckpointPolicy(manager, every=every))
        assert len(coarse.manifests()) < len(fine.manifests())

    def test_foreign_checkpoint_rejected_on_short_stream(self, tmp_path):
        manager = CheckpointManager(ArtifactStore(tmp_path), "job")
        stream = _stream("spark")
        session = _session(stream)
        n_events = drive_session(
            session, stream, CheckpointPolicy(manager, every=1, resume=False)
        )
        manager.save(n_events + 1000, {"position": n_events + 1000,
                                       "session": session.snapshot()})
        fresh_stream = _stream("spark")
        fresh = _session(fresh_stream)
        with pytest.raises(ValueError, match="fast-forwarding"):
            drive_session(
                fresh, fresh_stream, CheckpointPolicy(manager, every=1)
            )


class TestSimProfCheckpointEntryPoints:
    def test_profile_stream_resumes_through_pipeline(self, tmp_path):
        tool = SimProf(TEST_SIMPROF_CONFIG)
        want = tool.profile_stream(_stream("spark")).content_digest()

        manager = CheckpointManager(ArtifactStore(tmp_path), "job")
        with pytest.raises(WorkerKilled):
            tool.profile_stream(
                _stream("spark"),
                checkpoint=CheckpointPolicy(manager, every=1, kill_after=12),
            )
        assert manager.latest() is not None
        resumed = tool.profile_stream(
            _stream("spark"), checkpoint=CheckpointPolicy(manager, every=1)
        )
        assert resumed.content_digest() == want


class TestChainCorruption:
    """Damaged chain entries are quarantined, never resumed (satellite 3)."""

    def _chain(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manager = CheckpointManager(store, "job-c")
        manager.save(5, {"position": 5, "session": {"x": 1}})
        key9 = manager.save(9, {"position": 9, "session": {"x": 2}})
        return store, manager, key9

    def test_truncated_payload_falls_back_to_previous(self, tmp_path):
        store, manager, key9 = self._chain(tmp_path)
        # The newest checkpoint's payload is cut mid-write: the bytes
        # no longer match the manifest digest.
        path = store.root / f"{key9}.pkl"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        store.clear_memory()  # a replacement worker reads cold
        position, state = manager.latest()
        assert position == 5 and state["session"] == {"x": 1}
        # The damaged entry was parked for autopsy, not deleted.
        assert (store.root / "quarantine" / f"{key9}.pkl").exists()

    def test_snapshot_cut_before_store_falls_back(self, tmp_path):
        """A snapshot truncated *before* storage: the byte digest
        faithfully records garbage, so only snapshot-level validation
        (SnapshotError on decode) can catch it."""
        store, manager, key9 = self._chain(tmp_path)
        torn = encode_state({"position": 9, "session": {"x": 2}})[:-7]
        with pytest.raises(SnapshotError):
            decode_state(torn)
        store.put(
            key9,
            torn,
            kind=CHECKPOINT_KIND,
            params={
                "job": "job-c",
                "position": 9,
                "snapshot": SNAPSHOT_VERSION,
                "state_digest": state_digest(torn),
            },
        )
        store.clear_memory()
        position, state = manager.latest()
        assert position == 5 and state["session"] == {"x": 1}
        assert (store.root / "quarantine" / f"{key9}.pkl").exists()

    def test_wrong_state_digest_falls_back(self, tmp_path):
        store, manager, key9 = self._chain(tmp_path)
        blob = encode_state({"position": 9, "session": {"x": 99}})
        manifest = store.manifest(key9)
        store.put(
            key9, blob, kind=CHECKPOINT_KIND, params=manifest.params
        )  # digest param still names the original state
        store.clear_memory()
        position, state = manager.latest()
        assert position == 5 and state["session"] == {"x": 1}

    def test_fully_corrupt_chain_resumes_from_scratch(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manager = CheckpointManager(store, "job-d")
        key = manager.save(3, {"position": 3, "session": {"x": 1}})
        path = store.root / f"{key}.pkl"
        path.write_bytes(b"\x00" * 10)
        store.clear_memory()
        assert manager.latest() is None


class TestVerifyCheckpoints:
    def test_deep_verify_classifies_all_three_ways(self, tmp_path):
        store = ArtifactStore(tmp_path)
        manager = CheckpointManager(store, "job-v")
        good = manager.save(2, {"position": 2, "session": {"x": 1}})
        bad_bytes = manager.save(4, {"position": 4, "session": {"x": 2}})
        bad_snap = manager.save(6, {"position": 6, "session": {"x": 3}})
        unverified = manager.save(8, {"position": 8, "session": {"x": 4}})
        # bad_bytes: payload rots on disk after storage.
        path = store.root / f"{bad_bytes}.pkl"
        path.write_bytes(path.read_bytes()[:-4] + b"ROT!")
        # bad_snap: digest-consistent garbage (torn before storage).
        torn = encode_state({"position": 6, "session": {"x": 3}})[:-5]
        store.put(
            bad_snap,
            torn,
            kind=CHECKPOINT_KIND,
            params={
                "job": "job-v",
                "position": 6,
                "snapshot": SNAPSHOT_VERSION,
                "state_digest": state_digest(torn),
            },
        )
        # unverified: a pre-integrity-era entry with no recorded digest.
        manifest = store.manifest(unverified)
        manifest.payload_sha256 = ""
        (store.root / f"{unverified}.json").write_text(manifest.to_json())

        report = verify_checkpoints(store)
        assert report["ok"] == [good]
        assert sorted(report["corrupt"]) == sorted([bad_bytes, bad_snap])
        assert report["unverified"] == [unverified]
        # Dry verify quarantines nothing.
        assert (store.root / f"{bad_bytes}.pkl").exists()

        repaired = verify_checkpoints(store, repair=True)
        assert sorted(repaired["corrupt"]) == sorted([bad_bytes, bad_snap])
        assert not (store.root / f"{bad_bytes}.pkl").exists()
        assert (store.root / "quarantine" / f"{bad_bytes}.pkl").exists()
        # The chain now resumes from the newest healthy entry.
        store.clear_memory()
        position, _state = manager.latest()
        assert position in (2, 8)

    def test_non_checkpoint_entries_ignored(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(
            store.key_for("profile", {"a": 1}), {"v": 1},
            kind="profile", params={"a": 1},
        )
        assert verify_checkpoints(store) == {
            "ok": [], "corrupt": [], "unverified": [],
        }
