"""Tests for the ``simprof cache``/``simprof stats`` subcommands."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.pipeline import SimProfConfig
from repro.experiments.common import ExperimentConfig, get_profile
from repro.runtime.store import reset_default_stores

SMALL = ExperimentConfig(
    scale=0.05,
    n_sampling_draws=3,
    simprof=SimProfConfig(unit_size=10_000_000, snapshot_period=500_000),
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
    reset_default_stores()
    yield
    reset_default_stores()


@pytest.fixture()
def populated(tmp_path):
    get_profile("grep", "spark", SMALL)
    return tmp_path


class TestCacheLs:
    def test_lists_entries(self, populated, capsys):
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "profile-" in out
        assert str(populated) in out

    def test_kind_filter(self, populated, capsys):
        assert main(["cache", "ls", "--kind", "model"]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out


class TestCacheInfo:
    def test_shows_manifest(self, populated, capsys):
        key = next(populated.glob("profile-*.pkl")).stem
        assert main(["cache", "info", key]) == 0
        out = capsys.readouterr().out
        assert '"kind": "profile"' in out
        assert '"workload": "grep"' in out

    def test_unknown_key_fails(self, capsys):
        assert main(["cache", "info", "profile-v0-nope"]) == 1
        assert "no manifest" in capsys.readouterr().err


class TestCacheGC:
    def test_requires_a_selector(self, capsys):
        assert main(["cache", "gc"]) == 2
        assert "--stale" in capsys.readouterr().err

    def test_dry_run_keeps_entries(self, populated, capsys):
        assert main(["cache", "gc", "--all", "--dry-run"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert len(list(populated.glob("*.pkl"))) == 1

    def test_gc_all_removes(self, populated, capsys):
        assert main(["cache", "gc", "--all"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(populated.glob("*.pkl"))


class TestCacheVerify:
    def test_clean_store_passes(self, populated, capsys):
        assert main(["cache", "verify"]) == 0
        out = capsys.readouterr().out
        assert "1 ok, 0 corrupt, 0 unverified" in out

    def test_corrupt_payload_detected(self, populated, capsys):
        next(populated.glob("profile-*.pkl")).write_bytes(b"bit rot")
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "0 ok, 1 corrupt, 0 unverified" in out

    def test_repair_quarantines(self, populated, capsys):
        next(populated.glob("profile-*.pkl")).write_bytes(b"bit rot")
        assert main(["cache", "verify", "--repair"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert not list(populated.glob("profile-*.pkl"))
        assert list((populated / "quarantine").glob("profile-*.pkl"))
        # The store is clean again after the repair.
        assert main(["cache", "verify"]) == 0


class TestCorruptManifestTolerance:
    """``ls`` and ``stats`` must warn, not traceback (regression)."""

    def _corrupt_manifest(self, root):
        next(root.glob("profile-*.json")).write_text("{torn write")

    def test_cache_ls_warns_and_continues(self, populated, capsys):
        self._corrupt_manifest(populated)
        assert main(["cache", "ls"]) == 0
        captured = capsys.readouterr()
        assert "profile-" in captured.out
        assert "1 corrupt manifest(s)" in captured.err

    def test_stats_warns_and_continues(self, populated, capsys):
        self._corrupt_manifest(populated)
        assert main(["stats"]) == 0
        captured = capsys.readouterr()
        assert "compute invested" in captured.out
        assert "1 corrupt manifest(s)" in captured.err

    def test_cache_info_reports_status(self, populated, capsys):
        self._corrupt_manifest(populated)
        key = next(populated.glob("profile-*.pkl")).stem
        assert main(["cache", "info", key]) == 1
        assert "corrupt" in capsys.readouterr().err


class TestStats:
    def test_aggregates_stage_timings(self, populated, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "trace-gen" in out
        assert "profiling" in out
        assert "compute invested" in out


def _run_synthetic_graph(bias: int = 0):
    """Materialise a tiny stage chain into the default (env-isolated)
    store; returns the GraphResult."""
    from repro.runtime.runner import ExperimentRunner

    from tests.runtime.test_provenance import _chain

    graph = _chain(bias=bias)
    return ExperimentRunner().run_graph(graph)


class TestCacheGraph:
    def test_table_lists_nodes_by_depth(self, capsys):
        _run_synthetic_graph()
        assert main(["cache", "graph"]) == 0
        out = capsys.readouterr().out
        assert "t/seq" in out and "t/scale" in out and "t/total" in out
        # Depth order: the trace-gen root precedes the report sink.
        assert out.index("t/seq") < out.index("t/total")

    def test_why_explains_a_recompute(self, capsys):
        _run_synthetic_graph(bias=0)
        result = _run_synthetic_graph(bias=1)
        assert main(["cache", "graph", "--why", result.key("total")]) == 0
        out = capsys.readouterr().out
        assert "t/total" in out
        assert "changed: params" in out

    def test_why_unknown_key_fails(self, capsys):
        assert main(["cache", "graph", "--why", "stage-v0-nope"]) == 1
        assert "no provenance" in capsys.readouterr().err

    def test_invalidated_clean_tree(self, capsys):
        _run_synthetic_graph()
        assert main(["cache", "graph", "--invalidated"]) == 0
        assert "0 stage artifact(s) with stale code" in capsys.readouterr().out

    def test_ls_shows_lineage_depth(self, capsys):
        _run_synthetic_graph()
        assert main(["cache", "ls", "--kind", "stage"]) == 0
        out = capsys.readouterr().out
        assert "depth" in out
        assert "stage-" in out


class TestCacheStatsCommand:
    def test_reports_provenance_counters(self, capsys):
        _run_synthetic_graph(bias=0)
        _run_synthetic_graph(bias=2)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "4 stage artifact(s)" in out
        assert "max lineage depth 2" in out
        assert "run_graph sessions: 2" in out
        assert "2 hit(s) / 4 miss(es)" in out
        assert "params" in out  # miss-cause breakdown

    def test_empty_store(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "0 stage artifact(s)" in out
