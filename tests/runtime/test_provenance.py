"""Tests for the stage-level provenance plane.

Graph mechanics (planning, miss causes, incremental reuse, lineage,
introspection) run against tiny synthetic stage functions defined in
this module — no workload simulation involved — plus a fake ``repro``
source tree under ``tmp_path`` for code-fingerprint tests.  One
integration test exercises the real trace-gen→profile chain through
``ExperimentRunner.run_graph`` and the publish-alias interop with the
classic per-spec cache.
"""

from __future__ import annotations

import pytest

from repro.runtime.provenance import (
    CANONICAL_STAGES,
    CodeIndex,
    StageGraph,
    execute_payload,
    explain_key,
    fn_ref,
    invalidated_entries,
    lineage,
    plan_graph,
    provenance_stats,
    record_graph_run,
    resolve_stage_fn,
    stage_fn,
    stage_spec,
    worker_payload,
)
from repro.runtime.runner import ExperimentRunner
from repro.runtime.store import ArtifactStore

# -- synthetic stage functions (module-level: workers re-resolve them) --------


@stage_fn("trace-gen")
def stage_seq(inputs, params):
    return list(range(params["n"]))


@stage_fn("profile")
def stage_scale(inputs, params):
    return [x * params["k"] for x in inputs["xs"]]


@stage_fn("report")
def stage_total(inputs, params):
    return sum(inputs["ys"]) + params.get("bias", 0)


def plain_fn(inputs, params):  # not decorated
    return None


def _chain(n: int = 4, k: int = 3, bias: int = 0) -> StageGraph:
    graph = StageGraph("t")
    a = graph.node("seq", stage_seq, params={"n": n})
    b = graph.node("scale", stage_scale, params={"k": k}, deps={"xs": a})
    graph.node("total", stage_total, params={"bias": bias}, deps={"ys": b})
    return graph


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# -- declarations -------------------------------------------------------------


class TestStageDecl:
    def test_stage_spec_round_trip(self):
        spec = stage_spec(stage_seq)
        assert spec["stage"] == "trace-gen"
        assert spec["reads"] == ()
        assert spec["stage"] in CANONICAL_STAGES

    def test_undecorated_fn_rejected(self):
        with pytest.raises(TypeError, match="not a stage function"):
            stage_spec(plain_fn)

    def test_fn_ref_resolves_back(self):
        ref = fn_ref(stage_scale)
        assert ref.endswith(":stage_scale")
        assert resolve_stage_fn(ref) is stage_scale


# -- graph construction -------------------------------------------------------


class TestStageGraph:
    def test_duplicate_node_rejected(self):
        graph = StageGraph()
        graph.node("a", stage_seq, params={"n": 1})
        with pytest.raises(ValueError, match="duplicate stage node"):
            graph.node("a", stage_seq, params={"n": 2})

    def test_unknown_dep_rejected(self):
        graph = StageGraph()
        with pytest.raises(ValueError, match="unknown node"):
            graph.node("b", stage_scale, deps={"xs": "missing"})

    def test_undecorated_fn_rejected_at_add(self):
        graph = StageGraph()
        with pytest.raises(TypeError, match="not a stage function"):
            graph.node("a", plain_fn)

    def test_topo_orders_deps_first(self):
        graph = _chain()
        order = [n.name for n in graph.topo()]
        assert order.index("seq") < order.index("scale") < order.index(
            "total"
        )

    def test_topo_cycle_detected(self):
        graph = _chain()
        # The builder API cannot express a cycle (deps must pre-exist),
        # so corrupt the structure directly, as a bad deserialise would.
        graph.nodes["seq"].deps["xs"] = "total"
        with pytest.raises(ValueError, match="cycle"):
            graph.topo()


# -- planning and incremental execution ---------------------------------------


class TestPlanGraph:
    def test_cold_plan_is_all_new(self, store):
        plans = plan_graph(_chain(), store)
        assert [p.name for p in plans] == ["seq", "scale", "total"]
        assert all(not p.cached for p in plans)
        assert [p.cause for p in plans] == ["new", "new", "new"]
        assert [p.depth for p in plans] == [0, 1, 2]

    def test_keys_differ_by_params(self, store):
        cold = {p.name: p.key for p in plan_graph(_chain(k=3), store)}
        warm = {p.name: p.key for p in plan_graph(_chain(k=4), store)}
        assert cold["seq"] == warm["seq"]
        assert cold["scale"] != warm["scale"]
        assert cold["total"] != warm["total"]  # upstream key changed

    def test_run_then_replan_is_all_cached(self, store):
        runner = ExperimentRunner(store=store)
        result = runner.run_graph(_chain())
        assert result.executed == ["seq", "scale", "total"]
        assert result["total"] == (0 + 3 + 6 + 9)
        again = runner.run_graph(_chain())
        assert again.executed == []
        assert again.hits == 3 and again.misses == 0
        assert again.key("total") == result.key("total")

    def test_param_edit_recomputes_only_downstream(self, store):
        runner = ExperimentRunner(store=store)
        runner.run_graph(_chain(bias=0))
        result = runner.run_graph(_chain(bias=10))
        assert result.executed == ["total"]
        assert result.cached("seq") and result.cached("scale")
        assert result["total"] == 18 + 10
        assert result.plan("total").cause == "params"

    def test_upstream_edit_cascades_with_cause(self, store):
        runner = ExperimentRunner(store=store)
        runner.run_graph(_chain(k=3))
        plans = {p.name: p for p in runner.plan_graph(_chain(k=5))}
        assert plans["seq"].cached
        assert plans["scale"].cause == "params"
        assert plans["total"].cause == "upstream"

    def test_manifest_carries_record(self, store):
        result = ExperimentRunner(store=store).run_graph(_chain())
        manifest = store.manifest(result.key("scale"))
        record = manifest.provenance
        assert record["node"] == "t/scale"
        assert record["stage"] == "profile"
        assert record["depth"] == 1
        assert record["upstream"]["xs"]["node"] == "seq"
        assert record["upstream"]["xs"]["key"] == result.key("seq")

    def test_graph_result_unknown_node(self, store):
        result = ExperimentRunner(store=store).run_graph(_chain())
        with pytest.raises(KeyError, match="no stage node"):
            result.key("nope")


class TestExecutePayload:
    def test_payload_round_trip(self, store):
        plans = plan_graph(_chain(), store)
        for plan in plans:
            payload = worker_payload(plan, store)
            assert payload["store_root"] == str(store.root)
            assert execute_payload(payload) == plan.key
        assert store.get(plans[-1].key) == 18

    def test_execute_is_idempotent(self, store):
        plans = plan_graph(_chain(), store)
        for plan in plans:
            execute_payload(worker_payload(plan, store))
        before = store.manifest(plans[0].key).created
        execute_payload(worker_payload(plans[0], store))
        assert store.manifest(plans[0].key).created == before

    def test_publish_alias_written_with_provenance(self, store):
        graph = StageGraph("t")
        graph.node(
            "seq",
            stage_seq,
            params={"n": 2},
            publish=[("profile", {"w": "fake", "n": 2})],
        )
        ExperimentRunner(store=store).run_graph(graph)
        alias = store.key_for("profile", {"w": "fake", "n": 2})
        assert store.get(alias) == [0, 1]
        assert store.manifest(alias).provenance["node"] == "t/seq"


# -- code fingerprints --------------------------------------------------------


def _fake_tree(root, leaf_body="X = 1\n"):
    pkg = root / "repro"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "mid.py").write_text("from repro import leaf\n")
    (pkg / "leaf.py").write_text(leaf_body)
    runtime = pkg / "runtime"
    runtime.mkdir(exist_ok=True)
    (runtime / "__init__.py").write_text("")
    (runtime / "orch.py").write_text("from repro import mid\n")
    return root


class TestCodeIndex:
    def test_closure_follows_imports(self, tmp_path):
        idx = CodeIndex(src_root=_fake_tree(tmp_path))
        modules = idx.closure(["repro.mid"])
        # "repro" rides along: `from repro import leaf` names the package.
        assert set(modules) == {"repro", "repro.mid", "repro.leaf"}

    def test_orchestration_prefixes_excluded(self, tmp_path):
        idx = CodeIndex(src_root=_fake_tree(tmp_path))
        assert not CodeIndex.included("repro.runtime.orch")
        assert not CodeIndex.included("numpy")
        assert CodeIndex.included("repro.core.phases")
        assert idx.closure(["repro.runtime.orch"]) == {}

    def test_fingerprint_tracks_leaf_edit(self, tmp_path):
        before, mods = CodeIndex(src_root=_fake_tree(tmp_path)).fingerprint(
            ["repro.mid"]
        )
        _fake_tree(tmp_path, leaf_body="X = 2\n")
        after, mods2 = CodeIndex(src_root=tmp_path).fingerprint(["repro.mid"])
        assert before != after
        assert mods["repro.mid"] == mods2["repro.mid"]
        assert mods["repro.leaf"] != mods2["repro.leaf"]

    def test_code_edit_plans_as_code_miss(self, store, tmp_path):
        graph = StageGraph("t")
        graph.node("seq", stage_seq, params={"n": 2}, code=("repro.leaf",))
        runner = ExperimentRunner(store=store)
        runner.run_graph(
            graph, code=CodeIndex(store, src_root=_fake_tree(tmp_path))
        )
        _fake_tree(tmp_path, leaf_body="X = 2\n")
        edited = CodeIndex(store, src_root=tmp_path)
        plans = runner.plan_graph(graph, code=edited)
        assert plans[0].cause == "code"
        stale = invalidated_entries(store, code=edited)
        assert [e["modules"] for e in stale] == [["repro.leaf"]]
        assert runner.run_graph(graph, code=edited).executed == ["seq"]


# -- introspection ------------------------------------------------------------


class TestIntrospection:
    def test_lineage_walks_ancestry(self, store):
        result = ExperimentRunner(store=store).run_graph(_chain())
        walk = [
            (dist, m.provenance["node"])
            for dist, m in lineage(store, result.key("total"))
        ]
        assert walk == [(0, "t/total"), (1, "t/scale"), (2, "t/seq")]

    def test_explain_key_first_run(self, store):
        result = ExperimentRunner(store=store).run_graph(_chain())
        why = explain_key(store, result.key("total"))
        assert why["predecessor"] is None
        assert why["changed"] == []
        assert why["record"]["node"] == "t/total"

    def test_explain_key_diffs_predecessor(self, store):
        runner = ExperimentRunner(store=store)
        runner.run_graph(_chain(bias=0))
        result = runner.run_graph(_chain(bias=1))
        why = explain_key(store, result.key("total"))
        assert why["predecessor"] is not None
        assert {c["what"] for c in why["changed"]} == {"params"}

    def test_explain_key_missing_provenance(self, store):
        store.put("adhoc", 1, kind="misc", params={})
        with pytest.raises(KeyError, match="no provenance"):
            explain_key(store, "adhoc")

    def test_stats_fold_runs_and_causes(self, store):
        runner = ExperimentRunner(store=store)
        runner.run_graph(_chain(bias=0))
        runner.run_graph(_chain(bias=2))
        stats = provenance_stats(store)
        assert stats["entries"] == 4  # 3 cold + 1 re-biased report
        assert stats["per_stage"] == {
            "profile": 1,
            "report": 2,
            "trace-gen": 1,
        }
        assert stats["max_depth"] == 2
        assert stats["runs"] == 2
        assert stats["hits"] == 2 and stats["misses"] == 4
        assert stats["causes"] == {"new": 3, "params": 1}

    def test_record_graph_run_survives_bad_sidecar(self, store):
        (store.root / "provenance_stats.json").write_text("not json")
        record_graph_run(store, plan_graph(_chain(), store))
        assert provenance_stats(store)["runs"] == 1


# -- integration with the real pipeline ---------------------------------------


@pytest.mark.slow
class TestRealPipeline:
    def test_spec_graph_publishes_classic_aliases(self, tmp_path):
        from repro.core.pipeline import SimProfConfig
        from repro.runtime.runner import RunSpec
        from repro.runtime.stages import spec_nodes

        spec = RunSpec(
            workload="grep",
            framework="spark",
            scale=0.05,
            simprof=SimProfConfig(
                unit_size=10_000_000, snapshot_period=500_000
            ),
        )
        store = ArtifactStore(tmp_path / "store")
        runner = ExperimentRunner(store=store)
        graph = StageGraph("itest")
        nodes = spec_nodes(graph, spec)
        result = runner.run_graph(graph)
        assert result.misses == len(graph.nodes)

        # The classic per-spec path hits the published aliases: the
        # batch run finds both artifacts already materialised.
        (classic,) = runner.run([spec], want="model")
        assert classic.cached
        assert (
            classic.job.profile.cpi().shape
            == result[nodes["profile"]].profile.cpi().shape
        )
        assert classic.model.k == result[nodes["model"]].k

        # A second graph run over the same spec is a full cache hit.
        graph2 = StageGraph("itest")
        spec_nodes(graph2, spec)
        assert runner.run_graph(graph2).executed == []
