"""Integration tests: the pipelined executor computes correct results.

These run tiny dataflows end to end and check both the *answers*
(records flow correctly through pipelined ops, combiners, shuffles,
sorts) and the *traces* (segments appear with the right stacks and
interleave inside tasks).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.jvm.machine import OpKind
from repro.jvm.threads import OP_KIND_CODES
from repro.spark.context import SparkConfig, SparkContext


def make_ctx(**kwargs) -> SparkContext:
    defaults = dict(n_executors=2, default_parallelism=2, seed=0)
    defaults.update(kwargs)
    return SparkContext(SparkConfig(**defaults))


class TestActions:
    def test_collect(self):
        ctx = make_ctx()
        data = list(range(20))
        assert sorted(ctx.parallelize(data, 3).collect()) == data

    def test_count(self):
        ctx = make_ctx()
        assert ctx.parallelize(list(range(17)), 4).count() == 17

    def test_reduce(self):
        ctx = make_ctx()
        assert ctx.parallelize(list(range(10)), 3).reduce(lambda a, b: a + b) == 45

    def test_reduce_empty_raises(self):
        ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_save_as_text_file(self):
        ctx = make_ctx()
        ctx.parallelize([("a", 1), ("b", 2)], 2).save_as_text_file("/out")
        lines = []
        for path in ctx.fs.ls("/out/*"):
            lines.extend(ctx.fs.read_all(path))
        assert sorted(lines) == ["a\t1", "b\t2"]


class TestNarrowOps:
    def test_map_filter_pipeline(self):
        ctx = make_ctx()
        out = (
            ctx.parallelize(list(range(10)), 2)
            .map(lambda x: x * 2)
            .filter(lambda x: x % 4 == 0)
            .collect()
        )
        assert sorted(out) == [0, 4, 8, 12, 16]

    def test_flat_map(self):
        ctx = make_ctx()
        out = ctx.parallelize(["a b", "c"], 2).flat_map(str.split).collect()
        assert sorted(out) == ["a", "b", "c"]

    def test_map_partitions(self):
        ctx = make_ctx()
        out = (
            ctx.parallelize(list(range(8)), 2)
            .map_partitions(lambda batch: [sum(batch)])
            .collect()
        )
        assert sum(out) == 28

    def test_union(self):
        ctx = make_ctx()
        a = ctx.parallelize([1, 2], 1)
        b = ctx.parallelize([3], 1)
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_text_file_reads_blocks(self):
        ctx = make_ctx()
        ctx.fs.write("/in", [f"line {i}" for i in range(30)], block_records=10)
        rdd = ctx.text_file("/in")
        assert rdd.num_partitions() == 3
        assert len(rdd.collect()) == 30


class TestShuffles:
    def test_reduce_by_key_counts(self):
        ctx = make_ctx()
        words = ["a", "b", "a", "c", "b", "a"]
        pairs = ctx.parallelize(words, 3).map(lambda w: (w, 1))
        result = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert result == Counter(words)

    def test_reduce_by_key_without_map_side_combine(self):
        ctx = make_ctx()
        pairs = ctx.parallelize([("a", 1)] * 5, 2)
        result = dict(
            pairs.reduce_by_key(lambda a, b: a + b, map_side_combine=False).collect()
        )
        assert result == {"a": 5}

    def test_group_by_key(self):
        ctx = make_ctx()
        pairs = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        grouped = dict(pairs.group_by_key().collect())
        assert sorted(grouped["a"]) == [1, 3]
        assert grouped["b"] == [2]

    def test_sort_by_key_global_order(self):
        ctx = make_ctx(default_parallelism=3)
        import random

        keys = list(range(100))
        random.Random(0).shuffle(keys)
        pairs = ctx.parallelize([(k, None) for k in keys], 4)
        # Collect per partition, in partition order: must be globally sorted.
        out = [k for k, _ in pairs.sort_by_key().collect()]
        assert out == sorted(keys)

    def test_join(self):
        ctx = make_ctx()
        left = ctx.parallelize([("a", 1), ("b", 2)], 2)
        right = ctx.parallelize([("a", "x"), ("a", "y"), ("c", "z")], 2)
        joined = sorted(left.join(right).collect())
        assert joined == [("a", (1, "x")), ("a", (1, "y"))]

    def test_two_chained_shuffles(self):
        ctx = make_ctx()
        words = ["a", "b", "a", "c", "b", "a"]
        counts = (
            ctx.parallelize(words, 2)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        by_count = counts.map(lambda kv: (kv[1], kv[0])).group_by_key()
        result = dict(by_count.collect())
        assert sorted(result[1]) == ["c"]
        assert sorted(result[2]) == ["b"]
        assert sorted(result[3]) == ["a"]


class TestTraces:
    def test_segments_emitted_for_each_op_kind(self):
        ctx = make_ctx()
        ctx.fs.write("/in", [f"w{i} w{i % 3}" for i in range(200)], block_records=50)
        (
            ctx.text_file("/in")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .save_as_text_file("/out")
        )
        trace = ctx.job_trace("mini")
        kinds = set()
        for t in trace.traces:
            arr = t.to_arrays()
            kinds.update(int(code) for code in arr["op_kind"])
        assert OP_KIND_CODES[OpKind.MAP] in kinds
        assert OP_KIND_CODES[OpKind.REDUCE] in kinds
        assert OP_KIND_CODES[OpKind.IO] in kinds
        assert OP_KIND_CODES[OpKind.SHUFFLE] in kinds

    def test_ops_interleave_within_task(self):
        """Pipelining: map and combine segments alternate inside a task
        instead of forming contiguous runs."""
        ctx = make_ctx(n_executors=1)
        ctx.fs.write("/in", [f"w{i % 7}" for i in range(400)], block_records=400)
        (
            ctx.text_file("/in")
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        trace = ctx.job_trace("mini").traces[0]
        arr = trace.to_arrays()
        map_code = OP_KIND_CODES[OpKind.MAP]
        reduce_code = OP_KIND_CODES[OpKind.REDUCE]
        sequence = [
            int(k) for k in arr["op_kind"] if k in (map_code, reduce_code)
        ]
        transitions = sum(
            1 for a, b in zip(sequence, sequence[1:]) if a != b
        )
        assert transitions > 2  # interleaved, not two blocks

    def test_stage_metadata_recorded(self):
        ctx = make_ctx()
        ctx.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b).collect()
        trace = ctx.job_trace("mini")
        assert len(trace.stages) == 2
        assert {s.name.split(":")[0] for s in trace.stages} == {
            "shuffleMap",
            "result",
        }

    def test_silent_executor_leaves_no_trace(self):
        ctx = make_ctx()
        sampler = ctx.make_silent_executor()
        stack = ctx.frames.task_stack(shuffle_map=False)
        records = sampler.compute(
            ctx.parallelize(list(range(5)), 1).map(lambda x: x), 0, stack, -1, -1
        )
        assert records == [0, 1, 2, 3, 4]
        assert len(sampler.builder.trace) == 0

    def test_job_trace_has_all_executors(self):
        ctx = make_ctx(n_executors=3)
        ctx.parallelize(list(range(30)), 6).map(lambda x: x).collect()
        trace = ctx.job_trace("mini")
        assert trace.n_threads == 3
