"""Unit tests for RDD lineage and stage construction."""

from __future__ import annotations

import pytest

from repro.spark.context import SparkConfig, SparkContext
from repro.spark.dag import build_stages
from repro.spark.rdd import NarrowRDD, ShuffledRDD, UnionRDD


@pytest.fixture()
def ctx() -> SparkContext:
    return SparkContext(SparkConfig(n_executors=2, default_parallelism=2))


class TestLineage:
    def test_narrow_chain_preserves_partitions(self, ctx):
        base = ctx.parallelize(list(range(10)), 3)
        mapped = base.map(lambda x: x + 1).filter(lambda x: x > 2)
        assert mapped.num_partitions() == 3
        assert isinstance(mapped, NarrowRDD)

    def test_union_partitions_add(self, ctx):
        a = ctx.parallelize([1], 2)
        b = ctx.parallelize([2], 3)
        u = a.union(b)
        assert u.num_partitions() == 5

    def test_union_resolve_split(self, ctx):
        a = ctx.parallelize([1], 2)
        b = ctx.parallelize([2], 3)
        u = a.union(b)
        assert u.resolve_split(1) == (a, 1)
        assert u.resolve_split(2) == (b, 0)
        with pytest.raises(IndexError):
            u.resolve_split(5)

    def test_shuffle_partitions_from_config(self, ctx):
        pairs = ctx.parallelize([("a", 1)], 2)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        assert reduced.num_partitions() == 2  # default_parallelism

    def test_map_side_combine_requires_aggregator(self, ctx):
        pairs = ctx.parallelize([("a", 1)], 2)
        with pytest.raises(ValueError):
            ShuffledRDD(
                ctx,
                pairs,
                partitioner=None,
                aggregator=None,
                map_side_combine=True,
                key_ordering=False,
                name="bad",
            )

    def test_rdd_ids_unique(self, ctx):
        a = ctx.parallelize([1])
        b = a.map(lambda x: x)
        c = b.filter(lambda x: True)
        assert len({a.rdd_id, b.rdd_id, c.rdd_id}) == 3

    def test_parallelize_rejects_zero_partitions(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 0)


class TestBuildStages:
    def test_single_stage_job(self, ctx):
        rdd = ctx.parallelize([1, 2, 3], 2).map(lambda x: x)
        stages = build_stages(rdd)
        assert len(stages) == 1
        assert stages[0].is_result

    def test_shuffle_cuts_stage(self, ctx):
        rdd = (
            ctx.parallelize([("a", 1)], 2)
            .reduce_by_key(lambda a, b: a + b)
            .map_values(lambda v: v)
        )
        stages = build_stages(rdd)
        assert len(stages) == 2
        assert not stages[0].is_result
        assert stages[0].shuffle_dep is not None
        assert stages[-1].is_result

    def test_two_shuffles_three_stages(self, ctx):
        rdd = (
            ctx.parallelize([("a", 1)], 2)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .group_by_key()
        )
        stages = build_stages(rdd)
        assert len(stages) == 3
        assert stages[-1].is_result

    def test_shared_shuffle_parent_deduplicated(self, ctx):
        shuffled = ctx.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b)
        left = shuffled.map_values(lambda v: (0, v), "l")
        right = shuffled.map_values(lambda v: (1, v), "r")
        final = left.union(right)
        stages = build_stages(final)
        # One shuffle-map stage (shared), one result stage.
        assert len(stages) == 2

    def test_topological_order(self, ctx):
        rdd = (
            ctx.parallelize([("a", 1)], 2)
            .group_by_key()
            .map_values(len)
            .sort_by_key()
        )
        stages = build_stages(rdd)
        seen = set()
        for stage in stages:
            for parent in stage.parents:
                assert parent.stage_id in seen
            seen.add(stage.stage_id)

    def test_stage_names(self, ctx):
        rdd = ctx.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b)
        stages = build_stages(rdd)
        assert stages[0].name.startswith("shuffleMap:")
        assert stages[-1].name.startswith("result:")
