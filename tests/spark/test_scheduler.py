"""Tests for the DAG scheduler: waves, contention, multi-job contexts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spark.context import SparkConfig, SparkContext


def make_ctx(**kwargs) -> SparkContext:
    defaults = dict(n_executors=4, default_parallelism=4, seed=0)
    defaults.update(kwargs)
    return SparkContext(SparkConfig(**defaults))


class TestWaves:
    def test_tasks_distributed_across_executors(self):
        ctx = make_ctx(n_executors=4)
        ctx.parallelize(list(range(100)), 8).map(lambda x: x).collect()
        trace = ctx.job_trace("t")
        busy = [t for t in trace.traces if t.total_instructions > 0]
        assert len(busy) == 4  # 8 tasks over 4 executors: everyone works

    def test_fewer_tasks_than_executors(self):
        ctx = make_ctx(n_executors=4)
        ctx.parallelize(list(range(10)), 2).map(lambda x: x).collect()
        trace = ctx.job_trace("t")
        busy = [t for t in trace.traces if t.total_instructions > 0]
        assert len(busy) == 2

    def test_full_wave_has_higher_contention_cost(self):
        """The same total work costs more cycles when eight tasks share
        the LLC than when each runs alone (wave size = contention)."""
        from repro.jvm.machine import AccessPattern, OpKind
        from repro.spark.ops import CustomOp

        # Working set between LLC/8 and LLC: only contention hurts it.
        op = CustomOp(
            name="probe",
            frames=(("test.Probe", "run"),),
            op_kind=OpKind.REDUCE,
            batch_fn=lambda batch, _s: batch,
            inst_per_record=100_000.0,
            access_fn=lambda batch, _s: AccessPattern.random(6e6),
        )

        def run(n_executors: int) -> float:
            ctx = make_ctx(n_executors=n_executors)
            # 8 partitions: one full wave (contention 8) or 8 sequential
            # waves of one task (contention 1).
            ctx.parallelize(list(range(800)), 8).custom_op(op).count()
            trace = ctx.job_trace("t")
            return trace.total_cycles / trace.total_instructions

        alone = run(1)
        contended = run(8)
        assert contended > alone * 1.05

    def test_multiple_jobs_accumulate_in_one_trace(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(list(range(20)), 4)
        rdd.count()
        rdd.count()
        trace = ctx.job_trace("t")
        # Two result stages recorded.
        result_stages = [s for s in trace.stages if s.name.startswith("result")]
        assert len(result_stages) == 2

    def test_task_ids_unique_across_jobs(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([("a", 1)], 2).reduce_by_key(lambda a, b: a + b)
        rdd.collect()
        ctx.parallelize([1], 1).count()
        ids = set()
        for t in ctx.job_trace("t").traces:
            arr = t.to_arrays()
            ids.update(int(i) for i in arr["task_id"] if i >= 0)
        # No task id is reused between stages/jobs.
        stage_of = {}
        for t in ctx.job_trace("t").traces:
            arr = t.to_arrays()
            for tid, sid in zip(arr["task_id"], arr["stage_id"]):
                if tid < 0:
                    continue
                stage_of.setdefault(int(tid), set()).add(int(sid))
        assert all(len(stages) == 1 for stages in stage_of.values())


class TestContextBookkeeping:
    def test_job_trace_meta(self):
        ctx = make_ctx()
        ctx.fs.write("/in", ["a"] * 10, block_records=5)
        ctx.text_file("/in").map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b
        ).save_as_text_file("/out")
        trace = ctx.job_trace("wc", input_name="tiny")
        assert trace.meta["hdfs_bytes_read"] > 0
        assert trace.meta["hdfs_bytes_written"] > 0
        assert trace.meta["shuffle_bytes"] > 0
        assert trace.input_name == "tiny"
        assert trace.label == "wc_spark"

    def test_silent_executors_not_in_trace(self):
        ctx = make_ctx()
        ctx.make_silent_executor()
        trace = ctx.job_trace("t")
        assert trace.n_threads == ctx.config.n_executors

    def test_sort_by_key_sampling_does_not_pollute_profile(self):
        """The range-partitioner sampling job must leave no segments."""
        ctx = make_ctx()
        pairs = [(f"k{i:04d}", i) for i in range(500)]
        before = sum(len(t) for t in ctx.job_trace("t").traces)
        assert before == 0
        ctx.parallelize(pairs, 4).sort_by_key().collect()
        trace = ctx.job_trace("t")
        # All emitted segments belong to the two real stages.
        for t in trace.traces:
            arr = t.to_arrays()
            assert (arr["stage_id"] >= 0).all()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SparkConfig(n_executors=0)
        with pytest.raises(ValueError):
            SparkConfig(default_parallelism=0)
