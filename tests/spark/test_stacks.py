"""Unit tests for the canonical Spark/Hadoop stack factories."""

from __future__ import annotations

from repro.hadoop.stacks import HadoopFrames
from repro.jvm.methods import MethodRegistry
from repro.spark.stacks import SparkFrames


class TestSparkFrames:
    def setup_method(self):
        self.registry = MethodRegistry()
        self.frames = SparkFrames(self.registry)

    def test_executor_stack_shape(self):
        stack = self.frames.executor_stack()
        assert self.registry.fqn(stack.root) == "java.lang.Thread.run"
        assert "Executor$TaskRunner" in self.registry.fqn(stack.leaf)

    def test_task_stack_kinds_differ(self):
        smap = self.frames.task_stack(shuffle_map=True)
        result = self.frames.task_stack(shuffle_map=False)
        assert "ShuffleMapTask" in self.registry.fqn(smap.leaf)
        assert "ResultTask" in self.registry.fqn(result.leaf)

    def test_io_stacks_extend_task_stack(self):
        base = self.frames.task_stack(shuffle_map=False)
        read = self.frames.hdfs_read(base)
        assert len(read) > len(base)
        assert read.frames[: len(base)] == base.frames
        assert "DFSInputStream" in self.registry.fqn(read.frames[-1])

    def test_combine_stacks(self):
        base = self.frames.task_stack(shuffle_map=True)
        map_side = self.frames.map_side_combine(base)
        reduce_side = self.frames.reduce_side_combine(base)
        map_names = [self.registry.fqn(m) for m in map_side]
        reduce_names = [self.registry.fqn(m) for m in reduce_side]
        assert any("combineValuesByKey" in n for n in map_names)
        assert any("combineCombinersByKey" in n for n in reduce_names)

    def test_gc_stack_is_jvm_internal(self):
        gc = self.frames.gc_stack()
        assert any(
            "jvm.gc" in self.registry.fqn(m) for m in gc
        )

    def test_interning_is_stable(self):
        a = self.frames.task_stack(shuffle_map=True)
        b = self.frames.task_stack(shuffle_map=True)
        assert a == b
        assert len(self.registry) > 0

    def test_with_frames_interns_new_methods(self):
        before = len(self.registry)
        base = self.frames.executor_stack()
        self.frames.with_frames(base, (("new.Class", "method"),))
        assert len(self.registry) == before + 1


class TestHadoopFrames:
    def setup_method(self):
        self.registry = MethodRegistry()
        self.frames = HadoopFrames(self.registry)

    def test_task_base_stacks(self):
        m = self.frames.map_task_stack()
        r = self.frames.reduce_task_stack()
        assert "YarnChild" in self.registry.fqn(m.root)
        assert "MapTask" in self.registry.fqn(m.leaf)
        assert "ReduceTask" in self.registry.fqn(r.leaf)

    def test_mapper_appends_user_frames_and_collect(self):
        base = self.frames.map_task_stack()
        stack = self.frames.mapper(
            base, (("my.WordCount$TokenizerMapper", "map"),)
        )
        names = [self.registry.fqn(m) for m in stack]
        assert any("TokenizerMapper" in n for n in names)
        assert "collect" in names[-1]

    def test_sort_spill_contains_quicksort(self):
        base = self.frames.map_task_stack()
        names = [self.registry.fqn(m) for m in self.frames.sort_spill(base)]
        assert any("QuickSort" in n for n in names)

    def test_combiner_stack(self):
        base = self.frames.map_task_stack()
        stack = self.frames.combiner(base, (("my.Combiner", "reduce"),))
        names = [self.registry.fqn(m) for m in stack]
        assert any("NewCombinerRunner" in n for n in names)
        assert any("my.Combiner" in n for n in names)

    def test_fetch_and_merge_stacks(self):
        base = self.frames.reduce_task_stack()
        fetch = [self.registry.fqn(m) for m in self.frames.fetch(base)]
        merge = [self.registry.fqn(m) for m in self.frames.reduce_merge(base)]
        assert any("Fetcher" in n for n in fetch)
        assert any("Merger" in n for n in merge)
