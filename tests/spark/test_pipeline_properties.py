"""Property-based tests: the pipelined executor implements the RDD
semantics exactly, for arbitrary operator chains and partitionings."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.spark.context import SparkConfig, SparkContext

# Operator vocabulary: (name, rdd transformation, python reference).
OPERATORS = {
    "inc": (lambda r: r.map(lambda x: x + 1),
            lambda xs: [x + 1 for x in xs]),
    "double": (lambda r: r.map(lambda x: x * 2),
               lambda xs: [x * 2 for x in xs]),
    "odd": (lambda r: r.filter(lambda x: x % 2 == 1),
            lambda xs: [x for x in xs if x % 2 == 1]),
    "dup": (lambda r: r.flat_map(lambda x: [x, x]),
            lambda xs: [y for x in xs for y in (x, x)]),
    "drop_neg": (lambda r: r.filter(lambda x: x >= 0),
                 lambda xs: [x for x in xs if x >= 0]),
}

op_names = st.lists(
    st.sampled_from(sorted(OPERATORS)), min_size=0, max_size=4
)
datasets = st.lists(st.integers(-50, 50), max_size=60)
partitions = st.integers(min_value=1, max_value=5)


def make_ctx() -> SparkContext:
    return SparkContext(SparkConfig(n_executors=2, default_parallelism=2, seed=0))


@given(data=datasets, chain=op_names, n_parts=partitions)
@settings(max_examples=40, deadline=None)
def test_narrow_chain_matches_reference(data, chain, n_parts):
    ctx = make_ctx()
    rdd = ctx.parallelize(data, n_parts)
    expected = list(data)
    for name in chain:
        transform, reference = OPERATORS[name]
        rdd = transform(rdd)
        expected = reference(expected)
    # Partition interleaving may reorder records; compare as multisets.
    assert Counter(rdd.collect()) == Counter(expected)
    assert rdd.count() == len(expected)


@given(data=datasets, n_parts=partitions)
@settings(max_examples=30, deadline=None)
def test_reduce_by_key_matches_counter(data, n_parts):
    ctx = make_ctx()
    pairs = [(x % 7, 1) for x in data]
    result = dict(
        ctx.parallelize(pairs, n_parts)
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    assert result == Counter(x % 7 for x in data)


@given(data=st.lists(st.integers(-1000, 1000), max_size=80), n_parts=partitions)
@settings(max_examples=30, deadline=None)
def test_sort_by_key_matches_sorted(data, n_parts):
    ctx = make_ctx()
    pairs = [(x, None) for x in data]
    out = [k for k, _ in ctx.parallelize(pairs, n_parts).sort_by_key().collect()]
    assert out == sorted(data)


@given(data=datasets, n_parts=partitions, n_coalesce=st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_coalesce_preserves_records(data, n_parts, n_coalesce):
    ctx = make_ctx()
    out = ctx.parallelize(data, n_parts).coalesce(n_coalesce).collect()
    assert Counter(out) == Counter(data)


@given(data=datasets, n_parts=partitions)
@settings(max_examples=25, deadline=None)
def test_cache_transparency(data, n_parts):
    """collect() of a cached RDD equals the uncached result, before and
    after the cache fills."""
    ctx = make_ctx()
    rdd = ctx.parallelize(data, n_parts).map(lambda x: x - 3).cache()
    expected = Counter(x - 3 for x in data)
    assert Counter(rdd.collect()) == expected
    assert Counter(rdd.collect()) == expected
