"""Unit tests for partitioners, the aggregator, and shuffle storage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.spark.shuffle import (
    Aggregator,
    HashPartitioner,
    RangePartitioner,
    ShuffleManager,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("word") == stable_hash("word")

    def test_int_passthrough(self):
        assert stable_hash(42) == 42

    def test_bool(self):
        assert stable_hash(True) == 1

    def test_tuple_support(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))

    @given(st.one_of(st.text(), st.integers(), st.binary()))
    @settings(max_examples=80)
    def test_non_negative(self, key):
        assert stable_hash(key) >= 0


class TestHashPartitioner:
    def test_partition_in_range(self):
        p = HashPartitioner(8)
        for key in ["a", "b", 42, ("x", 1)]:
            assert 0 <= p.partition(key) < 8

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(st.lists(st.text(min_size=1), min_size=50, max_size=200, unique=True))
    @settings(max_examples=20)
    def test_roughly_balanced(self, keys):
        p = HashPartitioner(4)
        counts = [0] * 4
        for key in keys:
            counts[p.partition(key)] += 1
        assert max(counts) <= len(keys)  # every bucket valid
        assert sum(counts) == len(keys)


class TestRangePartitioner:
    def test_partition_by_bounds(self):
        p = RangePartitioner(bounds=("g", "p"))
        assert p.num_partitions == 3
        assert p.partition("a") == 0
        assert p.partition("g") == 0  # <= bound goes left
        assert p.partition("h") == 1
        assert p.partition("z") == 2

    def test_from_sample(self):
        keys = [f"k{i:03d}" for i in range(100)]
        p = RangePartitioner.from_sample(keys, 4)
        parts = [p.partition(k) for k in keys]
        # Order-preserving: partition ids are non-decreasing over sorted keys.
        assert parts == sorted(parts)
        assert max(parts) == 3

    def test_from_sample_single_partition(self):
        p = RangePartitioner.from_sample(["a", "b"], 1)
        assert p.num_partitions == 1
        assert p.partition("zzz") == 0

    def test_from_empty_sample(self):
        p = RangePartitioner.from_sample([], 4)
        assert p.num_partitions == 1

    def test_skewed_sample_dedupes_bounds(self):
        p = RangePartitioner.from_sample(["a"] * 100 + ["b"], 8)
        # Bounds must be strictly increasing.
        assert list(p.bounds) == sorted(set(p.bounds))

    def test_sorted_keys_property(self):
        keys = sorted(["pear", "apple", "fig", "grape", "kiwi"] * 10)
        p = RangePartitioner.from_sample(keys, 3)
        parts = [p.partition(k) for k in keys]
        assert parts == sorted(parts)


class TestAggregator:
    def test_from_reduce(self):
        agg = Aggregator.from_reduce(lambda a, b: a + b)
        c = agg.create_combiner(5)
        c = agg.merge_value(c, 3)
        assert c == 8
        assert agg.merge_combiners(8, 2) == 10

    def test_group(self):
        agg = Aggregator.group()
        c = agg.create_combiner("x")
        c = agg.merge_value(c, "y")
        assert c == ["x", "y"]
        assert agg.merge_combiners(["a"], ["b"]) == ["a", "b"]


class TestShuffleManager:
    def test_write_and_fetch(self):
        sm = ShuffleManager()
        sm.write_block(1, map_task=0, reduce_part=2, records=[("a", 1)])
        sm.write_block(1, map_task=1, reduce_part=2, records=[("b", 2)])
        sm.write_block(1, map_task=0, reduce_part=0, records=[("c", 3)])
        blocks = sm.fetch(1, reduce_part=2)
        assert [recs for recs, _ in blocks] == [[("a", 1)], [("b", 2)]]

    def test_fetch_isolates_shuffles(self):
        sm = ShuffleManager()
        sm.write_block(1, 0, 0, [("a", 1)])
        sm.write_block(2, 0, 0, [("b", 2)])
        assert sm.fetch(1, 0)[0][0] == [("a", 1)]
        assert sm.fetch(2, 0)[0][0] == [("b", 2)]

    def test_byte_accounting(self):
        sm = ShuffleManager()
        nbytes = sm.write_block(1, 0, 0, [("abc", 1)])
        assert nbytes > 0
        sm.fetch(1, 0)
        assert sm.bytes_fetched == nbytes
        assert sm.bytes_written == nbytes

    def test_map_tasks_for(self):
        sm = ShuffleManager()
        sm.write_block(5, 3, 0, [])
        sm.write_block(5, 7, 1, [])
        assert sm.map_tasks_for(5) == {3, 7}
