"""Tests for the extended Spark API (distinct/sample/coalesce/keys/values)
and Hadoop user counters."""

from __future__ import annotations

import pytest

from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster, HadoopClusterConfig
from repro.spark.context import SparkConfig, SparkContext


def make_ctx(**kwargs) -> SparkContext:
    defaults = dict(n_executors=2, default_parallelism=2, seed=0)
    defaults.update(kwargs)
    return SparkContext(SparkConfig(**defaults))


class TestKeysValues:
    def test_keys_and_values(self):
        ctx = make_ctx()
        pairs = ctx.parallelize([("a", 1), ("b", 2)], 2)
        assert sorted(pairs.keys().collect()) == ["a", "b"]
        assert sorted(pairs.values().collect()) == [1, 2]


class TestDistinct:
    def test_deduplicates(self):
        ctx = make_ctx()
        data = [1, 2, 2, 3, 3, 3, 1]
        assert sorted(ctx.parallelize(data, 3).distinct().collect()) == [1, 2, 3]

    def test_distinct_strings(self):
        ctx = make_ctx()
        data = ["x", "y", "x"]
        assert sorted(ctx.parallelize(data, 2).distinct().collect()) == ["x", "y"]

    def test_distinct_adds_shuffle_stage(self):
        ctx = make_ctx()
        ctx.parallelize([1, 1], 2).distinct().collect()
        trace = ctx.job_trace("t")
        assert any(s.name.startswith("shuffleMap") for s in trace.stages)


class TestSample:
    def test_fraction_zero_and_one(self):
        ctx = make_ctx()
        data = list(range(50))
        assert ctx.parallelize(data, 2).sample(0.0).collect() == []
        assert sorted(ctx.parallelize(data, 2).sample(1.0).collect()) == data

    def test_fraction_rate(self):
        ctx = make_ctx()
        data = list(range(2000))
        kept = ctx.parallelize(data, 2).sample(0.3, seed=1).collect()
        assert 0.2 < len(kept) / len(data) < 0.4

    def test_sample_subset(self):
        ctx = make_ctx()
        data = list(range(100))
        kept = ctx.parallelize(data, 2).sample(0.5, seed=2).collect()
        assert set(kept) <= set(data)
        assert len(set(kept)) == len(kept)

    def test_deterministic(self):
        data = list(range(200))
        a = make_ctx().parallelize(data, 2).sample(0.5, seed=3).collect()
        b = make_ctx().parallelize(data, 2).sample(0.5, seed=3).collect()
        assert a == b

    def test_rejects_bad_fraction(self):
        ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).sample(1.5)


class TestCoalesce:
    def test_reduces_partitions(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(list(range(40)), 8).coalesce(3)
        assert rdd.num_partitions() == 3
        assert sorted(rdd.collect()) == list(range(40))

    def test_parent_splits_partition_everything(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(list(range(10)), 7).coalesce(3)
        seen = []
        for split in range(3):
            seen.extend(rdd.parent_splits(split))
        assert seen == list(range(7))

    def test_coalesce_with_downstream_ops(self):
        ctx = make_ctx()
        out = (
            ctx.parallelize(list(range(20)), 6)
            .map(lambda x: x + 1)
            .coalesce(2)
            .map(lambda x: x * 10)
            .collect()
        )
        assert sorted(out) == [(x + 1) * 10 for x in range(20)]

    def test_cannot_increase_partitions(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([1, 2], 2).coalesce(10)
        assert rdd.num_partitions() == 2

    def test_rejects_zero(self):
        ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).coalesce(0)

    def test_coalesce_into_shuffle(self):
        ctx = make_ctx()
        words = ["a", "b", "a", "c"] * 5
        counts = dict(
            ctx.parallelize(words, 8)
            .coalesce(2)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == {"a": 10, "b": 5, "c": 5}


class CountingMapper(Mapper):
    inst_per_record = 50_000.0

    def map(self, key, value, context: Context) -> None:
        for w in value.split():
            context.write(w, 1)
            context.increment_counter("wc", "tokens")
        if not value.split():
            context.increment_counter("wc", "empty_lines")


class SumReducer(Reducer):
    inst_per_record = 20_000.0

    def reduce(self, key, values, context: Context) -> None:
        total = sum(values)
        context.write(key, total)
        context.increment_counter("wc", "unique_words")


class TestHadoopCounters:
    def test_counters_aggregate_across_tasks(self):
        cluster = HadoopCluster(HadoopClusterConfig(n_slots=2, seed=0))
        lines = ["a b", "c", "", "a"]
        cluster.fs.write("/in", lines, block_records=2)
        conf = HadoopJobConf(
            name="wc", mapper=CountingMapper(), reducer=SumReducer(),
            n_reduces=2,
        )
        cluster.run_job(conf, "/in", "/out")
        counters = cluster.counters["wc"]
        assert counters[("wc", "tokens")] == 4
        assert counters[("wc", "empty_lines")] == 1
        assert counters[("wc", "unique_words")] == 3

    def test_context_counter_api(self):
        ctx = Context()
        ctx.increment_counter("g", "n")
        ctx.increment_counter("g", "n", 4)
        assert ctx.counters[("g", "n")] == 5
