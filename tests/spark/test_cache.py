"""Tests for RDD.cache()/persist() and the block store."""

from __future__ import annotations

import pytest

from repro.spark.blockstore import BlockStore
from repro.spark.context import SparkConfig, SparkContext


def make_ctx(**kwargs) -> SparkContext:
    defaults = dict(n_executors=2, default_parallelism=2, seed=0)
    defaults.update(kwargs)
    return SparkContext(SparkConfig(**defaults))


class TestBlockStore:
    def test_put_get_roundtrip(self):
        store = BlockStore()
        store.put(5, 0, [1, 2, 3])
        records, nbytes = store.get(5, 0)
        assert records == [1, 2, 3]
        assert nbytes == 24

    def test_has_counts_probes(self):
        store = BlockStore()
        assert not store.has(1, 0)
        store.put(1, 0, [1])
        assert store.has(1, 0)
        assert store.hits == 1
        assert store.misses == 1

    def test_overwrite_adjusts_bytes(self):
        store = BlockStore()
        store.put(1, 0, [1, 2])
        store.put(1, 0, [1])
        assert store.bytes_cached == 8
        assert store.n_blocks == 1

    def test_evict_rdd(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.put(1, 1, [2])
        store.put(2, 0, [3])
        store.evict_rdd(1)
        assert store.n_blocks == 1
        assert store.bytes_cached == 8


class TestCachedRDD:
    def test_results_identical_with_cache(self):
        words = [f"w{i % 5}" for i in range(40)]
        plain = make_ctx()
        expected = sorted(
            plain.parallelize(words, 2).map(lambda w: (w, 1)).collect()
        )
        ctx = make_ctx()
        cached = ctx.parallelize(words, 2).map(lambda w: (w, 1)).cache()
        first = sorted(cached.collect())
        second = sorted(cached.collect())
        assert first == expected
        assert second == expected

    def test_second_job_reads_from_store(self):
        ctx = make_ctx()
        calls = []

        def traced(x):
            calls.append(x)
            return x * 2

        rdd = ctx.parallelize(list(range(20)), 2).map(traced).cache()
        rdd.collect()
        n_first = len(calls)
        rdd.collect()
        # The map function did not run again.
        assert len(calls) == n_first
        assert ctx.block_store.n_blocks == 2

    def test_cache_hit_is_cheaper_than_recompute(self):
        def run(cache: bool) -> int:
            ctx = make_ctx(n_executors=1)
            rdd = ctx.parallelize(list(range(400)), 1).map(
                lambda x: x + 1
            )
            if cache:
                rdd = rdd.cache()
            rdd.count()
            rdd.count()
            return ctx.job_trace("t").total_instructions

        assert run(cache=True) < run(cache=False)

    def test_cache_read_stack_in_trace(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(list(range(50)), 2).map(lambda x: x).cache()
        rdd.count()
        rdd.count()
        fqns = {ref.fqn for ref in ctx.registry.all_refs()}
        assert any("MemoryStore.getValues" in f for f in fqns)
        assert any("putIteratorAsValues" in f for f in fqns)

    def test_downstream_ops_still_run_on_hit(self):
        ctx = make_ctx()
        base = ctx.parallelize(list(range(10)), 2).map(lambda x: x + 1).cache()
        base.count()  # fill the cache
        doubled = base.map(lambda x: x * 2)
        assert sorted(doubled.collect()) == sorted((x + 1) * 2 for x in range(10))

    def test_unpersist_forces_recompute(self):
        ctx = make_ctx()
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(list(range(10)), 2).map(traced).cache()
        rdd.count()
        rdd.unpersist()
        assert ctx.block_store.n_blocks == 0
        n_after_first = len(calls)
        rdd.count()
        assert len(calls) > n_after_first  # recomputed

    def test_cached_source_rdd(self):
        ctx = make_ctx()
        ctx.fs.write("/in", [f"l{i}" for i in range(30)], block_records=15)
        src = ctx.text_file("/in")
        src.is_cached = True
        assert src.count() == 30
        assert ctx.block_store.n_blocks == 2
        bytes_before = ctx.fs.bytes_read
        assert src.count() == 30
        assert ctx.fs.bytes_read == bytes_before  # served from memory

    def test_cache_below_union(self):
        ctx = make_ctx()
        a = ctx.parallelize([1, 2], 1).map(lambda x: x * 10).cache()
        b = ctx.parallelize([3], 1)
        u = a.union(b)
        assert sorted(u.collect()) == [3, 10, 20]
        assert sorted(u.collect()) == [3, 10, 20]  # hit path through union

    def test_cache_in_shuffle_map_stage(self):
        ctx = make_ctx()
        words = [f"w{i % 3}" for i in range(30)]
        pairs = ctx.parallelize(words, 2).map(lambda w: (w, 1)).cache()
        counts = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert counts == {"w0": 10, "w1": 10, "w2": 10}
        # Cache filled during the shuffle-map stage; a second job hits it.
        total = pairs.count()
        assert total == 30
