"""Unit tests for the narrow-operation model."""

from __future__ import annotations

import pytest

from repro.jvm.machine import AccessPattern, OpKind
from repro.spark.ops import (
    CustomOp,
    batch_bytes,
    make_filter_op,
    make_flat_map_op,
    make_map_op,
    make_map_partitions_op,
    make_map_values_op,
)


class TestBatchBytes:
    def test_empty(self):
        assert batch_bytes([]) == 0.0

    def test_samples_first_record(self):
        assert batch_bytes(["abcd"] * 10) == 50.0  # (4+1) * 10


class TestFactories:
    def test_map_op(self):
        op = make_map_op(lambda x: x * 2)
        assert op.apply([1, 2, 3], op.new_state()) == [2, 4, 6]
        assert op.op_kind is OpKind.MAP
        assert op.name == "map"

    def test_flat_map_op(self):
        op = make_flat_map_op(str.split)
        assert op.apply(["a b", "c"], None) == ["a", "b", "c"]

    def test_filter_op(self):
        op = make_filter_op(lambda x: x > 1)
        assert op.apply([0, 1, 2, 3], None) == [2, 3]

    def test_map_values_op(self):
        op = make_map_values_op(len)
        assert op.apply([("a", "xyz")], None) == [("a", 3)]

    def test_map_partitions_op(self):
        op = make_map_partitions_op(lambda batch: [sum(batch)])
        assert op.apply([1, 2, 3], None) == [6]

    def test_custom_frames_in_map_partitions(self):
        frames = (("x.Y", "z"),)
        op = make_map_partitions_op(lambda b: b, frames=frames)
        assert op.frames == frames

    def test_frames_carry_fn_name(self):
        op = make_map_op(lambda x: x, "my.pkg.Fn.apply")
        classes = [c for c, _m in op.frames]
        assert any("my.pkg" in c for c in classes)


class TestCosts:
    def test_instructions_per_record(self):
        op = make_map_op(lambda x: x, inst_per_record=1000.0)
        assert op.instructions([1, 2, 3]) == 3000.0

    def test_inst_fn_override(self):
        op = make_map_partitions_op(
            lambda b: b, inst_fn=lambda batch: 42.0
        )
        assert op.instructions([1, 2, 3]) == 42.0

    def test_default_access_sequential(self):
        op = make_map_op(lambda x: x)
        access = op.access(["abc"], None)
        assert access.kind == "sequential"
        assert access.working_set_bytes == 4.0

    def test_access_fn_override(self):
        op = make_map_partitions_op(
            lambda b: b,
            access_fn=lambda batch, state: AccessPattern.random(123.0),
        )
        access = op.access([1], None)
        assert access.kind == "random"
        assert access.working_set_bytes == 123.0


class TestCustomOp:
    def test_stateful_application(self):
        def fn(batch, state):
            state["seen"] = state.get("seen", 0) + len(batch)
            return [state["seen"]]

        op = CustomOp(
            name="acc",
            frames=(("x.Acc", "apply"),),
            op_kind=OpKind.REDUCE,
            batch_fn=fn,
        )
        state = op.new_state()
        assert op.apply([1, 2], state) == [2]
        assert op.apply([3], state) == [3]  # state persisted

    def test_state_fn(self):
        op = CustomOp(
            name="s",
            frames=(("x.S", "apply"),),
            op_kind=OpKind.MAP,
            batch_fn=lambda b, s: b,
            state_fn=lambda: {"custom": True},
        )
        assert op.new_state() == {"custom": True}

    def test_stateful_flag(self):
        op = CustomOp(
            name="s", frames=(("x.S", "a"),), op_kind=OpKind.MAP,
            batch_fn=lambda b, s: b,
        )
        assert op.stateful
