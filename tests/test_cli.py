"""Tests for the ``simprof`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import FIGURES, _parse_label, build_parser, main


class TestParseLabel:
    @pytest.mark.parametrize("label,expected", [
        ("wc_sp", ("wc", "spark")),
        ("cc_hp", ("cc", "hadoop")),
        ("rank_spark", ("rank", "spark")),
        ("bayes_hadoop", ("bayes", "hadoop")),
    ])
    def test_valid(self, label, expected):
        assert _parse_label(label) == expected

    @pytest.mark.parametrize("label", ["wc", "wc-sp", "wc_xx", ""])
    def test_invalid(self, label):
        with pytest.raises(SystemExit):
            _parse_label(label)


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "wc_sp"])
        assert args.points == 20
        assert args.scale == 1.0
        assert args.unit_size == 100_000_000

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig7"])
        assert args.name == "fig7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_figures_registry_importable(self):
        import importlib

        for spec in FIGURES.values():
            module, _, fn = spec.partition(":")
            assert hasattr(importlib.import_module(module), fn)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "wordcount" in out
        assert "Google" in out

    def test_run_small(self, capsys):
        rc = main([
            "run", "grep_sp",
            "--scale", "0.05",
            "--unit-size", "10000000",
            "--snapshot-period", "500000",
            "--points", "8",
            "--error", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulation points:" in out
        assert "sample size for 5% error bound" in out

    def test_run_graph_input(self, capsys):
        rc = main([
            "run", "cc_sp",
            "--scale", "0.05",
            "--unit-size", "10000000",
            "--snapshot-period", "500000",
            "--graph", "Road",
        ])
        assert rc == 0
        assert "phases" in capsys.readouterr().out

    def test_table_figure(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_sensitivity_rejects_text_workloads(self):
        with pytest.raises(SystemExit):
            main(["sensitivity", "wc_sp"])


class TestFigureSmallScale:
    def test_fig9_small_scale(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("SIMPROF_CACHE_DIR", str(tmp_path))
        from repro.runtime.store import reset_default_stores
        reset_default_stores()
        rc = main([
            "figure", "fig9",
            "--scale", "0.05",
            "--unit-size", "10000000",
            "--snapshot-period", "500000",
            "--draws", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "spark range" in out
