"""Shared fixtures.

Full workload runs are expensive, so each (workload, framework) trace
used by integration tests is produced once per session at reduced
scale.  Profiler settings are scaled down to match so the small runs
still yield enough sampling units to exercise clustering and sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import SimProf, SimProfConfig
from repro.workloads import run_workload

# Small-run profiler: 10 M-instruction units keep the unit count high
# even at 5 % input scale.
TEST_SIMPROF_CONFIG = SimProfConfig(
    unit_size=10_000_000, snapshot_period=500_000, seed=0
)
TEST_SCALE = 0.08


@pytest.fixture(scope="session")
def simprof_tool() -> SimProf:
    """SimProf configured for the reduced-scale test traces."""
    return SimProf(TEST_SIMPROF_CONFIG)


def _trace(workload: str, framework: str, **kwargs):
    return run_workload(workload, framework, scale=TEST_SCALE, seed=0, **kwargs)


@pytest.fixture(scope="session")
def wc_spark_trace():
    """WordCount on Spark at test scale."""
    return _trace("wc", "spark")


@pytest.fixture(scope="session")
def wc_hadoop_trace():
    """WordCount on Hadoop at test scale."""
    return _trace("wc", "hadoop")


@pytest.fixture(scope="session")
def grep_spark_trace():
    """Grep on Spark at test scale."""
    return _trace("grep", "spark")


@pytest.fixture(scope="session")
def cc_spark_trace():
    """Connected components on Spark at test scale."""
    return _trace("cc", "spark")


@pytest.fixture(scope="session")
def wc_spark_profile(wc_spark_trace, simprof_tool):
    """Profiled WordCount/Spark job."""
    return simprof_tool.profile(wc_spark_trace)


@pytest.fixture(scope="session")
def wc_hadoop_profile(wc_hadoop_trace, simprof_tool):
    """Profiled WordCount/Hadoop job."""
    return simprof_tool.profile(wc_hadoop_trace)


@pytest.fixture(scope="session")
def wc_spark_model(wc_spark_profile, simprof_tool):
    """Phase model for WordCount/Spark."""
    return simprof_tool.form_phases(wc_spark_profile)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
