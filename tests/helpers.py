"""Shared test helpers: synthetic traces and profiles.

Core-algorithm tests should not need to run a whole workload; these
builders produce controlled traces (known phase structure, known CPI
per phase) so assertions can be exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import JobProfile, SamplingUnit, ThreadProfile
from repro.jvm.machine import MachineConfig
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.threads import ThreadTrace, TraceSegment
from repro.jvm.machine import OpKind

__all__ = [
    "PhaseSpec",
    "make_registry_with_stacks",
    "make_trace",
    "make_synthetic_profile",
]


@dataclass(frozen=True)
class PhaseSpec:
    """Blueprint of one synthetic phase."""

    n_units: int
    cpi_mean: float
    cpi_std: float
    # index of the stack (from the shared stack list) that dominates
    stack_index: int
    op_kind: OpKind = OpKind.MAP


def make_registry_with_stacks(
    n_stacks: int = 4, depth: int = 5
) -> tuple[MethodRegistry, StackTable, list[CallStack]]:
    """A registry with ``n_stacks`` distinct stacks sharing a base."""
    registry = MethodRegistry()
    table = StackTable(registry)
    base = CallStack(
        (
            registry.intern("java.lang.Thread", "run"),
            registry.intern("framework.Task", "run"),
        )
    )
    stacks = []
    for i in range(n_stacks):
        stack = base
        for d in range(depth - 2):
            stack = stack.push(registry.intern(f"workload.Op{i}", f"step{d}"))
        table.intern(stack)
        stacks.append(stack)
    return registry, table, stacks


def make_trace(
    segments: list[tuple[CallStack, float, float]],
    table: StackTable,
    thread_id: int = 0,
    op_kind: OpKind = OpKind.MAP,
) -> ThreadTrace:
    """Trace from ``(stack, instructions, cpi)`` triples."""
    trace = ThreadTrace(thread_id=thread_id, core_id=0)
    for stack, insts, cpi in segments:
        insts_i = int(insts)
        trace.segments.append(
            TraceSegment(
                stack_id=table.intern(stack),
                op_kind=op_kind,
                instructions=insts_i,
                cycles=max(1, int(insts_i * cpi)),
                l1d_misses=insts_i // 100,
                llc_misses=insts_i // 1000,
            )
        )
    return trace


def make_synthetic_profile(
    phases: list[PhaseSpec],
    *,
    seed: int = 0,
    snapshots_per_unit: int = 20,
    unit_size: int = 1_000_000,
    shuffle_units: bool = True,
    workload: str = "synthetic",
    framework: str = "spark",
    input_name: str = "default",
) -> JobProfile:
    """A JobProfile with exactly the requested phase structure.

    Each unit's snapshots are all drawn from its phase's dominant stack
    (plus one snapshot of a shared base stack so phases overlap in some
    dimensions); CPIs are normal around the phase mean.
    """
    n_stacks = max(p.stack_index for p in phases) + 2
    registry, table, stacks = make_registry_with_stacks(n_stacks=n_stacks)
    shared = stacks[-1]
    rng = np.random.default_rng(seed)

    units: list[SamplingUnit] = []
    order: list[int] = []
    for phase_id, spec in enumerate(phases):
        for _ in range(spec.n_units):
            order.append(phase_id)
    if shuffle_units:
        rng.shuffle(order)

    for index, phase_id in enumerate(order):
        spec = phases[phase_id]
        dominant = table.intern(stacks[spec.stack_index])
        base = table.intern(shared)
        ids = np.array(sorted({dominant, base}), dtype=np.int64)
        counts = np.array(
            [snapshots_per_unit - 1, 1]
            if dominant < base
            else [1, snapshots_per_unit - 1],
            dtype=np.int64,
        )
        cpi = max(0.05, rng.normal(spec.cpi_mean, spec.cpi_std))
        units.append(
            SamplingUnit(
                index=index,
                stack_ids=ids,
                stack_counts=counts,
                instructions=float(unit_size),
                cycles=float(unit_size) * cpi,
                l1d_misses=unit_size / 100,
                llc_misses=unit_size / 1000,
            )
        )
    profile = ThreadProfile(
        thread_id=0,
        unit_size=unit_size,
        snapshot_period=unit_size // snapshots_per_unit,
        units=units,
    )
    return JobProfile(
        workload=workload,
        framework=framework,
        input_name=input_name,
        profile=profile,
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
    )
