"""Unit tests for the JVMTI-like stack snapshotter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jvm.jvmti import StackSnapshotter
from tests.helpers import make_registry_with_stacks, make_trace


@pytest.fixture()
def simple_trace():
    registry, table, stacks = make_registry_with_stacks(n_stacks=2)
    # 3 segments: stack0 for 100, stack1 for 50, stack0 for 50 instrs.
    trace = make_trace(
        [(stacks[0], 100, 1.0), (stacks[1], 50, 1.0), (stacks[0], 50, 1.0)],
        table,
    )
    return trace, table, stacks


class TestStackAt:
    def test_maps_offsets_to_segments(self, simple_trace):
        trace, table, stacks = simple_trace
        snap = StackSnapshotter(trace)
        assert snap.stack_at(0) == table.intern(stacks[0])
        assert snap.stack_at(99) == table.intern(stacks[0])
        assert snap.stack_at(100) == table.intern(stacks[1])
        assert snap.stack_at(149) == table.intern(stacks[1])
        assert snap.stack_at(150) == table.intern(stacks[0])

    def test_out_of_range_raises(self, simple_trace):
        trace, _table, _stacks = simple_trace
        snap = StackSnapshotter(trace)
        with pytest.raises(IndexError):
            snap.stack_at(200)
        with pytest.raises(IndexError):
            snap.stack_at(-1)

    def test_total_instructions(self, simple_trace):
        trace, _t, _s = simple_trace
        assert StackSnapshotter(trace).total_instructions == 200


class TestSnapshots:
    def test_periodic_snapshot_count(self, simple_trace):
        trace, _t, _s = simple_trace
        snaps = StackSnapshotter(trace).snapshots(period=10)
        # offsets 10, 20, ..., 190
        assert len(snaps) == 19
        assert snaps[0].instruction_offset == 10

    def test_rejects_nonpositive_period(self, simple_trace):
        trace, _t, _s = simple_trace
        with pytest.raises(ValueError):
            StackSnapshotter(trace).snapshots(period=0)

    def test_snapshot_arrays_match_snapshots(self, simple_trace):
        trace, _t, _s = simple_trace
        snapper = StackSnapshotter(trace)
        snaps = snapper.snapshots(period=25)
        offsets, ids = snapper.snapshot_arrays(period=25)
        assert [s.instruction_offset for s in snaps] == list(offsets)
        assert [s.stack_id for s in snaps] == list(ids)

    def test_jitter_requires_valid_range(self, simple_trace):
        trace, _t, _s = simple_trace
        with pytest.raises(ValueError):
            StackSnapshotter(trace).snapshots(
                period=10, jitter=1.5, rng=np.random.default_rng(0)
            )

    def test_jitter_preserves_mean_rate(self, simple_trace):
        trace, _t, _s = simple_trace
        snapper = StackSnapshotter(trace)
        rng = np.random.default_rng(0)
        jittered = snapper.snapshots(period=10, jitter=0.5, rng=rng)
        # Expected ~19 polls; the jittered count stays close.
        assert 12 <= len(jittered) <= 28

    def test_jitter_offsets_monotone(self, simple_trace):
        trace, _t, _s = simple_trace
        offsets, _ = StackSnapshotter(trace).snapshot_arrays(
            period=10, jitter=0.9, rng=np.random.default_rng(1)
        )
        assert (np.diff(offsets) > 0).all()

    @given(period=st.integers(min_value=1, max_value=250))
    @settings(max_examples=30)
    def test_offsets_in_range(self, period):
        registry, table, stacks = make_registry_with_stacks(n_stacks=2)
        trace = make_trace([(stacks[0], 100, 1.0), (stacks[1], 100, 1.0)], table)
        offsets, ids = StackSnapshotter(trace).snapshot_arrays(period)
        assert all(0 < o < 200 for o in offsets)
        assert len(offsets) == len(ids)
