"""Unit tests for the perf_event-like counter reader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jvm.perf import PerfCounterReader
from tests.helpers import make_registry_with_stacks, make_trace


@pytest.fixture()
def two_phase_trace():
    """100 instructions at CPI 1.0, then 100 at CPI 3.0."""
    registry, table, stacks = make_registry_with_stacks(n_stacks=2)
    return make_trace(
        [(stacks[0], 100, 1.0), (stacks[1], 100, 3.0)], table
    )


class TestRead:
    def test_full_window_totals(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        win = reader.read(0, 200)
        assert win.instructions == 200
        assert win.cycles == pytest.approx(100 + 300)

    def test_interpolates_within_segment(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        win = reader.read(0, 50)  # half of the CPI-1.0 segment
        assert win.cycles == pytest.approx(50)

    def test_straddling_window(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        win = reader.read(50, 150)  # 50 @ CPI1 + 50 @ CPI3
        assert win.cycles == pytest.approx(50 + 150)
        assert win.cpi == pytest.approx(2.0)

    def test_out_of_range_raises(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        with pytest.raises(ValueError):
            reader.read(-1, 10)
        with pytest.raises(ValueError):
            reader.read(0, 1000)


class TestReadWindows:
    def test_windows_partition_the_trace(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        wins = reader.read_windows(np.array([0, 50, 100, 200]))
        assert len(wins) == 3
        assert sum(w.cycles for w in wins) == pytest.approx(reader.total_cycles)

    def test_rejects_decreasing_boundaries(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        with pytest.raises(ValueError):
            reader.read_windows(np.array([0, 100, 50]))

    def test_empty_boundaries(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        assert reader.read_windows(np.array([0])) == []


class TestCounterWindow:
    def test_ipc_and_mpki(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        win = reader.read(0, 100)
        assert win.ipc == pytest.approx(1.0 / win.cpi)
        assert win.llc_mpki >= 0


class TestTimeMapping:
    def test_time_of_instruction_roundtrip(self, two_phase_trace):
        reader = PerfCounterReader(two_phase_trace)
        clock = 1e9
        t = reader.time_of_instruction(100, clock)
        assert t == pytest.approx(100 / clock)
        back = reader.instruction_at_time(t, clock)
        assert back == pytest.approx(100)
