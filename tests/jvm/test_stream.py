"""TraceStream protocol: replay adapter, event pumping, trace caching."""

from __future__ import annotations

import pytest

from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    StageEvent,
    StreamClosed,
    ThreadStart,
    pump_events,
    trace_to_stream,
)
from repro.jvm.threads import ThreadTrace, TraceSegment
from tests.helpers import make_registry_with_stacks, make_trace


def _small_job(n_threads: int = 2, n_segments: int = 10) -> JobTrace:
    registry, table, stacks = make_registry_with_stacks(n_stacks=3)
    job = JobTrace(
        framework="spark",
        workload="synthetic",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        stages=[StageInfo(0, "map", 4), StageInfo(1, "reduce", 2)],
        meta={"elapsed": 1.5},
    )
    for tid in range(n_threads):
        segments = [
            (stacks[i % len(stacks)], 1000 + 10 * i, 0.6 + 0.01 * i)
            for i in range(n_segments)
        ]
        job.traces.append(make_trace(segments, table, thread_id=tid))
    return job


class TestTraceToStream:
    def test_round_trip(self):
        job = _small_job()
        rebuilt = JobTrace.from_stream(trace_to_stream(job))
        assert rebuilt.framework == job.framework
        assert rebuilt.workload == job.workload
        assert rebuilt.input_name == job.input_name
        assert rebuilt.registry is job.registry
        assert rebuilt.stack_table is job.stack_table
        assert rebuilt.stages == job.stages
        assert rebuilt.meta == job.meta
        assert len(rebuilt.traces) == len(job.traces)
        for orig, copy in zip(job.traces, rebuilt.traces):
            assert copy.thread_id == orig.thread_id
            assert copy.core_id == orig.core_id
            assert copy.start_cycle == orig.start_cycle
            assert copy.segments == orig.segments

    def test_batching_splits_segments(self):
        job = _small_job(n_threads=1, n_segments=10)
        events = list(trace_to_stream(job, batch_size=3))
        batches = [e for e in events if isinstance(e, SegmentBatch)]
        assert [len(b.segments) for b in batches] == [3, 3, 3, 1]
        # Event ordering: ThreadStart first, JobEnd last.
        assert isinstance(events[0], ThreadStart)
        assert isinstance(events[-1], JobEnd)

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            trace_to_stream(_small_job(), batch_size=0)

    def test_from_stream_rejects_orphan_batch(self):
        job = _small_job(n_threads=1)
        seg = job.traces[0].segments[0]

        def events():
            yield SegmentBatch(42, (seg,))

        stream = trace_to_stream(job)
        stream.events = events()
        with pytest.raises(ValueError, match="unknown thread 42"):
            JobTrace.from_stream(stream)


class TestPumpEvents:
    def test_delivers_in_order(self):
        def producer(emit):
            for i in range(100):
                emit(ThreadStart(i, 0))

        received = [e.thread_id for e in pump_events(producer)]
        assert received == list(range(100))

    def test_propagates_producer_exception(self):
        def producer(emit):
            emit(ThreadStart(0, 0))
            raise RuntimeError("substrate failed")

        it = pump_events(producer)
        assert next(it).thread_id == 0
        with pytest.raises(RuntimeError, match="substrate failed"):
            next(it)

    def test_early_close_unwinds_producer(self):
        state = {}

        def producer(emit):
            try:
                for i in range(10_000):
                    emit(ThreadStart(i, 0))
                state["outcome"] = "completed"
            except StreamClosed:
                state["outcome"] = "closed"
                raise

        it = pump_events(producer, max_queue=4)
        next(it)
        it.close()  # consumer abandons the stream
        # The worker observes the closed flag on its next emit and
        # unwinds; close() drains until the worker exits.
        assert state["outcome"] == "closed"

    def test_backpressure_bounds_queue(self):
        def producer(emit):
            for i in range(50):
                emit(ThreadStart(i, 0))

        assert len(list(pump_events(producer, max_queue=2))) == 50


class TestTraceCaching:
    def test_totals_cache_tracks_appends(self):
        registry, table, stacks = make_registry_with_stacks(n_stacks=1)
        sid = table.intern(stacks[0])
        trace = ThreadTrace(thread_id=0, core_id=0)
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 100, 60, 1, 0))
        assert trace.total_instructions == 100
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 50, 40, 1, 0))
        # Append changes the length, so the cache is recomputed.
        assert trace.total_instructions == 150
        assert trace.total_cycles == 100

    def test_clear_segments_bumps_epoch(self):
        registry, table, stacks = make_registry_with_stacks(n_stacks=1)
        sid = table.intern(stacks[0])
        trace = ThreadTrace(thread_id=0, core_id=0)
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 100, 60, 1, 0))
        assert trace.total_instructions == 100
        trace.clear_segments()
        assert len(trace) == 0
        # Refill to the same length with different values: the epoch
        # bump must invalidate the cached totals.
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 999, 777, 1, 0))
        assert trace.total_instructions == 999
        assert trace.total_cycles == 777

    def test_thread_lookup_cached_and_first_wins(self):
        job = _small_job(n_threads=3)
        assert job.thread(1) is job.traces[1]
        # Duplicate thread id appended later: first occurrence wins,
        # matching the linear scan the cache replaced.
        dup = ThreadTrace(thread_id=1, core_id=9)
        job.traces.append(dup)
        assert job.thread(1) is job.traces[1]
        assert job.thread(1) is not dup

    def test_thread_lookup_missing_raises(self):
        job = _small_job(n_threads=1)
        with pytest.raises(KeyError, match="no thread 7 in job trace"):
            job.thread(7)
