"""TraceStream protocol: replay adapter, event pumping, trace caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.segments import SEGMENT_DTYPE
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    StageEvent,
    StreamClosed,
    ThreadStart,
    pump_events,
    segment_checksum,
    trace_to_stream,
)
from repro.jvm.threads import ThreadTrace, TraceSegment
from tests.helpers import make_registry_with_stacks, make_trace


def _small_job(n_threads: int = 2, n_segments: int = 10) -> JobTrace:
    registry, table, stacks = make_registry_with_stacks(n_stacks=3)
    job = JobTrace(
        framework="spark",
        workload="synthetic",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        stages=[StageInfo(0, "map", 4), StageInfo(1, "reduce", 2)],
        meta={"elapsed": 1.5},
    )
    for tid in range(n_threads):
        segments = [
            (stacks[i % len(stacks)], 1000 + 10 * i, 0.6 + 0.01 * i)
            for i in range(n_segments)
        ]
        job.traces.append(make_trace(segments, table, thread_id=tid))
    return job


class TestTraceToStream:
    def test_round_trip(self):
        job = _small_job()
        rebuilt = JobTrace.from_stream(trace_to_stream(job))
        assert rebuilt.framework == job.framework
        assert rebuilt.workload == job.workload
        assert rebuilt.input_name == job.input_name
        assert rebuilt.registry is job.registry
        assert rebuilt.stack_table is job.stack_table
        assert rebuilt.stages == job.stages
        assert rebuilt.meta == job.meta
        assert len(rebuilt.traces) == len(job.traces)
        for orig, copy in zip(job.traces, rebuilt.traces):
            assert copy.thread_id == orig.thread_id
            assert copy.core_id == orig.core_id
            assert copy.start_cycle == orig.start_cycle
            assert copy.segments == orig.segments

    def test_batching_splits_segments(self):
        job = _small_job(n_threads=1, n_segments=10)
        events = list(trace_to_stream(job, batch_size=3))
        batches = [e for e in events if isinstance(e, SegmentBatch)]
        assert [len(b.segments) for b in batches] == [3, 3, 3, 1]
        # Event ordering: ThreadStart first, JobEnd last.
        assert isinstance(events[0], ThreadStart)
        assert isinstance(events[-1], JobEnd)

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            trace_to_stream(_small_job(), batch_size=0)

    def test_from_stream_rejects_orphan_batch(self):
        job = _small_job(n_threads=1)
        seg = job.traces[0].segments[0]

        def events():
            yield SegmentBatch(42, (seg,))

        stream = trace_to_stream(job)
        stream.events = events()
        with pytest.raises(ValueError, match="unknown thread 42"):
            JobTrace.from_stream(stream)


class TestPumpEvents:
    def test_delivers_in_order(self):
        def producer(emit):
            for i in range(100):
                emit(ThreadStart(i, 0))

        received = [e.thread_id for e in pump_events(producer)]
        assert received == list(range(100))

    def test_propagates_producer_exception(self):
        def producer(emit):
            emit(ThreadStart(0, 0))
            raise RuntimeError("substrate failed")

        it = pump_events(producer)
        assert next(it).thread_id == 0
        with pytest.raises(RuntimeError, match="substrate failed"):
            next(it)

    def test_early_close_unwinds_producer(self):
        state = {}

        def producer(emit):
            try:
                for i in range(10_000):
                    emit(ThreadStart(i, 0))
                state["outcome"] = "completed"
            except StreamClosed:
                state["outcome"] = "closed"
                raise

        it = pump_events(producer, max_queue=4)
        next(it)
        it.close()  # consumer abandons the stream
        # The worker observes the closed flag on its next emit and
        # unwinds; close() drains until the worker exits.
        assert state["outcome"] == "closed"

    def test_backpressure_bounds_queue(self):
        def producer(emit):
            for i in range(50):
                emit(ThreadStart(i, 0))

        assert len(list(pump_events(producer, max_queue=2))) == 50

    def test_zero_length_stream(self):
        def producer(emit):
            pass

        assert list(pump_events(producer)) == []

    def test_exception_before_first_emit(self):
        def producer(emit):
            raise ValueError("substrate died on startup")

        with pytest.raises(ValueError, match="died on startup"):
            next(pump_events(producer))

    def test_empty_batches_flow_through(self):
        def producer(emit):
            emit(ThreadStart(0, 0))
            emit(SegmentBatch(0, ()))
            emit(SegmentBatch(0, np.empty(0, dtype=SEGMENT_DTYPE)))

        events = list(pump_events(producer))
        batches = [e for e in events if isinstance(e, SegmentBatch)]
        assert [len(b) for b in batches] == [0, 0]
        assert all(b.segments == () for b in batches)
        assert all(b.checksum == 0 for b in batches)


class TestColumnarBatch:
    def test_payload_is_packed_array(self):
        job = _small_job(n_threads=1, n_segments=5)
        batches = [
            e for e in trace_to_stream(job) if isinstance(e, SegmentBatch)
        ]
        assert all(b.data.dtype == SEGMENT_DTYPE for b in batches)

    def test_replay_batches_are_zero_copy_slices(self):
        # trace_to_stream must slice the thread's packed array, not
        # copy per batch: every batch view shares the same base buffer.
        job = _small_job(n_threads=1, n_segments=10)
        packed = job.traces[0].to_structured()
        batches = [
            e
            for e in trace_to_stream(job, batch_size=3)
            if isinstance(e, SegmentBatch)
        ]
        assert all(b.data.base is packed for b in batches)

    def test_segments_property_is_lazy_and_cached(self):
        job = _small_job(n_threads=1, n_segments=4)
        batch = SegmentBatch(0, job.traces[0].to_structured())
        first = batch.segments
        assert first == tuple(job.traces[0].segments)
        assert batch.segments is first

    def test_object_constructor_round_trips(self):
        job = _small_job(n_threads=1, n_segments=4)
        segs = tuple(job.traces[0].segments)
        batch = SegmentBatch(0, segs)
        assert batch.segments == segs
        assert segment_checksum(batch.data) == segment_checksum(segs)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError, match="SEGMENT_DTYPE"):
            SegmentBatch(0, np.zeros(3, dtype=np.int64))

    def test_cold_survives_the_wire(self):
        registry, table, stacks = make_registry_with_stacks(n_stacks=1)
        sid = table.intern(stacks[0])
        cold = TraceSegment(sid, OpKind.MAP, 100, 60, 1, 0, cold=True)
        warm = TraceSegment(sid, OpKind.MAP, 100, 60, 1, 0, cold=False)
        batch = SegmentBatch(0, (cold, warm))
        assert [s.cold for s in batch.segments] == [True, False]
        # cold is metadata, not payload: it must not perturb the
        # checksum the historical 8-field pack defined.
        assert segment_checksum((cold,)) == segment_checksum((warm,))


class TestTraceCaching:
    def test_totals_cache_tracks_appends(self):
        registry, table, stacks = make_registry_with_stacks(n_stacks=1)
        sid = table.intern(stacks[0])
        trace = ThreadTrace(thread_id=0, core_id=0)
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 100, 60, 1, 0))
        assert trace.total_instructions == 100
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 50, 40, 1, 0))
        # Append changes the length, so the cache is recomputed.
        assert trace.total_instructions == 150
        assert trace.total_cycles == 100

    def test_clear_segments_bumps_epoch(self):
        registry, table, stacks = make_registry_with_stacks(n_stacks=1)
        sid = table.intern(stacks[0])
        trace = ThreadTrace(thread_id=0, core_id=0)
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 100, 60, 1, 0))
        assert trace.total_instructions == 100
        trace.clear_segments()
        assert len(trace) == 0
        # Refill to the same length with different values: the epoch
        # bump must invalidate the cached totals.
        trace.segments.append(TraceSegment(sid, OpKind.MAP, 999, 777, 1, 0))
        assert trace.total_instructions == 999
        assert trace.total_cycles == 777

    def test_thread_lookup_cached_and_first_wins(self):
        job = _small_job(n_threads=3)
        assert job.thread(1) is job.traces[1]
        # Duplicate thread id appended later: first occurrence wins,
        # matching the linear scan the cache replaced.
        dup = ThreadTrace(thread_id=1, core_id=9)
        job.traces.append(dup)
        assert job.thread(1) is job.traces[1]
        assert job.thread(1) is not dup

    def test_thread_lookup_missing_raises(self):
        job = _small_job(n_threads=1)
        with pytest.raises(KeyError, match="no thread 7 in job trace"):
            job.thread(7)
