"""Tests for the optional JIT warm-up model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jvm.machine import AccessPattern, HardwareModel, MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.threads import TraceBuilder


def make_builder(**machine_kwargs):
    registry = MethodRegistry()
    table = StackTable(registry)
    stack = CallStack((registry.intern("a.A", "run"),))
    hw = HardwareModel(
        MachineConfig(noise_sigma=0.0, migration_probability=0.0,
                      **machine_kwargs)
    )
    return TraceBuilder(table, hw, np.random.default_rng(0), 0, 0), stack


class TestJitMultiplier:
    def test_off_by_default(self):
        model = HardwareModel(MachineConfig())
        assert model.jit_multiplier(0) == 1.0
        assert model.jit_multiplier(1e12) == 1.0

    def test_decays_with_retirement(self):
        model = HardwareModel(
            MachineConfig(jit_warmup_penalty=0.5, jit_warmup_scale=1e8)
        )
        start = model.jit_multiplier(0)
        later = model.jit_multiplier(5e8)
        assert start == pytest.approx(1.5)
        assert 1.0 < later < start

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(jit_warmup_penalty=-0.1)
        with pytest.raises(ValueError):
            MachineConfig(jit_warmup_scale=0)


class TestWarmupInTraces:
    def test_early_segments_slower(self):
        builder, stack = make_builder(
            jit_warmup_penalty=0.6, jit_warmup_scale=5e6
        )
        for _ in range(20):
            builder.emit(
                stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6
            )
        cpis = [s.cpi for s in builder.trace.segments]
        assert cpis[0] > cpis[-1]
        # Monotone decay for identical work.
        assert all(a >= b - 1e-9 for a, b in zip(cpis, cpis[1:]))

    def test_warmup_off_keeps_cpi_flat(self):
        builder, stack = make_builder()
        for _ in range(5):
            builder.emit(
                stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6
            )
        cpis = {round(s.cpi, 6) for s in builder.trace.segments}
        assert len(cpis) == 1

    def test_warmup_visible_to_profiler(self):
        """A warm-up-enabled run shows a decaying CPI trend over the
        first sampling units."""
        from repro.core.profiler import ProfilerConfig, SimProfProfiler

        builder, stack = make_builder(
            jit_warmup_penalty=1.0, jit_warmup_scale=2e7
        )
        for _ in range(100):
            builder.emit(stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6)
        profile = SimProfProfiler(
            ProfilerConfig(unit_size=10_000_000, snapshot_period=1_000_000)
        ).profile_thread(builder.trace)
        cpi = profile.cpi()
        assert cpi[0] > cpi[-1] * 1.2
