"""Shared-memory trace transport: zero-copy across a process boundary."""

from __future__ import annotations

import multiprocessing
from collections import deque

import numpy as np
import pytest

from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import MachineConfig
from repro.jvm.segments import SEGMENT_DTYPE, segment_checksum
from repro.jvm.shm import ShmBatchRef, recv_stream, send_stream
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    ThreadStart,
    TraceStream,
    trace_to_stream,
)
from tests.helpers import make_registry_with_stacks, make_trace


class _LocalQueue:
    """Duck-typed queue: send_stream/recv_stream in one process."""

    def __init__(self) -> None:
        self._items: deque = deque()

    def put(self, item) -> None:
        self._items.append(item)

    def get(self):
        return self._items.popleft()

    def get_nowait(self):
        return self._items.popleft()


def _small_job(n_threads: int = 2, n_segments: int = 12) -> JobTrace:
    registry, table, stacks = make_registry_with_stacks(n_stacks=3)
    job = JobTrace(
        framework="spark",
        workload="synthetic",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        stages=[StageInfo(0, "map", 4)],
        meta={"elapsed": 0.5},
    )
    for tid in range(n_threads):
        segments = [
            (stacks[i % len(stacks)], 900 + 7 * i, 0.7 + 0.02 * i)
            for i in range(n_segments)
        ]
        job.traces.append(make_trace(segments, table, thread_id=tid))
    return job


def _send_job(queue, job: JobTrace, batch_size: int) -> None:
    send_stream(trace_to_stream(job, batch_size=batch_size), queue)


class TestInProcess:
    def test_round_trip(self):
        job = _small_job()
        queue = _LocalQueue()
        _send_job(queue, job, batch_size=5)
        rebuilt = JobTrace.from_stream(recv_stream(queue))
        assert rebuilt.framework == job.framework
        assert rebuilt.stages == job.stages
        assert rebuilt.meta == job.meta
        for orig, copy in zip(job.traces, rebuilt.traces):
            assert copy.thread_id == orig.thread_id
            assert copy.segments == orig.segments

    def test_batches_arrive_verified_and_read_only(self):
        job = _small_job(n_threads=1)
        queue = _LocalQueue()
        _send_job(queue, job, batch_size=4)
        for event in recv_stream(queue):
            if isinstance(event, SegmentBatch):
                assert event.data.dtype == SEGMENT_DTYPE
                # A view of the shared block, not a private copy ...
                assert not event.data.flags.owndata
                assert not event.data.flags.writeable
                # ... and the producer-side checksum still matches it.
                assert event.checksum == segment_checksum(event.data)

    def test_blocks_reclaimed_after_consumption(self):
        from multiprocessing import shared_memory

        job = _small_job(n_threads=1)
        queue = _LocalQueue()
        _send_job(queue, job, batch_size=3)
        names = [i.name for i in queue._items if isinstance(i, ShmBatchRef)]
        assert names
        for _ in recv_stream(queue):
            pass
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_abandoned_iterator_reclaims_on_close(self):
        from multiprocessing import shared_memory

        job = _small_job(n_threads=2)
        queue = _LocalQueue()
        _send_job(queue, job, batch_size=2)
        names = [i.name for i in queue._items if isinstance(i, ShmBatchRef)]
        stream = recv_stream(queue)
        it = iter(stream)
        for _ in range(3):
            event = next(it)
        del event, _  # drop the pins so close() can reclaim every block
        it.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_empty_batch_crosses_the_wire(self):
        job = _small_job(n_threads=1, n_segments=2)
        template = trace_to_stream(job)

        def events():
            yield ThreadStart(0, 0)
            yield SegmentBatch(0, (), seq=0)
            yield JobEnd({})

        stream = TraceStream(
            framework=template.framework,
            workload=template.workload,
            input_name=template.input_name,
            registry=template.registry,
            stack_table=template.stack_table,
            machine=template.machine,
            events=events(),
        )
        queue = _LocalQueue()
        send_stream(stream, queue)
        received = list(recv_stream(queue))
        batches = [e for e in received if isinstance(e, SegmentBatch)]
        assert [len(b) for b in batches] == [0]
        assert batches[0].segments == ()

    def test_recv_rejects_headerless_queue(self):
        queue = _LocalQueue()
        queue.put(ThreadStart(0, 0))
        with pytest.raises(ValueError, match="ShmStreamHeader"):
            recv_stream(queue)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method",
)
class TestCrossProcess:
    def test_producer_in_child_process(self):
        # Touch shared memory in this process first so the resource
        # tracker exists before the fork — the child then inherits it,
        # and the parent-side unlink unregisters the child's blocks
        # from the same tracker (no spurious leak warnings at exit).
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
        probe.close()
        probe.unlink()

        job = _small_job(n_threads=2, n_segments=20)
        expected = JobTrace.from_stream(trace_to_stream(job, batch_size=6))

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        child = ctx.Process(target=_send_job, args=(queue, job, 6))
        child.start()
        try:
            stream = recv_stream(queue)
            checksums = []
            rebuilt_events = []
            for event in stream:
                if isinstance(event, SegmentBatch):
                    # The view lives in the producer's shared block;
                    # verify it end-to-end, then copy out what the
                    # rebuild needs (the batch is reclaimed after the
                    # next event).
                    assert event.checksum == segment_checksum(event.data)
                    checksums.append(event.checksum)
                    rebuilt_events.append(
                        SegmentBatch(
                            event.thread_id,
                            event.data.copy(),
                            seq=event.seq,
                            checksum=event.checksum,
                        )
                    )
                else:
                    rebuilt_events.append(event)
        finally:
            child.join(timeout=30)
        assert child.exitcode == 0
        assert checksums  # batches actually crossed the boundary

        template = trace_to_stream(job)
        rebuilt = JobTrace.from_stream(
            TraceStream(
                framework=template.framework,
                workload=template.workload,
                input_name=template.input_name,
                registry=template.registry,
                stack_table=template.stack_table,
                machine=template.machine,
                events=iter(rebuilt_events),
            )
        )
        assert len(rebuilt.traces) == len(expected.traces)
        for got, want in zip(rebuilt.traces, expected.traces):
            assert got.thread_id == want.thread_id
            assert np.array_equal(got.to_structured(), want.to_structured())
