"""Unit tests for trace segments, thread traces, and the trace builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.jvm.machine import AccessPattern, HardwareModel, MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.threads import ThreadTrace, TraceBuilder, TraceSegment


@pytest.fixture()
def builder_parts():
    registry = MethodRegistry()
    table = StackTable(registry)
    stack = CallStack((registry.intern("a.A", "run"),))
    hw = HardwareModel(MachineConfig(noise_sigma=0.0, migration_probability=0.0))
    rng = np.random.default_rng(0)
    builder = TraceBuilder(table, hw, rng, thread_id=0, core_id=0)
    return builder, stack


class TestTraceSegment:
    def test_cpi(self):
        seg = TraceSegment(0, OpKind.MAP, 100, 250, 1, 1)
        assert seg.cpi == 2.5

    def test_cpi_zero_instructions(self):
        seg = TraceSegment(0, OpKind.MAP, 0, 10, 0, 0)
        assert seg.cpi == 0.0


class TestTraceBuilder:
    def test_emit_appends_segment(self, builder_parts):
        builder, stack = builder_parts
        seg = builder.emit(stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6)
        assert len(builder.trace) == 1
        assert seg.instructions == 1_000_000

    def test_emit_applies_instruction_scale(self):
        registry = MethodRegistry()
        table = StackTable(registry)
        stack = CallStack((registry.intern("a.A", "run"),))
        hw = HardwareModel(
            MachineConfig(noise_sigma=0.0, migration_probability=0.0,
                          instruction_scale=4.0)
        )
        builder = TraceBuilder(table, hw, np.random.default_rng(0), 0, 0)
        seg = builder.emit(stack, OpKind.MAP, AccessPattern.sequential(1e4), 1000)
        assert seg.instructions == 4000

    def test_emit_chunked_respects_max_segment(self, builder_parts):
        builder, stack = builder_parts
        n = builder.emit_chunked(
            stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e7, max_segment=4e6
        )
        assert n == 3
        sizes = [s.instructions for s in builder.trace.segments]
        assert max(sizes) <= 4_000_000
        assert sum(sizes) == 10_000_000

    def test_emit_chunked_scales_before_chunking(self):
        registry = MethodRegistry()
        table = StackTable(registry)
        stack = CallStack((registry.intern("a.A", "run"),))
        hw = HardwareModel(
            MachineConfig(noise_sigma=0.0, migration_probability=0.0,
                          instruction_scale=10.0)
        )
        builder = TraceBuilder(table, hw, np.random.default_rng(0), 0, 0)
        builder.emit_chunked(
            stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6, max_segment=4e6
        )
        sizes = [s.instructions for s in builder.trace.segments]
        assert sum(sizes) == 10_000_000  # 1e6 abstract * scale 10
        assert max(sizes) <= 4_000_000

    def test_emit_chunked_rejects_bad_max(self, builder_parts):
        builder, stack = builder_parts
        with pytest.raises(ValueError):
            builder.emit_chunked(
                stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6, max_segment=0
            )

    def test_migration_marks_next_segment_cold(self):
        registry = MethodRegistry()
        table = StackTable(registry)
        stack = CallStack((registry.intern("a.A", "run"),))
        hw = HardwareModel(
            MachineConfig(noise_sigma=0.0, migration_probability=1.0)
        )
        builder = TraceBuilder(table, hw, np.random.default_rng(0), 0, 0)
        first = builder.emit(stack, OpKind.MAP, AccessPattern.random(1e6), 1e6)
        second = builder.emit(stack, OpKind.MAP, AccessPattern.random(1e6), 1e6)
        assert not first.cold
        assert second.cold
        assert builder.migrations >= 1

    def test_contention_increases_cycles(self):
        registry = MethodRegistry()
        table = StackTable(registry)
        stack = CallStack((registry.intern("a.A", "run"),))
        hw = HardwareModel(MachineConfig(noise_sigma=0.0, migration_probability=0.0))
        access = AccessPattern.random(4e6)
        b1 = TraceBuilder(table, hw, np.random.default_rng(0), 0, 0)
        b1.set_contention(1)
        alone = b1.emit(stack, OpKind.MAP, access, 1e6).cycles
        b8 = TraceBuilder(table, hw, np.random.default_rng(0), 1, 0)
        b8.set_contention(8)
        shared = b8.emit(stack, OpKind.MAP, access, 1e6).cycles
        assert shared > alone


class TestThreadTrace:
    def test_totals(self, builder_parts):
        builder, stack = builder_parts
        for _ in range(3):
            builder.emit(stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6)
        trace = builder.trace
        assert trace.total_instructions == 3_000_000
        assert trace.total_cycles > 0
        assert trace.end_cycle == trace.start_cycle + trace.total_cycles

    def test_to_arrays_matches_segments(self, builder_parts):
        builder, stack = builder_parts
        builder.emit(stack, OpKind.MAP, AccessPattern.sequential(1e4), 1e6)
        builder.emit(stack, OpKind.IO, AccessPattern.sequential(1e4), 2e6)
        arrays = builder.trace.to_arrays()
        assert list(arrays["instructions"]) == [1_000_000, 2_000_000]
        assert arrays["op_kind"][0] != arrays["op_kind"][1]

    def test_merged_orders_by_start_cycle(self):
        t1 = ThreadTrace(thread_id=1, core_id=0, start_cycle=100)
        t1.segments.append(TraceSegment(0, OpKind.MAP, 10, 10, 0, 0))
        t2 = ThreadTrace(thread_id=2, core_id=0, start_cycle=0)
        t2.segments.append(TraceSegment(1, OpKind.MAP, 20, 20, 0, 0))
        merged = ThreadTrace.merged([t1, t2], thread_id=7)
        assert merged.thread_id == 7
        assert [s.stack_id for s in merged.segments] == [1, 0]

    def test_merged_rejects_mixed_cores(self):
        t1 = ThreadTrace(thread_id=1, core_id=0)
        t2 = ThreadTrace(thread_id=2, core_id=1)
        with pytest.raises(ValueError):
            ThreadTrace.merged([t1, t2], thread_id=0)

    def test_merged_rejects_empty(self):
        with pytest.raises(ValueError):
            ThreadTrace.merged([], thread_id=0)
