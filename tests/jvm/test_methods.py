"""Unit tests for the method registry, call stacks, and stack table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.jvm.methods import CallStack, MethodRef, MethodRegistry, StackTable


class TestMethodRef:
    def test_fqn_combines_class_and_method(self):
        ref = MethodRef("org.apache.spark.rdd.RDD", "map")
        assert ref.fqn == "org.apache.spark.rdd.RDD.map"

    def test_simple_class_strips_package(self):
        assert MethodRef("a.b.C", "m").simple_class == "C"

    def test_simple_class_without_package(self):
        assert MethodRef("C", "m").simple_class == "C"

    def test_value_equality(self):
        assert MethodRef("a.B", "m") == MethodRef("a.B", "m")
        assert MethodRef("a.B", "m") != MethodRef("a.B", "n")


class TestMethodRegistry:
    def test_intern_assigns_dense_ids(self):
        reg = MethodRegistry()
        ids = [reg.intern("a.B", f"m{i}") for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        assert len(reg) == 5

    def test_intern_is_idempotent(self):
        reg = MethodRegistry()
        first = reg.intern("a.B", "m")
        second = reg.intern("a.B", "m")
        assert first == second
        assert len(reg) == 1

    def test_lookup_roundtrip(self):
        reg = MethodRegistry()
        mid = reg.intern("a.B", "m")
        assert reg.lookup(mid) == MethodRef("a.B", "m")
        assert reg.fqn(mid) == "a.B.m"

    def test_id_of_unknown_raises(self):
        reg = MethodRegistry()
        with pytest.raises(KeyError):
            reg.id_of(MethodRef("a.B", "m"))

    def test_contains(self):
        reg = MethodRegistry()
        reg.intern("a.B", "m")
        assert MethodRef("a.B", "m") in reg
        assert MethodRef("a.B", "n") not in reg

    def test_find_by_substring(self):
        reg = MethodRegistry()
        hit = reg.intern("org.QuickSort", "sort")
        reg.intern("org.Mapper", "map")
        assert reg.find("QuickSort") == [hit]

    def test_all_refs_in_id_order(self):
        reg = MethodRegistry()
        reg.intern("a.B", "m")
        reg.intern("a.B", "n")
        assert [r.method_name for r in reg.all_refs()] == ["m", "n"]

    @given(st.lists(st.tuples(st.text(min_size=1), st.text(min_size=1)), max_size=30))
    def test_ids_stable_under_reinterning(self, pairs):
        reg = MethodRegistry()
        first = [reg.intern(c, m) for c, m in pairs]
        second = [reg.intern(c, m) for c, m in pairs]
        assert first == second


class TestCallStack:
    def test_push_and_pop(self):
        stack = CallStack((0,))
        grown = stack.push(1).push(2)
        assert grown.frames == (0, 1, 2)
        assert grown.leaf == 2
        assert grown.root == 0
        assert grown.pop().frames == (0, 1)

    def test_pop_root_raises(self):
        with pytest.raises(ValueError):
            CallStack((0,)).pop()

    def test_push_all(self):
        assert CallStack((0,)).push_all([1, 2, 3]).frames == (0, 1, 2, 3)

    def test_render_uses_registry(self):
        reg = MethodRegistry()
        a = reg.intern("a.A", "run")
        b = reg.intern("b.B", "work")
        text = CallStack((a, b)).render(reg)
        assert "a.A.run" in text and "b.B.work" in text

    def test_iteration_and_len(self):
        stack = CallStack((3, 1, 4))
        assert list(stack) == [3, 1, 4]
        assert len(stack) == 3


class TestStackTable:
    def test_intern_dedupes_by_frames(self):
        reg = MethodRegistry()
        table = StackTable(reg)
        s1 = CallStack((reg.intern("a.A", "x"),))
        assert table.intern(s1) == table.intern(CallStack(s1.frames))
        assert len(table) == 1

    def test_lookup_roundtrip(self):
        reg = MethodRegistry()
        table = StackTable(reg)
        stack = CallStack((reg.intern("a.A", "x"), reg.intern("a.A", "y")))
        sid = table.intern(stack)
        assert table.lookup(sid) == stack
        assert table.frames_of(sid) == stack.frames

    def test_method_histogram_counts_all_frames(self):
        reg = MethodRegistry()
        table = StackTable(reg)
        a = reg.intern("a.A", "x")
        b = reg.intern("a.A", "y")
        sid1 = table.intern(CallStack((a, b)))
        sid2 = table.intern(CallStack((a,)))
        hist = table.method_histogram(np.array([sid1, sid2]), np.array([2, 3]))
        assert hist[a] == 5  # on both stacks
        assert hist[b] == 2  # only on the deep stack

    def test_method_histogram_default_counts(self):
        reg = MethodRegistry()
        table = StackTable(reg)
        a = reg.intern("a.A", "x")
        sid = table.intern(CallStack((a,)))
        hist = table.method_histogram(np.array([sid, sid]))
        assert hist[a] == 2
