"""Unit tests for the hardware model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jvm.machine import (
    AccessPattern,
    HardwareModel,
    MachineConfig,
    OpKind,
)


@pytest.fixture()
def model() -> HardwareModel:
    return HardwareModel(MachineConfig(noise_sigma=0.0))


class TestAccessPattern:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            AccessPattern("diagonal", 1024)

    def test_rejects_negative_working_set(self):
        with pytest.raises(ValueError):
            AccessPattern.sequential(-1)

    def test_rejects_bad_api(self):
        with pytest.raises(ValueError):
            AccessPattern("random", 1024, accesses_per_instruction=2.0)

    def test_constructors(self):
        assert AccessPattern.sequential(10).kind == "sequential"
        assert AccessPattern.random(10).kind == "random"
        assert AccessPattern.pointer(10).kind == "pointer"


class TestMachineConfig:
    def test_hardware_threads(self):
        cfg = MachineConfig(cores=4, smt_per_core=2)
        assert cfg.hardware_threads == 8

    def test_seconds_conversion(self):
        cfg = MachineConfig(clock_ghz=2.0)
        assert cfg.seconds(2e9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(cores=0)
        with pytest.raises(ValueError):
            MachineConfig(prefetch_efficiency=1.5)
        with pytest.raises(ValueError):
            MachineConfig(migration_probability=2.0)


class TestMissRates:
    def test_small_working_set_hits(self, model):
        l1, llc = model.miss_rates(AccessPattern.random(1024))
        assert llc < 1e-3

    def test_big_working_set_misses_llc(self, model):
        small = model.miss_rates(AccessPattern.random(1e6))[1]
        big = model.miss_rates(AccessPattern.random(100e6))[1]
        assert big > small

    def test_contention_shrinks_effective_cache(self, model):
        ws = 4e6  # fits the 10 MB LLC alone, not an eighth of it
        alone = model.miss_rates(AccessPattern.random(ws), contention=1)[1]
        shared = model.miss_rates(AccessPattern.random(ws), contention=8)[1]
        assert shared > alone

    def test_cold_cache_raises_misses(self, model):
        warm = model.miss_rates(AccessPattern.random(1e6))[0]
        cold = model.miss_rates(AccessPattern.random(1e6), cold=True)[0]
        assert cold > warm

    def test_sequential_misses_bounded_by_line_size(self, model):
        l1, llc = model.miss_rates(AccessPattern.sequential(100e6))
        assert llc <= l1  # cannot miss LLC more often than L1

    @given(
        ws=st.floats(min_value=1.0, max_value=1e9),
        contention=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50)
    def test_rates_always_valid(self, ws, contention):
        model = HardwareModel(MachineConfig(noise_sigma=0.0))
        for pattern in (
            AccessPattern.sequential(ws),
            AccessPattern.random(ws),
            AccessPattern.pointer(ws),
        ):
            l1, llc = model.miss_rates(pattern, contention=contention)
            assert 0.0 <= llc <= l1 <= 1.0


class TestCost:
    def test_cpi_grows_with_working_set(self, model, rng):
        seq = model.cost(OpKind.MAP, AccessPattern.sequential(1e4), 1e6, rng)
        rand = model.cost(OpKind.REDUCE, AccessPattern.random(100e6), 1e6, rng)
        assert rand.cpi > seq.cpi

    def test_io_has_higher_base_cpi_than_map(self, model):
        assert model.base_cpi(OpKind.IO) > model.base_cpi(OpKind.MAP)

    def test_deterministic_without_noise(self, model):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        a = model.cost(OpKind.MAP, AccessPattern.sequential(1e5), 1e6, rng1)
        b = model.cost(OpKind.MAP, AccessPattern.sequential(1e5), 1e6, rng2)
        assert a == b

    def test_noise_perturbs_cycles_only(self, rng):
        noisy = HardwareModel(MachineConfig(noise_sigma=0.05))
        costs = {
            noisy.cost(OpKind.MAP, AccessPattern.sequential(1e5), 1e6, rng).cycles
            for _ in range(10)
        }
        assert len(costs) > 1

    def test_instruction_count_unscaled(self, model, rng):
        # instruction_scale is applied by the trace builder, not here.
        cost = model.cost(OpKind.MAP, AccessPattern.sequential(1e4), 12345, rng)
        assert cost.instructions == 12345

    def test_cpi_property(self, model, rng):
        cost = model.cost(OpKind.MAP, AccessPattern.sequential(1e4), 1e6, rng)
        assert cost.cpi == pytest.approx(cost.cycles / cost.instructions)

    def test_realistic_cpi_range(self, model, rng):
        """Sanity: CPIs stay in a plausible 0.4-8 band."""
        for kind, ws, pattern in [
            (OpKind.MAP, 1e5, "sequential"),
            (OpKind.SORT, 50e6, "random"),
            (OpKind.IO, 1e6, "sequential"),
            (OpKind.GC, 30e6, "pointer"),
        ]:
            access = AccessPattern(pattern, ws)
            cost = model.cost(kind, access, 1e6, rng, contention=8)
            assert 0.4 <= cost.cpi <= 8.0, (kind, cost.cpi)

    def test_migration_probability_zero_never_migrates(self, rng):
        model = HardwareModel(MachineConfig(migration_probability=0.0))
        assert not any(model.migration_occurs(rng) for _ in range(100))

    def test_migration_probability_one_always_migrates(self, rng):
        model = HardwareModel(MachineConfig(migration_probability=1.0))
        assert all(model.migration_occurs(rng) for _ in range(10))


class TestOpKind:
    def test_phase_type_flags(self):
        assert OpKind.MAP.is_phase_type
        assert OpKind.SORT.is_phase_type
        assert not OpKind.GC.is_phase_type
        assert not OpKind.FRAMEWORK.is_phase_type
