"""Unit tests for the job-trace container."""

from __future__ import annotations

import pytest

from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import MachineConfig, OpKind
from repro.jvm.methods import MethodRegistry, StackTable
from repro.jvm.threads import ThreadTrace, TraceSegment


def _job_with_threads(instr_per_thread: list[int]) -> JobTrace:
    registry = MethodRegistry()
    table = StackTable(registry)
    traces = []
    for tid, insts in enumerate(instr_per_thread):
        trace = ThreadTrace(thread_id=tid, core_id=tid)
        trace.segments.append(
            TraceSegment(0, OpKind.MAP, insts, insts * 2, 0, 0)
        )
        traces.append(trace)
    return JobTrace(
        framework="spark",
        workload="wc",
        input_name="default",
        registry=registry,
        stack_table=table,
        machine=MachineConfig(),
        traces=traces,
        stages=[StageInfo(0, "shuffleMap:map", 4)],
    )


class TestJobTrace:
    def test_label(self):
        job = _job_with_threads([10])
        assert job.label == "wc_spark"

    def test_totals(self):
        job = _job_with_threads([10, 20, 30])
        assert job.total_instructions == 60
        assert job.total_cycles == 120
        assert job.n_threads == 3

    def test_thread_lookup(self):
        job = _job_with_threads([10, 20])
        assert job.thread(1).total_instructions == 20
        with pytest.raises(KeyError):
            job.thread(99)

    def test_longest_thread(self):
        job = _job_with_threads([10, 50, 20])
        assert job.longest_thread().thread_id == 1

    def test_longest_thread_empty_raises(self):
        job = _job_with_threads([])
        with pytest.raises(ValueError):
            job.longest_thread()
